#!/usr/bin/env python3
"""Fleet demo: headroom-aware placement and cross-host live migration.

The paper's building blocks are per-host; this demo is what they buy at
datacenter scale.  A :class:`repro.Fleet` runs eight managed hosts on one
lockstep clock; a seeded churn workload (tenants "come and go", §3.2)
lands on hosts picked by the headroom-aware cluster scheduler; then a NIC
uplink on a loaded host is failed, local recovery exhausts its options,
and the placement is *live-migrated* to a healthy host — release on the
source, admit on the destination, all-or-nothing.

Run:  python examples/fleet_demo.py
"""

from repro import FailureInjector, Fleet, Gbps, pipe
from repro.fleet import FleetChurnConfig, run_churn


def main() -> None:
    fleet = Fleet("cascade_lake_2s", hosts=8, policy="best-fit",
                  max_attempts=4, resilience=True)

    # A guaranteed tenant placed before the crowd arrives.
    guaranteed = fleet.submit(pipe("kv-slo", "kv-tenant", src="nic0",
                                   dst="dimm0-0", bandwidth=Gbps(120),
                                   bidirectional=True))
    print(f"guaranteed intent placed on {guaranteed.host_id}")

    # The churning crowd, admitted fleet-wide by the cluster scheduler.
    report = run_churn(fleet, FleetChurnConfig(seed=3, horizon=0.2,
                                               arrival_rate=1500.0))
    print()
    print(report.describe())

    # Fail the guaranteed tenant's NIC uplink on its current host.  Local
    # recovery finds no alternate path from that NIC and escalates; the
    # fleet's migration planner moves the placement to a healthy host.
    victim_id = fleet.scheduler.host_of("kv-slo")
    victim = fleet.host(victim_id)
    print(f"\nfailing pcie-nic0 on {victim_id} ...")
    FailureInjector(victim.network).fail_link("pcie-nic0")
    fleet.run_until(fleet.now + 0.1)

    print()
    print(fleet.planner.describe())
    new_host = fleet.scheduler.host_of("kv-slo")
    print(f"\nguaranteed intent now on {new_host} "
          f"(was {victim_id})")

    print()
    print(fleet.describe())
    fleet.shutdown()


if __name__ == "__main__":
    main()
