#!/usr/bin/env python3
"""Tenant churn: a day in the life of a managed multi-tenant host.

Replays a synthetic tenant-churn trace (§3.2: applications "come and go")
against a single managed host, with the monitor running throughout, then
produces the operator-facing reports: per-tenant fairness, SLO compliance
for the guaranteed tenant, stranded-bandwidth accounting, and the
monitor's final health check.  (For the multi-host version of this story,
see ``examples/fleet_demo.py``.)

Run:  python examples/tenant_churn.py
"""

from repro import (
    Engine,
    FabricNetwork,
    Gbps,
    HostMonitor,
    HostNetworkManager,
    KvStoreApp,
    MlTrainingApp,
    NvmeScanApp,
    RdmaLoopbackApp,
    cascade_lake_2s,
    pipe,
)
from repro.analysis import (
    capacity_report,
    evaluate_objective,
    format_capacity_report,
    jain_index,
    stranded_bandwidth,
)
from repro.slo import SloObjective
from repro.units import to_Gbps, to_us, us
from repro.workloads import AppKind, TraceGenerator, TraceReplayer


def main() -> None:
    network = FabricNetwork(cascade_lake_2s(), Engine())
    engine = network.engine
    manager = HostNetworkManager(network, decision_latency=us(10))

    # One long-lived guaranteed tenant: a KV store with a latency SLO.
    slo = us(10)
    manager.submit(pipe("kv-slo", "kv-tenant", src="nic0", dst="dimm0-0",
                        bandwidth=Gbps(40), latency_slo=slo,
                        bidirectional=True))
    kv = KvStoreApp(network, "kv-tenant", nic="nic0", dimm="dimm0-0",
                    request_rate=15_000, seed=1)
    kv.start()

    # The churning crowd, replayed from a deterministic synthetic trace.
    trace = TraceGenerator(seed=21).generate(
        tenant_count=6, horizon=1.5, mean_duration=0.4
    )
    print(f"trace: {len(trace)} sessions over {trace.horizon:.1f}s, "
          f"{len(trace.tenants())} tenants")

    def make_app(event):
        manager.register_tenant(event.tenant_id)
        if event.app_kind is AppKind.KV_STORE:
            return KvStoreApp(network, event.tenant_id, nic="nic1",
                              dimm="dimm1-0",
                              request_rate=10_000 * event.intensity, seed=2)
        if event.app_kind is AppKind.ML_TRAINING:
            return MlTrainingApp(network, event.tenant_id, dimm="dimm0-0",
                                 gpu="gpu0")
        if event.app_kind is AppKind.NVME_SCAN:
            return NvmeScanApp(network, event.tenant_id, nvme="nvme0",
                               dimm="dimm0-0")
        return RdmaLoopbackApp(network, event.tenant_id, nic="nic0",
                               dimm="dimm0-0",
                               offered_rate=Gbps(120 * event.intensity),
                               streams=4)

    TraceReplayer(engine, trace, make_app).arm()

    monitor = HostMonitor(network, probers=["nic0", "gpu0", "nvme0",
                                            "dimm0-0", "nic1"])
    monitor.start()
    engine.run_until(0.05)
    monitor.record_baseline()
    engine.run_until(trace.horizon + 0.1)

    # --- operator reports ------------------------------------------------
    print("\n== SLO compliance (kv-tenant, guaranteed) ==")
    report = evaluate_objective(kv.stats.latencies,
                                SloObjective("kv-p99", slo))
    print(f"requests={report.samples}  p99={to_us(report.achieved):.1f}us  "
          f"slo={to_us(slo):.0f}us  attainment={report.attainment:.1%}  "
          f"met={report.met}")

    print("\n== per-tenant fabric shares on pcie-nic0 (this instant) ==")
    tenants = sorted({*trace.tenants(), "kv-tenant"})
    rates = {t: network.tenant_link_rate(t, "pcie-nic0") for t in tenants}
    active = {t: r for t, r in rates.items() if r > 0}
    for tenant, rate in sorted(active.items()):
        print(f"  {tenant:<12} {to_Gbps(rate):7.1f} Gbps")
    if len(active) > 1:
        print(f"  Jain index over active tenants: "
              f"{jain_index(list(active.values())):.2f}")

    print("\n== capacity / reservations ==")
    print(format_capacity_report(capacity_report(manager), limit=5))
    stranded = stranded_bandwidth(manager)
    print(f"stranded reserved bandwidth: "
          f"{ {k: f'{to_Gbps(v):.0f}G' for k, v in stranded.items()} }")

    print("\n== monitor verdict ==")
    final = monitor.check()
    print(final.describe())


if __name__ == "__main__":
    main()
