#!/usr/bin/env python3
"""Quickstart: build a host, run traffic, observe it, and manage it.

Walks through the library's three layers in ~60 lines of code:

1. simulate a dual-socket commodity server (the paper's Figure 1);
2. reproduce the §2 interference problem (RDMA loopback starves a
   co-located KV store);
3. fix it with the paper's holistic resource manager.

Run:  python examples/quickstart.py
"""

from repro import (
    Gbps,
    Host,
    KvStoreApp,
    RdmaLoopbackApp,
    cascade_lake_2s,
    pipe,
)
from repro.units import to_us, us as us_


def main() -> None:
    # --- 1. a simulated commodity server -------------------------------
    # One Host session bundles engine + fabric + resource manager.
    host = Host(cascade_lake_2s(), decision_latency=0.0)
    print(host.topology.describe())

    # --- 2. the paper's §2 interference problem ------------------------
    kv = KvStoreApp(host.network, "kv-tenant", nic="nic0", dimm="dimm0-0",
                    request_rate=20_000, seed=1)
    kv.start()
    host.run_until(0.1)
    alone = kv.stats.latency_summary()
    print(f"\nKV store alone:        p50={to_us(alone.p50):7.1f}us  "
          f"p99={to_us(alone.p99):7.1f}us")

    aggressor = RdmaLoopbackApp(host.network, "loopback-tenant",
                                nic="nic0", dimm="dimm0-0")
    aggressor.start()
    kv.stats.latencies.clear()
    host.run_until(0.2)
    squeezed = kv.stats.latency_summary()
    print(f"KV store + loopback:   p50={to_us(squeezed.p50):7.1f}us  "
          f"p99={to_us(squeezed.p99):7.1f}us   <- interference (§2)")

    # --- 3. the fix: a performance intent through the manager ----------
    host.register_tenant("loopback-tenant")
    # the intent carries both halves of what the KV store needs: a
    # bandwidth floor AND a round-trip latency SLO (a floor alone would
    # hold the rate while the work-conserving fabric runs the path hot)
    host.submit(
        pipe("kv-guarantee", "kv-tenant", src="nic0", dst="dimm0-0",
             bandwidth=Gbps(100), latency_slo=us_(8), bidirectional=True)
    )
    kv.stats.latencies.clear()
    host.run_until(0.3)
    protected = kv.stats.latency_summary()
    print(f"KV store managed:      p50={to_us(protected.p50):7.1f}us  "
          f"p99={to_us(protected.p99):7.1f}us   <- guarantee enforced (§3.2)")

    view = host.manager.tenant_view("kv-tenant")
    print(f"\nkv-tenant's virtual intra-host network: "
          f"{len(view.topology.links())} links, "
          f"{view.guaranteed_bandwidth()}")
    print(host.describe())


if __name__ == "__main__":
    main()
