#!/usr/bin/env python3
"""Tenant migration: virtualized views across differently shaped hosts.

§3.2: "this abstraction should enable tenants to easily migrate their VMs
or containers without reconfiguring their own intra-host networks."

A tenant holding bandwidth guarantees on a dual-socket Cascade-Lake-like
host is migrated to an 8-GPU DGX-like box.  The tenant's intents — not
link ids — travel; the destination manager re-interprets, re-schedules and
re-admits them against its own topology, and the tenant-visible guarantees
come out identical.

Run:  python examples/tenant_migration.py
"""

from repro import (
    Engine,
    FabricNetwork,
    Gbps,
    HostNetworkManager,
    cascade_lake_2s,
    dgx_like,
    migrate_tenant,
    pipe,
)
from repro.core import hose
from repro.units import to_Gbps


def build_host(preset):
    network = FabricNetwork(preset(), Engine())
    return HostNetworkManager(network, decision_latency=0.0)


def show_view(manager, tenant, label):
    view = manager.tenant_view(tenant)
    print(f"\n{label}: virtual view of {tenant!r} "
          f"on {manager.network.topology.name!r}")
    for link in sorted(view.topology.links(), key=lambda l: l.link_id):
        print(f"   {link.link_id:<28} {to_Gbps(link.capacity):8.1f} Gbps")
    print(f"   guarantees: "
          f"{ {k: f'{to_Gbps(v):.0f}Gbps' for k, v in view.guaranteed_bandwidth().items()} }")


def main() -> None:
    source = build_host(cascade_lake_2s)
    destination = build_host(dgx_like)

    source.submit(pipe("frontend", "acme", src="nic0", dst="dimm0-0",
                       bandwidth=Gbps(80)))
    source.submit(hose("gpu-feed", "acme", endpoint="gpu0",
                       bandwidth=Gbps(40)))
    show_view(source, "acme", "BEFORE")

    result = migrate_tenant(source, destination, "acme")
    print(f"\nmigration complete: {result.complete} "
          f"({len(result.moved)} intents moved, {len(result.failed)} failed)")

    show_view(destination, "acme", "AFTER")
    print("\ntenant-side reconfiguration required: none — identical "
          "guarantees, new host, new physical links.")
    assert result.source_view.guaranteed_bandwidth() == \
        result.destination_view.guaranteed_bandwidth()


if __name__ == "__main__":
    main()
