#!/usr/bin/env python3
"""Failure drill: detect and localize a silent PCIe-switch failure.

Reproduces §3.1's motivating case: "a hardware failure occurring on the
PCIe switch may silently cause the connected PCIe device to suffer
performance degradation ... This cannot be easily detected using
performance counters only."

The drill runs the fine-grained monitoring system — telemetry collection,
an intra-host heartbeat mesh, anomaly detectors, and topology-aware root
cause — against an injected silent switch failure, then hands off to the
automated troubleshooting toolkit.

Run:  python examples/failure_drill.py
"""

from repro import (
    Engine,
    FabricNetwork,
    FailureInjector,
    HostMonitor,
    KvStoreApp,
    cascade_lake_2s,
    troubleshoot,
)
from repro.units import us


def main() -> None:
    network = FabricNetwork(cascade_lake_2s(), Engine())
    engine = network.engine

    # Background tenant traffic so counters have something to show.
    KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
               request_rate=10_000, seed=3).start()

    monitor = HostMonitor(
        network,
        probers=["nic0", "gpu0", "nvme0", "dimm0-0", "nic1", "dimm1-0"],
        telemetry_period=0.005,
        heartbeat_period=0.005,
    )
    monitor.start()

    engine.run_until(0.05)
    monitor.record_baseline()
    print("baseline recorded; host is healthy:",
          monitor.check().healthy)

    # --- inject the silent failure -------------------------------------
    injector = FailureInjector(network)
    failure = injector.degrade_switch("pcisw0", capacity_factor=0.1,
                                      extra_latency=us(5))
    print(f"\n[injected] {failure.kind.value} on {failure.target} "
          f"(affects {failure.affected_links}) — no error surfaced anywhere")

    engine.run_until(0.15)

    # --- detection ------------------------------------------------------
    report = monitor.check()
    print("\n" + report.describe())

    # --- automated diagnosis --------------------------------------------
    suspect = report.top_link_suspect()
    if suspect is not None:
        print(f"\nroot cause localization blames: {suspect.element_id} "
              f"(suspicion {suspect.suspicion:.0%})")
    diagnosis = troubleshoot(network, "nic0", "dimm0-0")
    print("\n" + diagnosis.describe())
    print("\n" + diagnosis.trace.describe())

    injector.clear(failure)
    engine.run_until(0.2)
    print("\nafter repair, healthy:",
          not monitor.check().bad_probes)


if __name__ == "__main__":
    main()
