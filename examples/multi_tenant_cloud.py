#!/usr/bin/env python3
"""Multi-tenant cloud host: policies vs a malicious tenant (§2, E9).

Four tenants share a dual-socket host: a latency-sensitive KV store, an ML
training job, a storage scan — and one malicious tenant flooding the KV
store's PCIe path.  The same workload runs under four isolation policies:

    unmanaged          (today's intra-host network)
    rdt_like           (memory-bus-only point solution)
    static_partition   (hard 1/N split of every link)
    hostnet            (the paper's compile-schedule-arbitrate manager)

Run:  python examples/multi_tenant_cloud.py
"""

from repro import (
    Engine,
    FabricNetwork,
    Gbps,
    HostnetPolicy,
    KvStoreApp,
    MaliciousFloodApp,
    MlTrainingApp,
    NvmeScanApp,
    RdtLikePolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
    cascade_lake_2s,
    pipe,
)
from repro.units import to_Gbps, to_us, us

TENANTS = ["kv", "ml", "scan", "evil"]


def intent_factory(tenant: str):
    """Guarantees the hostnet manager enforces (per-tenant intents)."""
    if tenant == "kv":
        # bandwidth floor + latency SLO, bidirectional (request/response)
        return [pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(60), latency_slo=us(8),
                     bidirectional=True)]
    if tenant == "ml":
        return [pipe("ml-pipe", "ml", src="dimm0-0", dst="gpu0",
                     bandwidth=Gbps(120))]
    return []  # scan and evil are best-effort


def run_policy(policy):
    """One full co-location run under *policy*; returns the metrics row."""
    network = FabricNetwork(cascade_lake_2s(), Engine())
    policy.setup(network, TENANTS)

    kv = KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
                    request_rate=20_000, seed=11)
    ml = MlTrainingApp(network, "ml", dimm="dimm0-0", gpu="gpu0")
    scan = NvmeScanApp(network, "scan", nvme="nvme1", dimm="dimm1-0")
    evil = MaliciousFloodApp(network, "evil", src="nic0", dst="dimm0-0",
                             flow_count=16)
    for app in (kv, ml, scan, evil):
        app.start()
    network.engine.run_until(0.4)

    row = {
        "kv_p99_us": to_us(kv.stats.latency_summary().p99),
        "ml_gbps": to_Gbps(ml.stats.throughput(network.engine.now)),
        "scan_gbps": to_Gbps(scan.stats.throughput(network.engine.now)),
        "evil_gbps": to_Gbps(evil.attack_rate()),
    }
    for app in (kv, ml, scan, evil):
        app.stop()
    policy.teardown(network, TENANTS)
    return row


def main() -> None:
    policies = [
        UnmanagedPolicy(),
        RdtLikePolicy(),
        StaticPartitionPolicy(),
        HostnetPolicy(intent_factory, decision_latency=0.0),
    ]
    header = (f"{'policy':<18} {'kv p99 (us)':>12} {'ml (Gbps)':>10} "
              f"{'scan (Gbps)':>12} {'attack (Gbps)':>14}")
    print(header)
    print("-" * len(header))
    for policy in policies:
        row = run_policy(policy)
        print(f"{policy.name:<18} {row['kv_p99_us']:>12.1f} "
              f"{row['ml_gbps']:>10.1f} {row['scan_gbps']:>12.1f} "
              f"{row['evil_gbps']:>14.1f}")
    print("\nshape to expect: hostnet protects kv/ml like static_partition "
          "but keeps the fabric busy; rdt_like fails on PCIe attacks; "
          "unmanaged fails everywhere.")


if __name__ == "__main__":
    main()
