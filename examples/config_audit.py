#!/usr/bin/env python3
"""Configuration audit: find the silent misconfiguration (§2, E13).

A host "works" but underperforms; nothing in any log says why. The audit
measures the host's performance signature (RTT, PCIe efficiency,
memory-bus amplification, NUMA placement) with the diagnostic tools and
compares it against the recommended configuration's signature, naming the
suspected misconfiguration.

Run:  python examples/config_audit.py
"""

from repro.devices import (
    MISCONFIGURATIONS,
    RECOMMENDED_CONFIG,
    build_configured_host,
)
from repro.diagnostics import advise, measure_signature
from repro.topology import cascade_lake_2s
from repro.units import to_us


def describe_signature(label, signature):
    print(f"{label:<20} rtt={to_us(signature.local_rtt):6.2f}us  "
          f"pcie-eff={signature.pcie_efficiency:4.0%}  "
          f"membus-amp={signature.membus_amplification:.1f}x  "
          f"remote-numa={'yes' if signature.crosses_socket else 'no'}")


def main() -> None:
    topology = cascade_lake_2s()

    print("measuring the known-good baseline...")
    baseline = measure_signature(
        build_configured_host(topology, RECOMMENDED_CONFIG)
    )
    describe_signature("(recommended)", baseline)
    print()

    # A fleet of hosts, one quietly misconfigured each way.
    for name, config in sorted(MISCONFIGURATIONS.items()):
        host = build_configured_host(topology, config)
        signature = measure_signature(host)
        describe_signature(f"host[{name}]", signature)
        findings = advise(signature, baseline)
        for finding in findings:
            print(f"    -> suspected {finding.suspected!r}: "
                  f"{finding.evidence}")
        if not findings:
            print("    -> no findings (missed!)")
        print()

    print("audit of a healthy host:")
    findings = advise(baseline, baseline)
    print(f"    -> {len(findings)} findings (expected 0)")


if __name__ == "__main__":
    main()
