#!/usr/bin/env python3
"""Diagnostics tour: hostping, hosttrace, hostperf, hostshark.

§3.1 asks for intra-host analogues of "ping, traceroute, iperf, and
wireshark".  This example exercises all four against a congested host and
prints their operator-facing output.

Run:  python examples/diagnostics_tour.py
"""

from repro import (
    Engine,
    FabricNetwork,
    HostShark,
    MlTrainingApp,
    RdmaLoopbackApp,
    cascade_lake_2s,
    hostperf,
    hostping,
    hosttrace,
)
from repro.units import mib


def main() -> None:
    network = FabricNetwork(cascade_lake_2s(), Engine())

    # wireshark-style capture, armed before anything runs
    shark = HostShark(network)
    shark.start_capture()

    # background load: ML batches + a loopback hog on socket 0
    MlTrainingApp(network, "ml", dimm="dimm0-0", gpu="gpu0",
                  batch_bytes=mib(128)).start()
    RdmaLoopbackApp(network, "hog", nic="nic0", dimm="dimm0-0").start()
    network.engine.run_until(0.05)

    print("=" * 70)
    print(hostping(network, "nic0", "dimm0-0", count=8).describe())
    print("=" * 70)
    print(hosttrace(network, "nic0", "dimm1-0").describe())
    print("=" * 70)
    print(hostperf(network, "nvme0", "dimm0-0", duration=0.02).describe())
    print("=" * 70)

    records = shark.records(tenant="ml", event="complete")
    print(f"hostshark: {len(shark)} events captured; "
          f"{len(records)} completed 'ml' transfers; by tenant: "
          f"{shark.summary_by_tenant()}")
    slowest = max(
        (r for r in shark.records(event="complete")),
        key=lambda r: r.bytes_sent, default=None,
    )
    if slowest is not None:
        print(f"largest captured transfer: {slowest.flow_id} "
              f"({slowest.bytes_sent / 1e6:.0f} MB, tenant "
              f"{slowest.tenant_id}, {slowest.src} -> {slowest.dst})")


if __name__ == "__main__":
    main()
