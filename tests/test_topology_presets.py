"""Presets must validate and stay within Figure 1's calibration ranges."""

import pytest

from repro.topology import (
    FIGURE1_RANGES,
    PRESETS,
    DeviceType,
    LinkClass,
    load_preset,
    validate_topology,
)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_validates(name):
    validate_topology(load_preset(name))


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_links_within_figure1_ranges(name):
    """Every link's capacity and latency lands in the paper's table."""
    topo = load_preset(name)
    for link in topo.links():
        if link.link_class not in FIGURE1_RANGES:
            continue  # CXL is outside the Figure-1 table
        (cap_lo, cap_hi), (lat_lo, lat_hi) = FIGURE1_RANGES[link.link_class]
        assert cap_lo <= link.capacity <= cap_hi, (
            f"{name}:{link.link_id} capacity outside Figure-1 range"
        )
        assert lat_lo <= link.base_latency <= lat_hi, (
            f"{name}:{link.link_id} latency outside Figure-1 range"
        )


def test_unknown_preset_lists_choices():
    with pytest.raises(KeyError, match="cascade_lake_2s"):
        load_preset("nonsense")


class TestCascadeLake:
    def test_device_census(self):
        topo = load_preset("cascade_lake_2s")
        assert len(topo.devices(DeviceType.CPU_SOCKET)) == 2
        assert len(topo.devices(DeviceType.NIC)) == 2
        assert len(topo.devices(DeviceType.GPU)) == 2
        assert len(topo.devices(DeviceType.NVME_SSD)) == 2
        assert len(topo.devices(DeviceType.PCIE_SWITCH)) == 1

    def test_two_upi_links(self):
        topo = load_preset("cascade_lake_2s")
        assert len(topo.links(LinkClass.INTER_SOCKET)) == 2

    def test_multi_level_pcie(self):
        """nic0 hangs below a switch below a root complex (Figure 1)."""
        topo = load_preset("cascade_lake_2s")
        assert len(topo.links(LinkClass.PCIE_UPSTREAM)) == 1
        incident = {l.link_class for l in topo.incident_links("pcisw0")}
        assert LinkClass.PCIE_UPSTREAM in incident
        assert LinkClass.PCIE_DOWNSTREAM in incident


class TestDgxLike:
    def test_eight_gpus_eight_nics(self):
        topo = load_preset("dgx_like")
        assert len(topo.devices(DeviceType.GPU)) == 8
        assert len(topo.devices(DeviceType.NIC)) == 8

    def test_four_switches(self):
        topo = load_preset("dgx_like")
        assert len(topo.devices(DeviceType.PCIE_SWITCH)) == 4

    def test_three_upi_links(self):
        topo = load_preset("dgx_like")
        assert len(topo.links(LinkClass.INTER_SOCKET)) == 3


class TestOtherPresets:
    def test_epyc_single_socket(self):
        topo = load_preset("epyc_like_1s")
        assert topo.sockets() == [0]
        assert len(topo.links(LinkClass.INTER_SOCKET)) == 0

    def test_cxl_host_has_cxl_link(self):
        topo = load_preset("cxl_host")
        assert len(topo.links(LinkClass.CXL)) == 1
        assert len(topo.devices(DeviceType.CXL_DEVICE)) == 1

    def test_minimal_is_small(self):
        topo = load_preset("minimal")
        assert len(topo) <= 7
