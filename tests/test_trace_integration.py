"""Tracing wired through the live stack: hooks, Host surface, staleness."""

from __future__ import annotations

import math

import pytest

from repro import Gbps, Host, HostMonitor, cascade_lake_2s, pipe
from repro.topology import minimal_host, shortest_path
from repro.trace import TRACER, TraceConfig, stop_tracing
from repro.workloads import KvStoreApp, RdmaLoopbackApp


def _traced_managed_run(sim_seconds: float = 0.05) -> Host:
    host = Host(cascade_lake_2s(), decision_latency=0.0,
                coalesce_recompute=True, trace=True)
    monitor = HostMonitor(host.network)
    monitor.start()
    KvStoreApp(host.network, "kv", nic="nic0", dimm="dimm0-0",
               request_rate=5_000, seed=1).start()
    RdmaLoopbackApp(host.network, "hog", nic="nic0", dimm="dimm0-0").start()
    host.submit(pipe("kv-floor", "kv", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(80), bidirectional=True))
    host.run_until(sim_seconds)
    monitor.check()
    monitor.stop()
    host.shutdown()
    stop_tracing()
    return host


class TestInstrumentationHooks:
    def test_managed_run_covers_every_layer(self):
        host = _traced_managed_run()
        categories = TRACER.categories()
        # The acceptance bar: spans from >= 4 distinct categories.
        assert {"engine", "solver", "arbiter", "monitor"} <= categories
        assert {"network", "manager", "telemetry"} <= categories
        assert host.tracer is TRACER

    def test_engine_spans_carry_sim_time_and_queue_counter(self):
        _traced_managed_run()
        engine_spans = [s for s in TRACER.spans() if s.category == "engine"]
        assert engine_spans
        assert all("t" in (s.args or {}) for s in engine_spans)
        tracks = {c.track for c in TRACER.counters()}
        assert "engine.queue_depth" in tracks
        assert "network.active_flows" in tracks

    def test_solver_spans_tag_dirty_counts(self):
        _traced_managed_run()
        solves = [s for s in TRACER.spans()
                  if s.category == "solver" and s.name == "solve"]
        assert solves
        for span in solves:
            assert {"flows", "dirty_flows", "dirty_constraints",
                    "kind"} <= set(span.args)
        kinds = {s.args["kind"] for s in solves}
        assert "full" in kinds  # the first solve of the session
        incrementals = [s for s in solves if s.args["kind"] == "incremental"]
        assert incrementals, "churny run must exercise incremental solves"
        assert all("components" in s.args for s in incrementals)

    def test_arbiter_and_manager_spans_tagged(self):
        _traced_managed_run()
        spans = TRACER.spans()
        adjusts = [s for s in spans
                   if s.category == "arbiter" and s.name == "adjust"]
        enforces = [s for s in spans
                    if s.category == "arbiter" and s.name == "enforce"]
        admits = [s for s in spans
                  if s.category == "manager" and s.name == "admit"]
        assert adjusts and enforces and admits
        assert admits[0].args["tenant"] == "kv"
        assert admits[0].args["outcome"] == "admitted"
        assert enforces[0].args["caps"] > 0

    def test_monitor_probe_round_spans(self):
        _traced_managed_run()
        rounds = [s for s in TRACER.spans()
                  if s.category == "monitor" and s.name == "probe_round"]
        assert rounds
        assert all(s.args["pairs"] >= 2 for s in rounds)

    def test_batch_flush_instants(self):
        _traced_managed_run()
        # Managed runs flush every coalesced solve via rate queries before
        # the deferred event fires, so only batch_flush shows up here; the
        # coalesced path is covered below.
        names = {i.name for i in TRACER.instants()}
        assert "batch_flush" in names

    def test_coalesced_flush_instant_fires_without_queries(self):
        host = Host(minimal_host(), managed=False,
                    coalesce_recompute=True, trace=True)
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        host.network.start_transfer("t", path, demand=Gbps(10))
        # No rate query intervenes, so the deferred solve runs as the
        # scheduled coalesced event and emits its instant.
        host.run_until(0.01)
        stop_tracing()
        names = {i.name for i in TRACER.instants()}
        assert "coalesced_flush" in names

    def test_trace_config_category_filter_end_to_end(self):
        host = Host(minimal_host(), managed=False,
                    trace=TraceConfig(categories={"solver"}))
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        host.network.start_transfer("t", path, demand=Gbps(10))
        host.run_until(0.01)
        stop_tracing()
        assert TRACER.categories() == {"solver"}

    def test_untraced_run_records_nothing(self):
        host = Host(minimal_host(), managed=False)
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        host.network.start_transfer("t", path, demand=Gbps(10))
        host.run_until(0.01)
        assert len(TRACER) == 0
        assert host.tracer is None


class TestHostSurface:
    def test_solver_stats_passthrough(self):
        host = Host(minimal_host(), managed=False)
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        host.network.start_transfer("t", path, demand=Gbps(10))
        assert host.solver_stats is host.network.solver_stats
        assert host.solver_stats.solve_calls >= 1

    def test_recompute_count_passthrough(self):
        host = Host(minimal_host(), managed=False)
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        before = host.recompute_count
        host.network.start_transfer("t", path, demand=Gbps(10))
        assert host.recompute_count == host.network.recompute_count
        assert host.recompute_count > before

    def test_repr_managed(self):
        host = Host(minimal_host())
        host.submit(pipe("p", "tenant", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(10)))
        text = repr(host)
        assert text.startswith("Host(")
        assert "tenants=1" in text and "intents=1" in text
        assert "recomputes=" in text

    def test_repr_unmanaged_and_traced(self):
        host = Host(minimal_host(), managed=False, trace=True)
        stop_tracing()
        text = repr(host)
        assert "unmanaged" in text and "traced" in text


class TestLinkUtilizationsStaleness:
    """Regression: bulk utilization queries must flush coalesced solves."""

    def test_coalesced_burst_never_yields_stale_utilizations(self):
        host = Host(minimal_host(), managed=False, coalesce_recompute=True)
        network = host.network
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        # A same-instant burst of flow starts: the re-solve is deferred to
        # a coalesced engine event that has NOT run yet.
        for _ in range(5):
            network.start_transfer("t", path, demand=Gbps(50))
        utils = network.link_utilizations()
        loaded = [u for u in utils.values() if u > 0.0]
        assert loaded, (
            "bulk utilizations returned all-zero for an active burst — "
            "the coalesced re-solve was not flushed"
        )

    def test_matches_per_link_queries(self):
        host = Host(minimal_host(), managed=False, coalesce_recompute=True)
        network = host.network
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        for _ in range(3):
            network.start_transfer("t", path, demand=Gbps(40))
        bulk = network.link_utilizations()
        for link in host.topology.links():
            assert bulk[link.link_id] == pytest.approx(
                network.link_utilization(link.link_id)
            )

    def test_unclamped_exposes_oversubscription(self):
        host = Host(minimal_host(), managed=False)
        network = host.network
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        network.start_transfer("t", path, demand=Gbps(50))
        # Degrade a path link far below the flow's current rate, then ask
        # for utilizations before any rate query re-solves: the clamped
        # view saturates at 1.0, the unclamped view shows the overshoot.
        victim = path.links[0]
        network.topology.link(victim).degraded_capacity = Gbps(1)
        raw = network.link_utilizations(clamp=False)
        clamped = network.link_utilizations()
        assert clamped[victim] <= 1.0
        assert raw[victim] >= clamped[victim]
        assert all(not math.isnan(v) for v in raw.values())

    def test_zero_capacity_link_conventions(self):
        host = Host(minimal_host(), managed=False)
        network = host.network
        path = shortest_path(host.topology, "nic0", "dimm0-0")
        network.start_transfer("t", path, demand=Gbps(10))
        victim = path.links[0]
        network.degrade_link(victim, 0.0)
        utils = network.link_utilizations()
        # Fully-degraded link with flows mapped on it reads 1.0 (failed),
        # matching the stateless helper's convention.
        assert utils[victim] in (0.0, 1.0)
