"""HostTopology graph container semantics."""

import pytest

from repro.errors import (
    DuplicateElementError,
    UnknownDeviceError,
    UnknownLinkError,
)
from repro.topology import (
    Device,
    DeviceType,
    HostTopology,
    Link,
    LinkClass,
    cascade_lake_2s,
)
from repro.units import GBps, Gbps, ns


@pytest.fixture
def tiny():
    t = HostTopology("tiny")
    t.add_device(Device("socket0", DeviceType.CPU_SOCKET, socket=0))
    t.add_device(Device("dimm0", DeviceType.DIMM, socket=0))
    t.add_device(Device("rc0", DeviceType.PCIE_ROOT_COMPLEX, socket=0))
    t.add_device(Device("nic0", DeviceType.NIC, socket=0))
    t.add_link(Link("membus", "socket0", "dimm0", LinkClass.INTRA_SOCKET,
                    GBps(131), ns(85)))
    t.add_link(Link("mesh", "socket0", "rc0", LinkClass.INTRA_SOCKET,
                    GBps(150), ns(50)))
    t.add_link(Link("pcie", "rc0", "nic0", LinkClass.PCIE_DOWNSTREAM,
                    Gbps(256), ns(70)))
    return t


class TestConstruction:
    def test_duplicate_device_rejected(self, tiny):
        with pytest.raises(DuplicateElementError):
            tiny.add_device(Device("socket0", DeviceType.CPU_SOCKET))

    def test_duplicate_link_rejected(self, tiny):
        with pytest.raises(DuplicateElementError):
            tiny.add_link(Link("membus", "socket0", "dimm0",
                               LinkClass.INTRA_SOCKET, GBps(1), 0.0))

    def test_link_to_unknown_device_rejected(self, tiny):
        with pytest.raises(UnknownDeviceError):
            tiny.add_link(Link("x", "socket0", "ghost",
                               LinkClass.INTRA_SOCKET, GBps(1), 0.0))

    def test_remove_link(self, tiny):
        tiny.remove_link("pcie")
        assert not tiny.has_link("pcie")
        assert tiny.degree("nic0") == 0


class TestLookup:
    def test_unknown_device_raises(self, tiny):
        with pytest.raises(UnknownDeviceError):
            tiny.device("nope")

    def test_unknown_link_raises(self, tiny):
        with pytest.raises(UnknownLinkError):
            tiny.link("nope")

    def test_contains_and_len(self, tiny):
        assert "nic0" in tiny
        assert len(tiny) == 4

    def test_filter_by_type(self, tiny):
        nics = tiny.devices(DeviceType.NIC)
        assert [d.device_id for d in nics] == ["nic0"]

    def test_filter_links_by_class(self, tiny):
        intra = tiny.links(LinkClass.INTRA_SOCKET)
        assert {l.link_id for l in intra} == {"membus", "mesh"}

    def test_endpoints(self, tiny):
        ids = {d.device_id for d in tiny.endpoints()}
        assert ids == {"socket0", "dimm0", "nic0"}


class TestAdjacency:
    def test_incident_links(self, tiny):
        ids = {l.link_id for l in tiny.incident_links("socket0")}
        assert ids == {"membus", "mesh"}

    def test_neighbors(self, tiny):
        assert set(tiny.neighbors("socket0")) == {"dimm0", "rc0"}

    def test_links_between_empty(self, tiny):
        assert tiny.links_between("nic0", "dimm0") == []

    def test_parallel_links(self):
        t = HostTopology()
        t.add_device(Device("s0", DeviceType.CPU_SOCKET, socket=0))
        t.add_device(Device("s1", DeviceType.CPU_SOCKET, socket=1))
        t.add_link(Link("upi0", "s0", "s1", LinkClass.INTER_SOCKET,
                        GBps(23), ns(140)))
        t.add_link(Link("upi1", "s0", "s1", LinkClass.INTER_SOCKET,
                        GBps(23), ns(140)))
        assert len(t.links_between("s0", "s1")) == 2
        assert t.degree("s0") == 2


class TestNuma:
    def test_socket_of(self, tiny):
        assert tiny.socket_of("nic0") == 0

    def test_same_socket(self, tiny):
        assert tiny.same_socket("nic0", "dimm0")

    def test_sockets_list(self):
        topo = cascade_lake_2s()
        assert topo.sockets() == [0, 1]

    def test_same_socket_none_is_false(self):
        topo = cascade_lake_2s()
        assert not topo.same_socket("external", "nic0")


class TestHealthAndCopy:
    def test_connected(self, tiny):
        assert tiny.is_connected()

    def test_disconnected_after_link_down(self, tiny):
        tiny.link("pcie").up = False
        assert not tiny.is_connected()

    def test_total_capacity_by_class(self, tiny):
        assert tiny.total_capacity(LinkClass.PCIE_DOWNSTREAM) == \
            pytest.approx(Gbps(256))

    def test_copy_is_independent(self, tiny):
        clone = tiny.copy()
        clone.link("pcie").up = False
        assert tiny.link("pcie").up

    def test_copy_preserves_degradation(self, tiny):
        tiny.link("pcie").degraded_capacity = Gbps(10)
        tiny.link("pcie").extra_latency = ns(100)
        clone = tiny.copy()
        assert clone.link("pcie").degraded_capacity == pytest.approx(Gbps(10))
        assert clone.link("pcie").extra_latency == pytest.approx(ns(100))

    def test_describe_mentions_counts(self, tiny):
        text = tiny.describe()
        assert "4 devices" in text and "3 links" in text
