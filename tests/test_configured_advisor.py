"""Configured hosts and the misconfiguration advisor."""

import pytest

from repro.devices import (
    MISCONFIGURATIONS,
    RECOMMENDED_CONFIG,
    NumaPolicy,
    build_configured_host,
)
from repro.diagnostics import advise, measure_signature
from repro.topology import cascade_lake_2s
from repro.units import us


@pytest.fixture(scope="module")
def topology():
    return cascade_lake_2s()


@pytest.fixture(scope="module")
def baseline(topology):
    return measure_signature(
        build_configured_host(topology, RECOMMENDED_CONFIG)
    )


class TestConfiguredHost:
    def test_input_topology_not_mutated(self, topology):
        before = topology.link("pcie-nic0").capacity
        build_configured_host(
            topology, RECOMMENDED_CONFIG.with_changes(relaxed_ordering=False)
        )
        assert topology.link("pcie-nic0").capacity == before

    def test_strict_ordering_scales_pcie_only(self, topology):
        host = build_configured_host(
            topology, RECOMMENDED_CONFIG.with_changes(relaxed_ordering=False)
        )
        adjusted = host.network.topology
        assert adjusted.link("pcie-nic0").capacity == pytest.approx(
            topology.link("pcie-nic0").capacity * 0.85
        )
        assert adjusted.link("membus0-0").capacity == \
            topology.link("membus0-0").capacity

    def test_moderation_adds_pcie_latency(self, topology):
        host = build_configured_host(
            topology,
            RECOMMENDED_CONFIG.with_changes(interrupt_moderation=us(50)),
        )
        adjusted = host.network.topology
        assert adjusted.link("pcie-nic0").base_latency == pytest.approx(
            topology.link("pcie-nic0").base_latency + us(50)
        )

    def test_numa_local_target(self, topology):
        host = build_configured_host(topology, RECOMMENDED_CONFIG)
        assert host.dma_target_dimm("nic0").startswith("dimm0")

    def test_numa_remote_target(self, topology):
        host = build_configured_host(
            topology,
            RECOMMENDED_CONFIG.with_changes(numa_policy=NumaPolicy.REMOTE),
        )
        assert host.dma_target_dimm("nic0").startswith("dimm1")

    def test_ddio_model_follows_config(self, topology):
        host = build_configured_host(
            topology, RECOMMENDED_CONFIG.with_changes(ddio_enabled=False)
        )
        assert not host.ddio.enabled
        assert host.membus_amplification() == 2.0


class TestAdvisor:
    def test_healthy_host_no_findings(self, baseline):
        assert advise(baseline, baseline) == []

    @pytest.mark.parametrize("name", sorted(MISCONFIGURATIONS))
    def test_every_misconfiguration_identified(self, topology, baseline,
                                               name):
        config = MISCONFIGURATIONS[name]
        signature = measure_signature(
            build_configured_host(topology, config)
        )
        findings = advise(signature, baseline)
        assert findings, f"{name}: no findings at all"
        assert findings[0].suspected == name

    def test_findings_sorted_by_severity(self, topology, baseline):
        config = RECOMMENDED_CONFIG.with_changes(
            ddio_enabled=False, relaxed_ordering=False
        )
        signature = measure_signature(
            build_configured_host(topology, config)
        )
        findings = advise(signature, baseline)
        assert len(findings) >= 2
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)
