"""Closed-loop recovery: re-placement, degradation, quarantine, reroute."""

from __future__ import annotations

import pytest

from repro import Gbps, Host, cascade_lake_2s, pipe
from repro.monitor import FailureInjector
from repro.resilience import RecoveryConfig, check_invariants
from repro.trace import TRACER, stop_tracing


CFG = RecoveryConfig(monitor=False, retry=False, tick_period=0.001,
                     flap_threshold=3, flap_window=0.05,
                     quarantine_holddown=0.02)


def _host() -> Host:
    return Host(cascade_lake_2s(), resilience=CFG,
                coalesce_recompute=True, decision_latency=0.0)


def _settle(host: Host, rounds: int = 5) -> None:
    host.run_until(host.now + rounds * CFG.tick_period)


class TestReplacement:
    def test_link_down_moves_intent_to_alternate_path(self):
        # dimm0-0 -> dimm1-0 crosses one of the two UPI links; killing
        # the one in use must move the placement onto the other.
        host = _host()
        placement = host.submit(pipe("x", "tA", src="dimm0-0",
                                     dst="dimm1-0", bandwidth=Gbps(50)))
        upi = next(l for l in placement.links() if l.startswith("upi"))
        other = ("upi-socket0-socket1-1" if upi.endswith("-0")
                 else "upi-socket0-socket1-0")

        injector = FailureInjector(host.network)
        injector.fail_link(upi)
        _settle(host)

        moved = host.manager.placement("x")
        assert upi not in moved.links()
        assert other in moved.links()
        assert host.recovery.actions_of("replace")
        assert not check_invariants(host.network, manager=host.manager,
                                    controller=host.recovery)
        host.shutdown()

    def test_flow_rerouted_with_placement(self):
        host = _host()
        placement = host.submit(pipe("x", "tA", src="dimm0-0",
                                     dst="dimm1-0", bandwidth=Gbps(50)))
        flow = host.network.start_transfer(
            "tA", placement.candidate.paths[0], demand=Gbps(50),
        )
        host.recovery.bind_flow("x", flow.flow_id)
        upi = next(l for l in placement.links() if l.startswith("upi"))

        FailureInjector(host.network).fail_link(upi)
        _settle(host)

        assert upi not in host.network.flow(flow.flow_id).path.links
        assert host.network.flow(flow.flow_id).current_rate > 0
        host.shutdown()


class TestDegradation:
    def test_no_alternate_degrades_and_restores_on_repair(self):
        # nic0 -> dimm0-0 has no alternate around pcie-nic0.
        host = _host()
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        injector = FailureInjector(host.network)
        failure = injector.degrade_link("pcie-nic0", capacity_factor=0.4)
        _settle(host)

        (record,) = host.recovery.degradations(active_only=True)
        assert record.intent_id == "x"
        assert record.link_id == "pcie-nic0"
        assert record.factor == pytest.approx(0.4, abs=0.01)
        # Tenant-visible: queryable by owner.
        assert host.recovery.degradations(tenant_id="tA")
        assert host.manager.arbiter.ceiling_on("pcie-nic0") < 1.0
        assert not check_invariants(host.network, manager=host.manager,
                                    controller=host.recovery)

        injector.clear(failure)
        _settle(host)
        assert not host.recovery.degradations(active_only=True)
        assert record.restored_at is not None
        assert host.manager.arbiter.ceiling_on("pcie-nic0") == 1.0
        assert host.recovery.actions_of("restore")
        host.shutdown()

    def test_down_link_without_alternate_is_explicitly_degraded(self):
        host = _host()
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        injector = FailureInjector(host.network)
        failure = injector.fail_link("pcie-nic0")
        _settle(host)

        # Cannot re-place (single-homed), must not be silently stranded.
        (record,) = host.recovery.degradations(active_only=True)
        assert record.factor == CFG.degrade_floor
        assert not check_invariants(host.network, manager=host.manager,
                                    controller=host.recovery)

        injector.clear(failure)
        _settle(host)
        assert not host.recovery.degradations(active_only=True)
        host.shutdown()

    def test_release_lifts_degradation_ceilings(self):
        host = _host()
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        FailureInjector(host.network).degrade_link("pcie-nic0",
                                                   capacity_factor=0.3)
        _settle(host)
        assert host.recovery.degradations(active_only=True)

        host.release("x")
        assert not host.recovery.degradations(active_only=True)
        assert host.manager.arbiter.ceiling_on("pcie-nic0") == 1.0
        host.shutdown()


class TestQuarantine:
    def test_flapping_link_is_quarantined_and_released(self):
        host = _host()
        placement = host.submit(pipe("x", "tA", src="dimm0-0",
                                     dst="dimm1-0", bandwidth=Gbps(50)))
        upi = next(l for l in placement.links() if l.startswith("upi"))

        injector = FailureInjector(host.network)
        failure = injector.flap_link(upi, period=0.004)
        host.run_until(host.now + 0.02)  # >= 3 transitions + ticks
        assert host.recovery.is_quarantined(upi)
        assert host.recovery.actions_of("quarantine")

        # The placement must have fled the flapping link even while the
        # link is momentarily up.
        assert upi not in host.manager.placement("x").links()

        injector.clear(failure)
        # Hold-down: stays quarantined until the link is stable.
        host.run_until(host.now + CFG.quarantine_holddown
                       + CFG.flap_window + 10 * CFG.tick_period)
        assert not host.recovery.is_quarantined(upi)
        assert host.recovery.actions_of("unquarantine")
        host.shutdown()


class TestTraceInstrumentation:
    def test_recovery_and_admission_spans_recorded(self):
        config = RecoveryConfig(monitor=False, tick_period=0.001)
        host = Host(cascade_lake_2s(), resilience=config,
                    coalesce_recompute=True, decision_latency=0.0,
                    trace=True)
        try:
            host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50)))
            # Park one intent (admission.retry span + parked counter).
            host.submit_with_retry(pipe("y", "tB", src="nic0",
                                        dst="dimm0-0",
                                        bandwidth=Gbps(200)))
            FailureInjector(host.network).degrade_link(
                "pcie-nic0", capacity_factor=0.3
            )
            host.run_until(host.now + 0.01)
        finally:
            host.shutdown()
            stop_tracing()

        names = {(s.category, s.name) for s in TRACER.spans()}
        assert ("recovery", "degrade") in names
        assert ("recovery", "tick") in names
        assert ("admission", "retry") in names
        tracks = {(c.category, c.track) for c in TRACER.counters()}
        assert ("admission", "admission.parked_intents") in tracks

    def test_replace_span_recorded(self):
        config = RecoveryConfig(monitor=False, retry=False,
                                tick_period=0.001)
        host = Host(cascade_lake_2s(), resilience=config,
                    coalesce_recompute=True, decision_latency=0.0,
                    trace=True)
        try:
            placement = host.submit(pipe("x", "tA", src="dimm0-0",
                                         dst="dimm1-0",
                                         bandwidth=Gbps(50)))
            upi = next(l for l in placement.links()
                       if l.startswith("upi"))
            FailureInjector(host.network).fail_link(upi)
            host.run_until(host.now + 0.01)
        finally:
            host.shutdown()
            stop_tracing()

        spans = [s for s in TRACER.spans()
                 if (s.category, s.name) == ("recovery", "replace")]
        assert spans
        assert any(s.args and s.args.get("outcome") == "replaced"
                   for s in spans)
