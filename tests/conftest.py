"""Shared fixtures for the hostnet test suite."""

from __future__ import annotations

import pytest

from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s, dgx_like, minimal_host


@pytest.fixture
def engine():
    """A fresh discrete-event engine at t=0."""
    return Engine()


@pytest.fixture
def minimal_net(engine):
    """A FabricNetwork over the minimal single-socket preset."""
    return FabricNetwork(minimal_host(), engine)


@pytest.fixture
def cascade_net(engine):
    """A FabricNetwork over the dual-socket Cascade-Lake-like preset."""
    return FabricNetwork(cascade_lake_2s(), engine)


@pytest.fixture
def dgx_net(engine):
    """A FabricNetwork over the 8-GPU/8-NIC DGX-like preset."""
    return FabricNetwork(dgx_like(), engine)


def run_for(network: FabricNetwork, duration: float) -> None:
    """Advance a network's engine by *duration* seconds."""
    network.engine.run_until(network.engine.now + duration)
