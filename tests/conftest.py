"""Shared fixtures for the hostnet test suite."""

from __future__ import annotations

import pytest

from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s, dgx_like, minimal_host
from repro.trace import TRACER, TraceConfig


@pytest.fixture(autouse=True)
def _tracer_hygiene():
    """Keep the process-wide tracer quiescent across tests.

    Any test may enable or reconfigure tracing (Host(trace=True), the
    CLI trace scenario, a tiny-capacity TraceConfig); this guarantees
    the next test starts with it disabled, empty, and on the default
    config, so timing-sensitive tests never pay for a leaked tracer and
    ring-capacity changes never bleed across tests.
    """
    yield
    if TRACER.enabled or len(TRACER):
        TRACER.disable()
        TRACER.clear()
    if TRACER.config != TraceConfig():
        TRACER.configure()


@pytest.fixture
def engine():
    """A fresh discrete-event engine at t=0."""
    return Engine()


@pytest.fixture
def minimal_net(engine):
    """A FabricNetwork over the minimal single-socket preset."""
    return FabricNetwork(minimal_host(), engine)


@pytest.fixture
def cascade_net(engine):
    """A FabricNetwork over the dual-socket Cascade-Lake-like preset."""
    return FabricNetwork(cascade_lake_2s(), engine)


@pytest.fixture
def dgx_net(engine):
    """A FabricNetwork over the 8-GPU/8-NIC DGX-like preset."""
    return FabricNetwork(dgx_like(), engine)


def run_for(network: FabricNetwork, duration: float) -> None:
    """Advance a network's engine by *duration* seconds."""
    network.engine.run_until(network.engine.now + duration)
