"""Cross-host migration: atomicity, escalation from recovery, rebalance."""

import pytest

from repro.errors import AdmissionError, MigrationError, UnknownHostError
from repro.fleet import Fleet
from repro.monitor import FailureInjector
from repro.core import pipe
from repro.units import Gbps


def kv(intent_id, tenant="tA", bandwidth=Gbps(50), src="nic0",
       dst="dimm0-0", bidirectional=False):
    return pipe(intent_id, tenant, src=src, dst=dst, bandwidth=bandwidth,
                bidirectional=bidirectional)


def reserved_total(host):
    ledger = host.manager.ledger
    return sum(
        ledger.reserved(link.link_id, direction)
        for link in host.topology.links()
        for direction in ("fwd", "rev")
    )


def test_migrate_moves_the_reservation():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("a"))
    assert fleet.scheduler.host_of("a") == "host00"
    src_before = reserved_total(fleet.host("host00"))
    assert src_before > 0

    moved = fleet.migrate("a", "host01")
    assert moved.host_id == "host01"
    assert fleet.scheduler.host_of("a") == "host01"
    assert reserved_total(fleet.host("host00")) == 0
    assert reserved_total(fleet.host("host01")) == pytest.approx(src_before)
    record = fleet.planner.records[-1]
    assert record.kind == "migrate" and record.ok
    assert (record.src, record.dst) == ("host00", "host01")


def test_migrate_rejects_noop_unknown_intent_and_unknown_host():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("a"))
    with pytest.raises(MigrationError, match="already on"):
        fleet.migrate("a", "host00")
    with pytest.raises(AdmissionError, match="not placed"):
        fleet.migrate("ghost", "host01")
    with pytest.raises(UnknownHostError):
        fleet.migrate("a", "host99")


def test_failed_migration_rolls_back_atomically():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("a", bandwidth=Gbps(100)))
    # Fill the destination's nic0 uplink so it must reject the migration.
    dst = fleet.host("host01")
    dst.manager.submit(fleet.remap_intent(
        kv("blocker1", tenant="tB", bandwidth=Gbps(115)), "host01"))
    dst.manager.submit(fleet.remap_intent(
        kv("blocker2", tenant="tB", bandwidth=Gbps(115)), "host01"))

    src_before = reserved_total(fleet.host("host00"))
    with pytest.raises(MigrationError, match="reinstated"):
        fleet.migrate("a", "host01")

    # All-or-nothing: the source placement is exactly as before.
    assert fleet.scheduler.host_of("a") == "host00"
    assert reserved_total(fleet.host("host00")) == pytest.approx(src_before)
    assert fleet.host("host00").manager.placement("a").intent.intent_id == "a"
    record = fleet.planner.records[-1]
    assert not record.ok and record.dst is None


def test_recovery_escalation_migrates_to_healthy_host():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit",
                  resilience=True)
    fleet.submit(kv("a", bandwidth=Gbps(100)))
    assert fleet.scheduler.host_of("a") == "host00"
    # Kill the placement's only uplink; local recovery cannot replace a
    # pipe whose source NIC lost its sole attach, so it escalates.
    FailureInjector(fleet.host("host00").network).fail_link("pcie-nic0")
    fleet.advance_to(0.2)

    assert fleet.scheduler.host_of("a") == "host01"
    rescue = [r for r in fleet.planner.migrations(kind="escalate") if r.ok]
    assert len(rescue) == 1
    assert rescue[0].intent_id == "a"
    fleet.shutdown()


def test_rebalance_moves_load_off_the_hottest_host():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit",
                  max_attempts=1, rebalance_threshold=0.3)
    # max_attempts=1 + first-fit piles everything onto host00.
    for i in range(3):
        fleet.submit(kv(f"i{i}", bandwidth=Gbps(60), src="nic0"))
    assert all(p.host_id == "host00" for p in fleet.placements())

    fleet.advance_to(0.01)
    moved = fleet.planner.migrations(kind="rebalance", ok_only=True)
    assert moved, "rebalance never fired"
    assert {p.host_id for p in fleet.placements()} == {"host00", "host01"}
    # The planner moves the largest migratable placement first.
    assert moved[0].dst == "host01"


def test_rebalance_respects_threshold():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit",
                  max_attempts=1, rebalance_threshold=0.95)
    fleet.submit(kv("a", bandwidth=Gbps(60)))
    fleet.advance_to(0.01)
    assert fleet.planner.migrations(kind="rebalance") == []


def test_migrate_fails_fast_when_destination_crashed():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("a"))
    src_before = reserved_total(fleet.host("host00"))
    fleet.health.crash("host01")
    # Pre-flight: the leg dies before any state moves.
    with pytest.raises(MigrationError, match="crashed"):
        fleet.migrate("a", "host01")
    assert fleet.scheduler.host_of("a") == "host00"
    assert reserved_total(fleet.host("host00")) == pytest.approx(src_before)
    record = fleet.planner.records[-1]
    assert not record.ok and "crashed" in record.detail
    fleet.shutdown()


def test_migrate_fails_fast_when_source_crashed_or_partitioned():
    fleet = Fleet("cascade_lake_2s", hosts=3, policy="first-fit")
    fleet.submit(kv("a"))
    fleet.health.crash("host00")
    with pytest.raises(MigrationError, match="source"):
        fleet.migrate("a", "host01")
    fleet.health.recover("host00")
    fleet.health.partition(["host00"])
    with pytest.raises(MigrationError, match="partition"):
        fleet.migrate("a", "host01")
    assert fleet.scheduler.host_of("a") == "host00"
    fleet.shutdown()


def failing_reinstate(monkeypatch, fleet, host_id):
    """Make *host_id*'s rollback window close: reinstate always fails."""
    from repro.errors import HostNetError

    manager = fleet.host(host_id).manager

    def boom(placement):
        raise HostNetError("source degraded mid-rollback")

    monkeypatch.setattr(manager, "reinstate", boom)


def fill_destination(fleet, dst="host01"):
    for blocker in ("blocker1", "blocker2"):
        fleet.submit(kv(blocker, tenant="tB", bandwidth=Gbps(115)))
        if fleet.scheduler.host_of(blocker) != dst:
            fleet.migrate(blocker, dst)


def test_rollback_failure_parks_orphan_without_recovery(monkeypatch):
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("a", bandwidth=Gbps(100)))
    fill_destination(fleet)
    failing_reinstate(monkeypatch, fleet, "host00")

    with pytest.raises(MigrationError, match="parked on planner.orphans"):
        fleet.migrate("a", "host01")
    # Never lost: unbound from the scheduler but parked for the operator.
    assert not fleet.scheduler.has_intent("a")
    (intent, src, reason), = fleet.planner.orphans
    assert intent.intent_id == "a" and src == "host00"
    assert "rollback" in reason
    fleet.shutdown()


def test_rollback_failure_requeues_into_recovery(monkeypatch):
    from repro.fleet import FleetRecoveryConfig, FleetRecoveryController
    from repro.fleet import check_fleet_invariants

    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    recovery = FleetRecoveryController(
        fleet, FleetRecoveryConfig(retry_backoff=0.005, max_retries=8,
                                   retry_timeout=5.0))
    fleet.submit(kv("a", bandwidth=Gbps(100)))
    fill_destination(fleet)
    failing_reinstate(monkeypatch, fleet, "host00")

    with pytest.raises(MigrationError, match="requeued for re-placement"):
        fleet.migrate("a", "host01")
    # The orphan went to the retry queue, and conservation still holds.
    assert recovery.is_pending("a")
    assert fleet.planner.orphans == []
    assert check_fleet_invariants(fleet, recovery=recovery) == []
    # Free the destination; the next retry pump re-places the session.
    fleet.release("blocker1")
    fleet.advance_to(fleet.now + 0.001)
    recovery.process(recovery.next_due())
    assert fleet.scheduler.host_of("a") == "host01"
    assert check_fleet_invariants(fleet, recovery=recovery) == []
    fleet.shutdown()
