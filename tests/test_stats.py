"""Statistics helpers: percentiles, summaries, EWMA, time series."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import (
    EwmaTracker,
    TimeSeries,
    mean,
    percentile,
    stddev,
    summarize,
)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_p0_is_min_p100_is_max(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, data, p):
        result = percentile(data, p)
        assert min(data) <= result <= max(data)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
    def test_monotone_in_p(self, data):
        assert percentile(data, 25) <= percentile(data, 75)


class TestSummaries:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_constant_is_zero(self):
        assert stddev([4.0, 4.0, 4.0]) == 0.0

    def test_stddev_short_is_zero(self):
        assert stddev([4.0]) == 0.0

    def test_summarize_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)
        assert s.mean == pytest.approx(2.5)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestEwmaTracker:
    def test_first_observation_sets_mean(self):
        t = EwmaTracker()
        t.update(10.0)
        assert t.value == 10.0

    def test_converges_toward_level(self):
        t = EwmaTracker(alpha=0.5)
        for _ in range(50):
            t.update(100.0)
        assert t.value == pytest.approx(100.0, rel=1e-6)

    def test_zscore_zero_before_baseline(self):
        t = EwmaTracker()
        assert t.zscore(123.0) == 0.0
        t.update(1.0)
        assert t.zscore(123.0) == 0.0  # still only 1 observation

    def test_zscore_flags_outlier(self):
        t = EwmaTracker(alpha=0.2)
        for v in [10.0, 10.5, 9.5, 10.2, 9.8, 10.1]:
            t.update(v)
        assert abs(t.zscore(10.0)) < 3
        assert t.zscore(100.0) > 10

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaTracker(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaTracker(alpha=1.5)


class TestTimeSeries:
    def test_append_and_last(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert ts.last() == (1.0, 2.0)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert ts.values() == [1.0, 2.0]

    def test_window(self):
        ts = TimeSeries()
        for i in range(10):
            ts.append(float(i), float(i * i))
        window = ts.window(2.0, 4.0)
        assert [t for t, _ in window] == [2.0, 3.0, 4.0]

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()
