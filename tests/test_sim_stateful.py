"""Stateful property testing of the fabric under random operation sequences.

Hypothesis drives random interleavings of flow starts/cancels, cap
changes, failures, and time advances against a live FabricNetwork, and
checks the global invariants after every step:

* no directed link carries more than its effective capacity;
* no flow exceeds its effective demand;
* per-tenant caps are respected;
* byte accounting is conserved (per-link totals equal the sum of per-
  tenant attributions, and directions sum to the total);
* the clock never moves backwards.
"""

import math

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim import Engine, FabricNetwork
from repro.topology import minimal_host, shortest_path
from repro.units import Gbps

TENANTS = ["t0", "t1", "t2"]
ENDPOINT_PAIRS = [("nic0", "dimm0-0"), ("dimm0-0", "nic0"),
                  ("nvme0", "dimm0-0"), ("nic0", "nvme0")]
CAPPABLE_LINKS = ["pcie-nic0", "pcie-nvme0", "membus0-0"]

_TOL = 1 + 1e-6


class FabricMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.network = FabricNetwork(minimal_host(), Engine())
        self.flow_ids = []
        self.last_now = 0.0

    # -- operations --------------------------------------------------------

    @rule(pair=st.sampled_from(ENDPOINT_PAIRS),
          tenant=st.sampled_from(TENANTS),
          size=st.one_of(st.none(),
                         st.floats(min_value=1e3, max_value=1e9)),
          demand_gbps=st.one_of(st.just(math.inf),
                                st.floats(min_value=0.1, max_value=300)))
    def start_flow(self, pair, tenant, size, demand_gbps):
        demand = demand_gbps if math.isinf(demand_gbps) else Gbps(demand_gbps)
        path = shortest_path(self.network.topology, *pair)
        flow = self.network.start_transfer(tenant, path, size=size,
                                           demand=demand)
        self.flow_ids.append(flow.flow_id)

    @rule()
    def cancel_some_flow(self):
        active = [f for f in self.flow_ids if self.network.has_flow(f)]
        if active:
            self.network.cancel_flow(active[0])

    @rule(tenant=st.sampled_from(TENANTS),
          link=st.sampled_from(CAPPABLE_LINKS),
          cap_gbps=st.floats(min_value=0.1, max_value=300),
          direction=st.sampled_from([None, "fwd", "rev"]))
    def set_cap(self, tenant, link, cap_gbps, direction):
        self.network.set_tenant_link_cap(tenant, link, Gbps(cap_gbps),
                                         direction=direction)

    @rule(tenant=st.sampled_from(TENANTS))
    def clear_caps(self, tenant):
        self.network.clear_tenant_caps(tenant)

    @rule(link=st.sampled_from(CAPPABLE_LINKS),
          factor=st.one_of(st.none(),
                           st.floats(min_value=0.05, max_value=1.0)))
    def degrade(self, link, factor):
        capacity = self.network.topology.link(link).capacity
        self.network.degrade_link(
            link, None if factor is None else capacity * factor
        )

    @rule(dt=st.floats(min_value=1e-6, max_value=0.05))
    def advance(self, dt):
        self.network.engine.run_until(self.network.engine.now + dt)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def clock_monotone(self):
        now = self.network.engine.now
        assert now >= self.last_now
        self.last_now = now

    @invariant()
    def no_link_oversubscribed(self):
        for link in self.network.topology.links():
            cap = link.effective_capacity
            for direction in ("fwd", "rev"):
                rate = self.network.link_rate(link.link_id, direction)
                assert rate <= cap * _TOL + 1e-6, (
                    f"{link.link_id}/{direction}: {rate} > {cap}"
                )

    @invariant()
    def no_flow_exceeds_demand(self):
        for flow in self.network.active_flows():
            assert flow.current_rate <= flow.effective_demand * _TOL + 1e-6

    @invariant()
    def caps_respected(self):
        for tenant in TENANTS:
            for link in CAPPABLE_LINKS:
                for direction in (None, "fwd", "rev"):
                    cap = self.network.tenant_link_cap(tenant, link,
                                                       direction)
                    if cap is None:
                        continue
                    rate = self.network.tenant_link_rate(tenant, link,
                                                         direction)
                    assert rate <= cap * _TOL + 1e-6, (
                        f"{tenant}@{link}/{direction}: {rate} > cap {cap}"
                    )

    @invariant()
    def accounting_consistent(self):
        for link in self.network.topology.links():
            total = self.network.link_bytes(link.link_id)
            by_direction = (
                self.network.link_bytes(link.link_id, "fwd")
                + self.network.link_bytes(link.link_id, "rev")
            )
            assert by_direction == pytest.approx(total, rel=1e-9, abs=1e-3)
            by_tenant = sum(
                self.network.tenant_link_bytes(t, link.link_id)
                for t in TENANTS + ["_system"]
            )
            assert by_tenant == pytest.approx(total, rel=1e-9, abs=1e-3)


FabricMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None,
)
TestFabricStateful = FabricMachine.TestCase
