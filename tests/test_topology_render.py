"""ASCII topology rendering."""

import pytest

from repro.topology import (
    PRESETS,
    cascade_lake_2s,
    load_preset,
    render_tree,
)
from repro.units import Gbps


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_every_device_appears(name):
    topology = load_preset(name)
    text = render_tree(topology)
    for device in topology.devices():
        assert device.device_id in text, device.device_id
    assert "(unreached)" not in text


def test_inter_socket_links_listed_first():
    text = render_tree(cascade_lake_2s())
    lines = text.splitlines()
    assert "<=>" in lines[1]
    assert "upi-socket0-socket1-0" in lines[1]


def test_link_specs_annotated():
    text = render_tree(cascade_lake_2s())
    assert "256.0Gbps" in text
    assert "70.0ns" in text


def test_external_leaf_under_each_nic():
    text = render_tree(cascade_lake_2s())
    assert text.count("external (external)") == 2  # once per NIC


def test_degraded_link_flagged():
    topology = cascade_lake_2s()
    topology.link("pcie-nic0").degraded_capacity = Gbps(10)
    text = render_tree(topology)
    assert "[DEGRADED]" in text


def test_parallel_links_counted():
    text = render_tree(load_preset("dgx_like"))
    # three UPI links are listed individually in the header
    assert text.count("<=>") == 3
