"""Applications: the paper's co-location scenarios drive the fabric."""

import pytest

from repro.errors import WorkloadError
from repro.units import Gbps, mib, to_Gbps
from repro.workloads import (
    GpuAllReduceApp,
    KvStoreApp,
    MaliciousFloodApp,
    MlTrainingApp,
    NvmeScanApp,
    RdmaLoopbackApp,
)


class TestRdmaLoopback:
    def test_consumes_both_directions(self, cascade_net):
        app = RdmaLoopbackApp(cascade_net, "t", nic="nic0", dimm="dimm0-0")
        app.start()
        assert app.achieved_rate() == pytest.approx(2 * Gbps(256), rel=1e-6)

    def test_exhausts_pcie_link(self, cascade_net):
        """§2: loopback can exhaust PCIe bandwidth."""
        app = RdmaLoopbackApp(cascade_net, "t", nic="nic0", dimm="dimm0-0")
        app.start()
        assert cascade_net.link_utilization("pcie-nic0") == pytest.approx(1.0)

    def test_offered_rate_cap(self, cascade_net):
        app = RdmaLoopbackApp(cascade_net, "t", nic="nic0", dimm="dimm0-0",
                              offered_rate=Gbps(10))
        app.start()
        assert app.achieved_rate() == pytest.approx(2 * Gbps(10), rel=1e-6)

    def test_stop_releases_bandwidth(self, cascade_net):
        app = RdmaLoopbackApp(cascade_net, "t", nic="nic0", dimm="dimm0-0")
        app.start()
        app.stop()
        assert cascade_net.link_utilization("pcie-nic0") == 0.0
        assert app.achieved_rate() == 0.0


class TestMlTraining:
    def test_iterations_complete(self, cascade_net):
        app = MlTrainingApp(cascade_net, "ml", dimm="dimm0-0", gpu="gpu0",
                            batch_bytes=mib(64), concurrency=2)
        app.start()
        cascade_net.engine.run_until(0.2)
        assert app.stats.ops_completed > 10
        assert app.stats.bytes_moved == \
            pytest.approx(app.stats.ops_completed * mib(64))

    def test_congestion_slows_iterations(self, cascade_net):
        app = MlTrainingApp(cascade_net, "ml", dimm="dimm0-0", gpu="gpu0",
                            batch_bytes=mib(64))
        app.start()
        cascade_net.engine.run_until(0.2)
        alone = app.stats.latency_summary().p50
        # saturate the shared mesh/membus path
        flood = MaliciousFloodApp(cascade_net, "x", src="dimm0-0", dst="gpu0",
                                  flow_count=8)
        flood.start()
        app.stats.latencies.clear()
        cascade_net.engine.run_until(0.5)
        congested = app.stats.latency_summary().p50
        assert congested > alone * 2

    def test_invalid_batch(self, cascade_net):
        with pytest.raises(WorkloadError):
            MlTrainingApp(cascade_net, "ml", dimm="dimm0-0", gpu="gpu0",
                          batch_bytes=0)


class TestKvStore:
    def test_latency_recorded(self, cascade_net):
        app = KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                         request_rate=10000, seed=1)
        app.start()
        cascade_net.engine.run_until(0.1)
        assert app.stats.ops_completed > 500
        summary = app.stats.latency_summary()
        assert summary.p50 > 0
        assert summary.p99 >= summary.p50

    def test_interference_inflates_tail(self, cascade_net):
        """The paper's KV-victim scenario: unrelated PCIe load hurts it."""
        app = KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                         request_rate=10000, seed=1)
        app.start()
        cascade_net.engine.run_until(0.1)
        alone = app.stats.latency_summary().p99
        aggressor = RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                                    dimm="dimm0-0")
        aggressor.start()
        app.stats.latencies.clear()
        cascade_net.engine.run_until(0.2)
        congested = app.stats.latency_summary().p99
        assert congested > 3 * alone

    def test_demand_flows_load_fabric(self, cascade_net):
        app = KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                         request_rate=100000, response_bytes=4096, seed=1)
        app.start()
        assert cascade_net.tenant_link_rate("kv", "pcie-nic0") > 0

    def test_set_request_rate(self, cascade_net):
        app = KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                         request_rate=1000, seed=1)
        app.start()
        before = cascade_net.tenant_link_rate("kv", "pcie-nic0")
        app.set_request_rate(100000)
        after = cascade_net.tenant_link_rate("kv", "pcie-nic0")
        assert after > before * 10

    def test_down_path_drops_requests(self, cascade_net):
        app = KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                         request_rate=10000, seed=1)
        app.start()
        cascade_net.set_link_up("pcie-nic0", False)
        cascade_net.engine.run_until(0.05)
        done_during_outage = app.stats.ops_completed
        # a few in-flight completions may land, but arrivals are dropped
        assert done_during_outage < 50


class TestNvmeScan:
    def test_chunks_complete(self, cascade_net):
        app = NvmeScanApp(cascade_net, "scan", nvme="nvme0", dimm="dimm0-0",
                          chunk_bytes=mib(32))
        app.start()
        cascade_net.engine.run_until(0.2)
        assert app.stats.ops_completed > 5

    def test_device_rate_respected(self, cascade_net):
        app = NvmeScanApp(cascade_net, "scan", nvme="nvme0", dimm="dimm0-0",
                          device_rate=Gbps(10))
        app.start()
        cascade_net.engine.run_until(0.5)
        achieved = app.stats.throughput(cascade_net.engine.now)
        assert to_Gbps(achieved) <= 11.0


class TestGpuAllReduce:
    def test_ring_rounds(self, dgx_net):
        app = GpuAllReduceApp(dgx_net, "train",
                              gpus=["gpu0", "gpu2", "gpu4", "gpu6"],
                              shard_bytes=mib(32))
        app.start()
        dgx_net.engine.run_until(0.2)
        assert app.stats.ops_completed > 2
        assert app.stats.bytes_moved == \
            pytest.approx(app.stats.ops_completed * 4 * mib(32), rel=0.5)

    def test_needs_two_gpus(self, dgx_net):
        with pytest.raises(WorkloadError):
            GpuAllReduceApp(dgx_net, "t", gpus=["gpu0"])


class TestMaliciousFlood:
    def test_flow_count_steals_share(self, cascade_net):
        victim = cascade_net.start_transfer(
            "victim",
            __import__("repro.topology", fromlist=["shortest_path"])
            .shortest_path(cascade_net.topology, "nic0", "dimm0-0"),
        )
        flood = MaliciousFloodApp(cascade_net, "evil", src="nic0",
                                  dst="dimm0-0", flow_count=9)
        flood.start()
        # 9 attacker flows vs 1 victim flow: victim gets ~1/10
        assert victim.current_rate == pytest.approx(Gbps(256) / 10, rel=0.01)
        assert flood.attack_rate() == pytest.approx(Gbps(256) * 0.9, rel=0.01)

    def test_stop_restores(self, cascade_net):
        flood = MaliciousFloodApp(cascade_net, "evil", src="nic0",
                                  dst="dimm0-0", flow_count=4)
        flood.start()
        flood.stop()
        assert cascade_net.link_utilization("pcie-nic0") == 0.0

    def test_app_stats_lifecycle(self, cascade_net):
        flood = MaliciousFloodApp(cascade_net, "evil", src="nic0",
                                  dst="dimm0-0")
        assert not flood.running
        flood.start()
        assert flood.running and flood.stats.started_at is not None
        flood.stop()
        assert flood.stats.stopped_at is not None
