"""Fleet faults: health/domains, schedules, injector, recovery, retries."""

import pytest

from repro.errors import FleetError, MigrationError, UnknownHostError
from repro.core import pipe
from repro.fleet import (
    Fleet,
    FleetFaultConfig,
    FleetFaultEvent,
    FleetFaultInjector,
    FleetFaultSchedule,
    FleetHealth,
    FleetRecoveryConfig,
    FleetRecoveryController,
    check_fleet_invariants,
    generate_fault_schedule,
)
from repro.resilience.invariants import diff_snapshots, snapshot_fabric
from repro.units import Gbps


def kv(intent_id, tenant="tA", bandwidth=Gbps(50)):
    return pipe(intent_id, tenant, src="nic0", dst="dimm0-0",
                bandwidth=bandwidth)


def make_fleet(hosts=3, domains=3, clock="event", policy="best-fit",
               **kwargs):
    return Fleet("cascade_lake_2s", hosts=hosts, policy=policy,
                 clock=clock, failure_domains=domains, **kwargs)


def schedule_of(*events, seed=0):
    return FleetFaultSchedule(seed=seed, events=tuple(events))


# -- FleetHealth ------------------------------------------------------------


def test_health_domains_round_robin():
    health = FleetHealth(["h0", "h1", "h2", "h3", "h4"], domains=2)
    assert health.domain_of("h0") == 0
    assert health.domain_of("h1") == 1
    assert health.domain_of("h2") == 0
    assert health.domain_members(0) == ["h0", "h2", "h4"]
    assert health.domain_members(1) == ["h1", "h3"]


def test_health_domains_clamped_to_host_count():
    health = FleetHealth(["h0", "h1"], domains=8)
    assert {health.domain_of("h0"), health.domain_of("h1")} == {0, 1}


def test_health_fault_state_and_avoid_set():
    health = FleetHealth(["h0", "h1", "h2", "h3"], domains=2)
    assert health.avoid_hosts() == frozenset()
    health.crash("h0")
    assert health.is_crashed("h0")
    assert health.crashed == frozenset({"h0"})
    # h0 is in domain 0 with h2: the whole domain becomes avoid-listed.
    assert health.faulted_domains() == frozenset({0})
    assert health.avoid_hosts() == frozenset({"h0", "h2"})
    health.recover("h0")
    assert health.avoid_hosts() == frozenset()

    health.degrade("h1", factor=0.3)
    assert health.is_degraded("h1")
    assert health.degrade_factor("h1") == pytest.approx(0.3)
    assert health.avoid_hosts() == frozenset({"h1", "h3"})
    health.restore("h1")
    assert health.degraded == frozenset()


def test_health_rejects_unknown_hosts_and_bad_factors():
    health = FleetHealth(["h0", "h1"])
    with pytest.raises(UnknownHostError):
        health.crash("ghost")
    with pytest.raises(UnknownHostError):
        health.degrade("ghost", factor=0.5)
    with pytest.raises(FleetError):
        health.degrade("h0", factor=0.0)
    with pytest.raises(FleetError):
        health.degrade("h0", factor=1.5)
    # State ops are idempotent: the injector's skip logic sits above.
    health.crash("h0")
    health.crash("h0")
    assert health.crashed == frozenset({"h0"})
    health.recover("h0")
    health.recover("h0")
    assert health.crashed == frozenset()


def test_health_partition_blocks_reachability():
    health = FleetHealth(["h0", "h1", "h2", "h3"])
    assert health.reachable("h0", "h3")
    token = health.partition(["h0", "h1"])
    assert health.reachable("h0", "h1")  # same side
    assert health.reachable("h2", "h3")  # same side
    assert not health.reachable("h0", "h2")  # crosses the cut
    assert not health.reachable("h3", "h1")
    assert health.partitions == [frozenset({"h0", "h1"})]
    health.heal(token)
    assert health.reachable("h0", "h2")
    health.heal(token)  # idempotent


# -- schedule generation ----------------------------------------------------


def test_generate_schedule_is_deterministic_and_pure():
    health = FleetHealth([f"h{i}" for i in range(8)], domains=4)
    config = FleetFaultConfig(seed=7, faults=12, horizon=1.0)
    first = generate_fault_schedule(config, health)
    second = generate_fault_schedule(config, health)
    assert first == second
    assert generate_fault_schedule(
        FleetFaultConfig(seed=8, faults=12, horizon=1.0), health) != first
    # Pure: generating a schedule never mutates the health it reads.
    assert health.crashed == frozenset()
    assert health.avoid_hosts() == frozenset()


def test_generate_schedule_covers_kinds_and_respects_bounds():
    health = FleetHealth([f"h{i}" for i in range(8)], domains=4)
    config = FleetFaultConfig(seed=3, faults=10, horizon=2.0)
    schedule = generate_fault_schedule(config, health)
    kinds = {e.kind for e in schedule.events}
    assert kinds == {"crash", "degrade", "partition"}
    lo = config.start_fraction * config.horizon
    for event in schedule.events:
        assert lo <= event.time < config.horizon
        assert event.duration > 0
        assert set(event.targets) <= set(health.host_ids())
        if event.kind == "degrade":
            assert (config.degrade_factor[0] <= event.factor
                    <= config.degrade_factor[1])
        if event.kind == "partition":
            # Partitions cut a whole failure domain off.
            domain = health.domain_of(event.targets[0])
            assert list(event.targets) == health.domain_members(domain)
    assert schedule.end_time == max(e.clear_time for e in schedule.events)


def test_generate_schedule_caps_concurrent_downtime():
    health = FleetHealth(["h0", "h1", "h2", "h3"])
    config = FleetFaultConfig(seed=1, faults=40, horizon=1.0,
                              outage_fraction=(0.5, 0.9),
                              max_down_fraction=0.25)
    schedule = generate_fault_schedule(config, health)
    # Sweep the timeline: never more than 1 of 4 hosts down at once.
    marks = sorted({e.time for e in schedule.events})
    for t in marks:
        down = set()
        for e in schedule.events:
            if e.kind in ("crash", "degrade") and e.time <= t < e.clear_time:
                down.update(e.targets)
        assert len(down) <= 1


# -- telemetry fault marks --------------------------------------------------


def test_telemetry_set_fault_marks_unhealthy():
    fleet = make_fleet(hosts=2, domains=1)
    try:
        assert fleet.telemetry.headroom("host00").healthy
        fleet.telemetry.set_fault("host00", True)
        assert not fleet.telemetry.headroom("host00").healthy
        assert fleet.telemetry.is_faulted("host00")
        fleet.telemetry.set_fault("host00", False)
        assert fleet.telemetry.headroom("host00").healthy
        with pytest.raises(UnknownHostError):
            fleet.telemetry.set_fault("ghost", True)
    finally:
        fleet.shutdown()


# -- crash / recover through the injector -----------------------------------


@pytest.mark.parametrize("clock", ["event", "lockstep"])
def test_crash_evacuates_and_recovery_reactivates(clock):
    fleet = make_fleet(hosts=3, domains=3, clock=clock)
    recovery = FleetRecoveryController(fleet)
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=0.05))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        placed = fleet.submit(kv("a"))
        assert placed.host_id == "host00"
        injector.advance_to(0.02)
        # Evacuated off the dead host, still placed somewhere alive.
        assert fleet.health.is_crashed("host00")
        assert fleet.scheduler.host_of("a") != "host00"
        assert not fleet.host("host00").manager.placements()
        assert recovery.evacuated == 1
        assert not fleet.clock.is_active("host00")
        assert check_fleet_invariants(fleet, recovery=recovery) == []

        injector.advance_to(0.1)
        assert not fleet.health.is_crashed("host00")
        assert fleet.clock.is_active("host00")
        # The recovered host admits new work again.
        fresh = fleet.submit(kv("b", tenant="tB"))
        assert fresh.host_id in {"host00", "host01", "host02"}
        assert check_fleet_invariants(fleet, recovery=recovery) == []
        assert injector.counters()["crashes"] == 1
        assert injector.counters()["recoveries"] == 1
    finally:
        fleet.shutdown()


def test_crash_without_recovery_drops_placements():
    fleet = make_fleet(hosts=2, domains=1)
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=0.02))
    injector = FleetFaultInjector(fleet, schedule)
    try:
        fleet.submit(kv("a"))
        injector.advance_to(0.015)
        # No controller attached: the sessions die with the host.
        assert not fleet.scheduler.has_intent("a")
        assert injector.counters()["sessions_dropped"] == 1
        assert check_fleet_invariants(fleet) == []
    finally:
        fleet.shutdown()


def test_event_clock_never_wakes_a_crashed_host():
    fleet = make_fleet(hosts=2, domains=1, clock="event")
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=1.0))
    injector = FleetFaultInjector(fleet, schedule,
                                  recovery=FleetRecoveryController(fleet))
    try:
        fleet.submit(kv("a"))
        injector.advance_to(0.02)
        frozen_at = fleet.host("host00").engine.now
        assert fleet.clock.wake("host00") == 0
        injector.advance_to(0.5)
        assert fleet.host("host00").engine.now == frozen_at
    finally:
        fleet.shutdown()


# -- degrade: live migration + bit-exact restore ----------------------------


def test_degrade_live_migrates_and_restores_bit_exact():
    fleet = make_fleet(hosts=2, domains=2)
    recovery = FleetRecoveryController(fleet)
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="degrade", targets=("host00",),
                        duration=0.05, factor=0.3))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        fleet.submit(kv("a"))
        before = snapshot_fabric(fleet.host("host00").network)
        injector.advance_to(0.02)
        assert fleet.health.is_degraded("host00")
        # Live migration: the session moved without ever being released.
        assert fleet.scheduler.host_of("a") == "host01"
        assert recovery.evacuated == 1
        assert [r.kind for r in fleet.planner.records if r.ok] \
            == ["evacuate"]
        assert not fleet.telemetry.headroom("host00").healthy
        injector.advance_to(0.1)
        # Repair restores every link spec bit-exact.
        assert diff_snapshots(
            before, snapshot_fabric(fleet.host("host00").network)) == []
        assert fleet.telemetry.headroom("host00").healthy
        assert check_fleet_invariants(fleet, recovery=recovery) == []
    finally:
        fleet.shutdown()


def test_degrade_respects_evacuate_degraded_off():
    fleet = make_fleet(hosts=2, domains=2)
    recovery = FleetRecoveryController(
        fleet, FleetRecoveryConfig(evacuate_degraded=False))
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="degrade", targets=("host00",),
                        duration=0.02, factor=0.5))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        fleet.submit(kv("a"))
        injector.advance_to(0.015)
        # Stays put: degraded hosts keep serving when evacuation is off.
        assert fleet.scheduler.host_of("a") == "host00"
        assert recovery.evacuated == 0
    finally:
        fleet.shutdown()


# -- partitions -------------------------------------------------------------


def test_partition_blocks_migration_but_not_admission():
    fleet = make_fleet(hosts=4, domains=2)
    try:
        fleet.submit(kv("a"))
        assert fleet.scheduler.host_of("a") == "host00"
        fleet.health.partition(["host00", "host02"])
        # Migration legs across the cut fail fast, pre-flight.
        with pytest.raises(MigrationError, match="partition"):
            fleet.migrate("a", "host01")
        # Within a side it still works.
        moved = fleet.migrate("a", "host02")
        assert moved.host_id == "host02"
        # Fresh admission is not a migration leg: any host may take it.
        assert fleet.try_submit(kv("b", tenant="tB")) is not None
    finally:
        fleet.shutdown()


# -- placement avoid-sets ---------------------------------------------------


def test_best_fit_avoids_faulted_domain_when_possible():
    fleet = make_fleet(hosts=4, domains=4, policy="best-fit")
    try:
        fleet.health.degrade("host00", factor=0.5)
        placed = fleet.submit(kv("a"))
        assert placed.host_id != "host00"
        # Soft signal: when every other host is avoided too, a fitting
        # avoided host still beats rejection.
        for h in ("host01", "host02", "host03"):
            fleet.health.degrade(h, factor=0.5)
        assert fleet.try_submit(kv("b", tenant="tB")) is not None
    finally:
        fleet.shutdown()


def test_scheduler_hard_filters_crashed_hosts():
    fleet = make_fleet(hosts=2, domains=1, policy="first-fit")
    try:
        fleet.health.crash("host00")
        placed = fleet.submit(kv("a"))
        assert placed.host_id == "host01"
    finally:
        fleet.shutdown()


# -- the retry pump ---------------------------------------------------------


def full_fleet_with_crash(max_retries=2, timeout=10.0):
    """A 2-host fleet where host01 is too full to absorb host00."""
    fleet = make_fleet(hosts=2, domains=1)
    recovery = FleetRecoveryController(
        fleet, FleetRecoveryConfig(max_retries=max_retries,
                                   retry_backoff=0.005,
                                   backoff_growth=2.0,
                                   retry_timeout=timeout))
    fleet.submit(kv("victim", bandwidth=Gbps(100)))
    if fleet.scheduler.host_of("victim") != "host00":
        fleet.migrate("victim", "host00")
    for blocker in ("blocker1", "blocker2"):
        fleet.submit(kv(blocker, tenant="tB", bandwidth=Gbps(115)))
        if fleet.scheduler.host_of(blocker) != "host01":
            fleet.migrate(blocker, "host01")
    assert fleet.scheduler.host_of("victim") == "host00"
    assert fleet.scheduler.host_of("blocker1") == "host01"
    assert fleet.scheduler.host_of("blocker2") == "host01"
    return fleet, recovery


def test_retry_backoff_then_success_when_headroom_returns():
    fleet, recovery = full_fleet_with_crash(max_retries=8)
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=1.0))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        injector.advance_to(0.012)
        # Nowhere to go: parked, exponential backoff from the crash time.
        assert recovery.is_pending("victim")
        assert recovery.pending_replacements == 1
        first_due = recovery.next_due()
        assert first_due == pytest.approx(0.01 + 0.005, abs=1e-9)
        injector.advance_to(first_due + 0.001)
        assert recovery.retries == 1
        assert recovery.is_pending("victim")  # still full; re-parked
        assert recovery.next_due() == pytest.approx(first_due + 0.01,
                                                    abs=1e-9)
        # Free the destination: the next retry lands the evacuee.
        fleet.release("blocker1")
        injector.advance_to(recovery.next_due() + 0.001)
        assert not recovery.is_pending("victim")
        assert fleet.scheduler.host_of("victim") == "host01"
        assert recovery.evacuated == 1
        assert recovery.shed == 0
        assert check_fleet_invariants(fleet, recovery=recovery) == []
    finally:
        fleet.shutdown()


def test_retry_budget_exhaustion_sheds_lowest_value_last():
    fleet, recovery = full_fleet_with_crash(max_retries=2)
    shed_ids = []
    recovery.on_shed(lambda intent: shed_ids.append(intent.intent_id))
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=1.0))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        injector.advance_to(0.5)
        assert shed_ids == ["victim"]
        assert recovery.shed == 1
        assert recovery.retries_exhausted == 1
        assert recovery.retries == 2  # bounded by max_retries
        assert recovery.next_due() is None
        assert check_fleet_invariants(fleet, recovery=recovery) == []
    finally:
        fleet.shutdown()


def test_retry_timeout_sheds_before_budget():
    fleet, recovery = full_fleet_with_crash(max_retries=50, timeout=0.02)
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=1.0))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        injector.advance_to(0.5)
        assert recovery.shed == 1
        assert recovery.retries < 50
    finally:
        fleet.shutdown()


def test_cancel_drops_a_parked_session():
    fleet, recovery = full_fleet_with_crash()
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="crash", targets=("host00",),
                        duration=1.0))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        injector.advance_to(0.02)
        assert recovery.is_pending("victim")
        assert recovery.cancel("victim")
        assert not recovery.cancel("victim")  # idempotent
        assert recovery.cancelled == 1
        injector.advance_to(0.5)
        assert recovery.shed == 0  # cancelled, not lost
        assert check_fleet_invariants(fleet, recovery=recovery) == []
    finally:
        fleet.shutdown()


def test_degrade_heals_in_place_when_restore_beats_retry():
    fleet = make_fleet(hosts=2, domains=1)
    recovery = FleetRecoveryController(
        fleet, FleetRecoveryConfig(retry_backoff=0.05, max_retries=8))
    # Degrade ends at 0.03, before the first retry fires at ~0.06.
    schedule = schedule_of(
        FleetFaultEvent(time=0.01, kind="degrade", targets=("host00",),
                        duration=0.02, factor=0.5))
    injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
    try:
        fleet.submit(kv("victim", bandwidth=Gbps(100)))
        fleet.submit(kv("blocker1", tenant="tB", bandwidth=Gbps(115)))
        fleet.submit(kv("blocker2", tenant="tB", bandwidth=Gbps(115)))
        injector.advance_to(0.2)
        assert recovery.healed_in_place == 1
        assert fleet.scheduler.host_of("victim") == "host00"
        assert check_fleet_invariants(fleet, recovery=recovery) == []
    finally:
        fleet.shutdown()
