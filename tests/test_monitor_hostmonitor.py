"""HostMonitor facade: end-to-end detection of the paper's failure cases."""

import pytest

from repro.monitor import AnomalyKind, FailureInjector, HostMonitor
from repro.units import us
from repro.workloads import KvStoreApp, RdmaLoopbackApp

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0", "nic1"]


@pytest.fixture
def monitor(cascade_net):
    m = HostMonitor(cascade_net, probers=PROBERS, telemetry_period=0.005,
                    heartbeat_period=0.005)
    m.start()
    return m


def settle(net, monitor, t=0.05):
    net.engine.run_until(t)
    monitor.record_baseline()
    report = monitor.check()
    return report


class TestHealthyOperation:
    def test_idle_host_healthy(self, cascade_net, monitor):
        report = settle(cascade_net, monitor)
        assert report.healthy
        assert "HEALTHY" in report.describe()

    def test_steady_workload_healthy(self, cascade_net, monitor):
        KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
                   request_rate=5000, seed=1).start()
        report = settle(cascade_net, monitor, t=0.1)
        assert not report.bad_probes


class TestFailureDetection:
    def test_silent_switch_failure_detected_and_localized(self, cascade_net,
                                                          monitor):
        """§3.1's motivating case end to end."""
        settle(cascade_net, monitor)
        truth = FailureInjector(cascade_net).degrade_switch(
            "pcisw0", capacity_factor=0.1, extra_latency=us(5)
        )
        cascade_net.engine.run_until(0.1)
        report = monitor.check()
        assert not report.healthy
        assert report.bad_probes
        top = report.top_link_suspect()
        assert top is not None
        assert top.element_id in truth.affected_links or \
            top.suspicion == 1.0

    def test_link_down_raises_missed_heartbeats(self, cascade_net, monitor):
        settle(cascade_net, monitor)
        FailureInjector(cascade_net).fail_link("pcie-nic0")
        cascade_net.engine.run_until(0.1)
        report = monitor.check()
        missed = [a for a in report.anomalies
                  if a.kind is AnomalyKind.MISSED_HEARTBEAT]
        assert missed

    def test_congestion_flagged_by_threshold(self, cascade_net, monitor):
        settle(cascade_net, monitor)
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        cascade_net.engine.run_until(0.3)
        report = monitor.check()
        exceeded = [a for a in report.anomalies
                    if a.kind is AnomalyKind.THRESHOLD_EXCEEDED]
        assert any("pcie" in a.metric for a in exceeded)

    def test_detection_time_bounded_by_periods(self, cascade_net):
        """Time-to-detect is a few probing periods, not seconds (E4)."""
        monitor = HostMonitor(cascade_net, probers=PROBERS,
                              telemetry_period=0.002,
                              heartbeat_period=0.002)
        monitor.start()
        cascade_net.engine.run_until(0.02)
        monitor.record_baseline()
        injected_at = cascade_net.engine.now
        FailureInjector(cascade_net).degrade_switch(
            "pcisw0", capacity_factor=0.1, extra_latency=us(5))
        detected_at = None
        t = injected_at
        while t < injected_at + 0.05:
            t += 0.002
            cascade_net.engine.run_until(t)
            if monitor.check().bad_probes:
                detected_at = t
                break
        assert detected_at is not None
        assert detected_at - injected_at <= 0.01


class TestMonitorConfig:
    def test_default_probers_are_endpoints(self, cascade_net):
        monitor = HostMonitor(cascade_net)
        probed = {d for pair in monitor.heartbeats.pairs() for d in pair}
        assert "external" not in probed
        assert "nic0" in probed

    def test_overhead_zero_in_local_mode(self, cascade_net, monitor):
        cascade_net.engine.run_until(0.1)
        assert monitor.monitoring_overhead_rate() == 0.0

    def test_ship_mode_reports_overhead(self, cascade_net):
        monitor = HostMonitor(cascade_net, probers=PROBERS,
                              processing="ship")
        monitor.start()
        cascade_net.engine.run_until(0.1)
        assert monitor.monitoring_overhead_rate() > 0

    def test_stop_is_idempotent(self, cascade_net, monitor):
        monitor.stop()
        monitor.stop()

    def test_check_consumes_samples_once(self, cascade_net, monitor):
        settle(cascade_net, monitor)
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        cascade_net.engine.run_until(0.3)
        first = monitor.check()
        # the loopback stays on, but already-scanned samples don't re-flag
        second = monitor.check()
        threshold_first = [a for a in first.anomalies
                           if a.kind is AnomalyKind.THRESHOLD_EXCEEDED]
        threshold_second = [a for a in second.anomalies
                            if a.kind is AnomalyKind.THRESHOLD_EXCEEDED]
        assert len(threshold_first) > 0
        assert len(threshold_second) <= len(threshold_first)
