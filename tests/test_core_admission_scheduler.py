"""Reservation ledger, admission control, and scheduler strategies."""

import pytest

from repro.core import (
    AdmissionController,
    FirstFitScheduler,
    RandomScheduler,
    ReservationLedger,
    TopologyAwareScheduler,
    interpret,
    make_scheduler,
    pipe,
)
from repro.errors import AdmissionError, ScheduleError
from repro.topology import cascade_lake_2s, dgx_like
from repro.units import Gbps


@pytest.fixture
def cascade():
    return cascade_lake_2s()


@pytest.fixture
def dgx():
    return dgx_like()


def compiled_pipe(topo, intent_id, src, dst, bandwidth, **kw):
    return interpret(topo, pipe(intent_id, "t", src, dst, bandwidth, **kw))


class TestLedger:
    def test_commit_and_release(self, cascade):
        ledger = ReservationLedger(cascade)
        compiled = compiled_pipe(cascade, "i", "nic0", "dimm0-0", Gbps(50))
        candidate = compiled.candidates[0]
        ledger.commit("i", candidate)
        assert ledger.reserved_total("pcie-nic0") == pytest.approx(Gbps(50))
        assert ledger.committed_intents() == ["i"]
        ledger.release("i")
        assert ledger.reserved_total("pcie-nic0") == 0.0

    def test_double_commit_rejected(self, cascade):
        ledger = ReservationLedger(cascade)
        candidate = compiled_pipe(cascade, "i", "nic0", "dimm0-0",
                                  Gbps(10)).candidates[0]
        ledger.commit("i", candidate)
        with pytest.raises(AdmissionError):
            ledger.commit("i", candidate)

    def test_release_unknown_rejected(self, cascade):
        with pytest.raises(AdmissionError):
            ReservationLedger(cascade).release("ghost")

    def test_reservations_accumulate(self, cascade):
        ledger = ReservationLedger(cascade)
        for i in range(3):
            candidate = compiled_pipe(cascade, f"i{i}", "nic0", "dimm0-0",
                                      Gbps(20)).candidates[0]
            ledger.commit(f"i{i}", candidate)
        assert ledger.reserved_total("pcie-nic0") == pytest.approx(Gbps(60))

    def test_utilization(self, cascade):
        ledger = ReservationLedger(cascade)
        candidate = compiled_pipe(cascade, "i", "nic0", "dimm0-0",
                                  Gbps(128)).candidates[0]
        ledger.commit("i", candidate)
        demand = candidate.demands[0]
        assert ledger.utilization(demand.link_id, demand.direction) == \
            pytest.approx(0.5)

    def test_fits_respects_headroom(self, cascade):
        ledger = ReservationLedger(cascade)
        big = compiled_pipe(cascade, "i", "nic0", "dimm0-0",
                            Gbps(250)).candidates[0]
        assert ledger.fits(big, headroom=1.0)
        assert not ledger.fits(big, headroom=0.9)


class TestAdmission:
    def test_admit_until_full(self, cascade):
        ledger = ReservationLedger(cascade)
        admission = AdmissionController(ledger, headroom=1.0)
        admitted = 0
        for i in range(10):
            compiled = compiled_pipe(cascade, f"i{i}", "nic0", "dimm0-0",
                                     Gbps(64))
            feasible = admission.feasible(compiled)
            if not feasible:
                break
            decision = admission.admit(compiled, feasible[0])
            assert decision.admitted
            admitted += 1
        # 256 Gbps bottleneck / 64 Gbps floors = exactly 4 fit
        assert admitted == 4
        assert admission.admitted_count == 4

    def test_reject_records_reason(self, cascade):
        ledger = ReservationLedger(cascade)
        admission = AdmissionController(ledger)
        compiled = compiled_pipe(cascade, "i", "nic0", "dimm0-0", Gbps(10))
        decision = admission.reject(compiled, "testing")
        assert not decision.admitted
        assert admission.rejected_count == 1

    def test_invalid_headroom(self, cascade):
        with pytest.raises(ValueError):
            AdmissionController(ReservationLedger(cascade), headroom=0.0)

    def test_overcommit_headroom_admits_more(self, cascade):
        strict = AdmissionController(ReservationLedger(cascade),
                                     headroom=1.0)
        loose = AdmissionController(ReservationLedger(cascade),
                                    headroom=2.0)
        counts = []
        for admission in (strict, loose):
            n = 0
            for i in range(20):
                compiled = compiled_pipe(cascade, f"i{i}", "nic0",
                                         "dimm0-0", Gbps(64))
                feasible = admission.feasible(compiled)
                if not feasible:
                    break
                admission.admit(compiled, feasible[0])
                n += 1
            counts.append(n)
        assert counts[1] == 2 * counts[0]


class TestSchedulers:
    def test_topology_aware_balances(self, dgx):
        """Successive gpu0->dimm1-0 pipes should spread across UPI links /
        root complexes rather than stacking on one."""
        ledger = ReservationLedger(dgx)
        admission = AdmissionController(ledger, headroom=1.0)
        scheduler = TopologyAwareScheduler()
        chosen_links = []
        for i in range(3):
            compiled = interpret(dgx, pipe(f"i{i}", "t", "gpu0", "dimm1-0",
                                           Gbps(15)), k=6)
            candidate = scheduler.choose(compiled, admission)
            admission.admit(compiled, candidate)
            chosen_links.append(frozenset(candidate.links()))
        assert len(set(chosen_links)) > 1, "scheduler never diversified"

    def test_first_fit_always_first(self, dgx):
        ledger = ReservationLedger(dgx)
        admission = AdmissionController(ledger, headroom=1.0)
        scheduler = FirstFitScheduler()
        compiled = interpret(dgx, pipe("i", "t", "gpu0", "dimm1-0",
                                       Gbps(10)), k=6)
        candidate = scheduler.choose(compiled, admission)
        assert candidate == admission.feasible(compiled)[0]

    def test_random_deterministic_by_seed(self, dgx):
        compiled = interpret(dgx, pipe("i", "t", "gpu0", "dimm1-0",
                                       Gbps(10)), k=6)
        picks = []
        for _ in range(2):
            admission = AdmissionController(ReservationLedger(dgx))
            picks.append(RandomScheduler(seed=7).choose(compiled, admission))
        assert picks[0] == picks[1]

    def test_no_feasible_candidate_raises(self, cascade):
        ledger = ReservationLedger(cascade)
        admission = AdmissionController(ledger, headroom=1.0)
        filler = compiled_pipe(cascade, "fill", "nic0", "dimm0-0", Gbps(250))
        admission.admit(filler, filler.candidates[0])
        starved = compiled_pipe(cascade, "late", "nic0", "dimm0-0", Gbps(50))
        with pytest.raises(ScheduleError):
            TopologyAwareScheduler().choose(starved, admission)

    def test_factory(self):
        assert make_scheduler("topology_aware").name == "topology_aware"
        assert make_scheduler("first_fit").name == "first_fit"
        assert make_scheduler("random").name == "random"
        with pytest.raises(ScheduleError):
            make_scheduler("magic")

    def test_topology_aware_min_max_objective(self, cascade):
        """With a fresh ledger it picks the candidate whose worst link is
        least utilized after placement."""
        ledger = ReservationLedger(cascade)
        admission = AdmissionController(ledger, headroom=1.0)
        compiled = compiled_pipe(cascade, "i", "nic0", "dimm0-0", Gbps(10))
        candidate = TopologyAwareScheduler().choose(compiled, admission)
        best_post = min(ledger.post_utilization(c)
                        for c in compiled.candidates)
        assert ledger.post_utilization(candidate) == pytest.approx(best_post)
