"""Intents and the performance-targets interpreter."""

import pytest

from repro.core import IntentKind, PerformanceTarget, hose, interpret, pipe
from repro.errors import InterpretationError
from repro.topology import cascade_lake_2s, dgx_like
from repro.units import Gbps, us


@pytest.fixture(scope="module")
def cascade():
    return cascade_lake_2s()


@pytest.fixture(scope="module")
def dgx():
    return dgx_like()


class TestIntentValidation:
    def test_pipe_constructor(self):
        intent = pipe("i", "t", "a", "b", Gbps(10))
        assert intent.kind is IntentKind.PIPE
        assert intent.dst == "b"

    def test_hose_constructor(self):
        intent = hose("i", "t", "nic0", Gbps(10))
        assert intent.kind is IntentKind.HOSE
        assert intent.dst is None

    def test_pipe_requires_dst(self):
        with pytest.raises(ValueError):
            PerformanceTarget("i", "t", IntentKind.PIPE, Gbps(1), "a")

    def test_hose_forbids_dst(self):
        with pytest.raises(ValueError):
            PerformanceTarget("i", "t", IntentKind.HOSE, Gbps(1), "a",
                              dst="b")

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            pipe("i", "t", "a", "b", 0.0)

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            pipe("i", "t", "a", "b", Gbps(1), latency_slo=0.0)


class TestPipeInterpretation:
    def test_single_path_candidate(self, cascade):
        compiled = interpret(cascade, pipe("i", "t", "nic0", "dimm0-0",
                                           Gbps(50)))
        assert len(compiled.candidates) >= 1
        candidate = compiled.candidates[0]
        assert len(candidate.paths) == 1
        assert candidate.paths[0].src == "nic0"
        # every demand is the full floor, one direction
        assert all(d.bandwidth == pytest.approx(Gbps(50))
                   for d in candidate.demands)
        assert len(candidate.demands) == candidate.paths[0].hop_count

    def test_multiple_candidates_on_dgx(self, dgx):
        compiled = interpret(dgx, pipe("i", "t", "gpu0", "dimm1-0",
                                       Gbps(10)), k=4)
        assert len(compiled.candidates) >= 2

    def test_floor_above_bottleneck_rejected(self, cascade):
        with pytest.raises(InterpretationError):
            interpret(cascade, pipe("i", "t", "nic0", "dimm0-0", Gbps(999)))

    def test_latency_slo_filters_candidates(self, dgx):
        strict = interpret(dgx, pipe("i", "t", "gpu0", "dimm0-0", Gbps(10),
                                     latency_slo=us(1)))
        loose = interpret(dgx, pipe("i2", "t", "gpu0", "dimm0-0", Gbps(10),
                                    latency_slo=us(100)))
        assert len(strict.candidates) <= len(loose.candidates)

    def test_impossible_slo_rejected(self, cascade):
        with pytest.raises(InterpretationError):
            interpret(cascade, pipe("i", "t", "nic0", "dimm1-0", Gbps(10),
                                    latency_slo=1e-9))

    def test_no_path_rejected(self, cascade):
        broken = cascade.copy()
        broken.link("pcie-nic0").up = False
        with pytest.raises(InterpretationError):
            interpret(broken, pipe("i", "t", "nic0", "dimm0-0", Gbps(10)))

    def test_demand_directions_consistent(self, cascade):
        compiled = interpret(cascade, pipe("i", "t", "nic0", "dimm0-0",
                                           Gbps(10)))
        candidate = compiled.candidates[0]
        path = candidate.paths[0]
        for i, demand in enumerate(candidate.demands):
            link = cascade.link(demand.link_id)
            expected = "fwd" if path.devices[i] == link.src else "rev"
            assert demand.direction == expected


class TestHoseInterpretation:
    def test_merged_candidates_cover_anchors(self, cascade):
        compiled = interpret(cascade, hose("h", "t", "nic0", Gbps(50)))
        assert len(compiled.candidates) >= 1
        for candidate in compiled.candidates:
            # anchors: local DIMM and external -> two paths per candidate
            assert len(candidate.paths) == 2
            dsts = {p.dst for p in candidate.paths}
            assert "external" in dsts

    def test_bidirectional_demands(self, cascade):
        compiled = interpret(cascade, hose("h", "t", "nic0", Gbps(50)))
        candidate = compiled.candidates[0]
        by_link = {}
        for demand in candidate.demands:
            by_link.setdefault(demand.link_id, set()).add(demand.direction)
        assert all(dirs == {"fwd", "rev"} for dirs in by_link.values())

    def test_shared_links_reserved_once(self, cascade):
        """Hose semantics: the same floor covers any peer mix."""
        compiled = interpret(cascade, hose("h", "t", "nic0", Gbps(50)))
        candidate = compiled.candidates[0]
        keys = [(d.link_id, d.direction) for d in candidate.demands]
        assert len(keys) == len(set(keys))
        assert all(d.bandwidth == pytest.approx(Gbps(50))
                   for d in candidate.demands)

    def test_hose_from_gpu_anchors_memory(self, cascade):
        compiled = interpret(cascade, hose("h", "t", "gpu0", Gbps(10)))
        dsts = {p.dst for p in compiled.candidates[0].paths}
        assert "dimm0-0" in dsts

    def test_hose_excessive_floor_rejected(self, cascade):
        with pytest.raises(InterpretationError):
            interpret(cascade, hose("h", "t", "nic0", Gbps(999)))
