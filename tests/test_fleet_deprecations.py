"""The PR-6 deprecation shims: each warns exactly once and delegates.

The scheduling-surface redesign kept the old entry points alive as thin
shims so downstream scripts keep running.  These tests pin the contract
those shims promised: every call emits exactly one ``DeprecationWarning``
(not zero, not a cascade from nested shims) and then behaves exactly like
the replacement it points at.
"""

import warnings

import pytest

from repro.core import pipe
from repro.fleet import Fleet, FleetTelemetry
from repro.units import Gbps


def fresh_fleet(**kwargs):
    kwargs.setdefault("hosts", 2)
    kwargs.setdefault("policy", "best-fit")
    return Fleet("cascade_lake_2s", **kwargs)


def sole_deprecation(caught):
    """Assert exactly one DeprecationWarning was caught; return it."""
    deps = [w for w in caught
            if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1, [str(w.message) for w in deps]
    return deps[0]


def test_fleet_run_until_warns_once_and_syncs_hosts():
    fleet = fresh_fleet()
    try:
        fleet.try_submit(pipe("i0", "t0", src="nic0", dst="dimm0-0",
                              bandwidth=Gbps(10)))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fleet.run_until(0.05)
        warning = sole_deprecation(caught)
        assert "advance_to" in str(warning.message)
        # The historical contract: every host clock is at fleet time.
        assert fleet.now == pytest.approx(0.05)
        for host_id in fleet.host_ids():
            assert fleet.host(host_id).engine.now == pytest.approx(0.05)
    finally:
        fleet.shutdown()


def test_fleet_run_until_matches_advance_plus_sync():
    """The shim's event count equals advance_to + sync_hosts done by hand."""
    def submit(fleet):
        fleet.try_submit(pipe("i0", "t0", src="nic0", dst="dimm0-0",
                              bandwidth=Gbps(10)))

    shim = fresh_fleet()
    manual = fresh_fleet()
    try:
        submit(shim)
        submit(manual)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = shim.run_until(0.05)
        via_manual = manual.clock.advance_to(0.05)
        via_manual += manual.clock.sync_hosts()
        assert via_shim == via_manual
    finally:
        shim.shutdown()
        manual.shutdown()


def test_planner_tick_warns_once_and_delegates_to_control():
    fleet = fresh_fleet(rebalance_threshold=0.3)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fleet.planner.tick()
        warning = sole_deprecation(caught)
        assert "control()" in str(warning.message)
    finally:
        fleet.shutdown()


def test_telemetry_refresh_warns_once_and_returns_current_headroom():
    fleet = fresh_fleet()
    try:
        fleet.try_submit(pipe("i0", "t0", src="nic0", dst="dimm0-0",
                              bandwidth=Gbps(25)))
        host_id = sorted(fleet.host_ids())[0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = fleet.telemetry.refresh(host_id)
        warning = sole_deprecation(caught)
        assert "headroom()" in str(warning.message)
        assert shimmed == fleet.telemetry.headroom(host_id)
    finally:
        fleet.shutdown()


def test_fleet_telemetry_max_age_kwarg_warns_once_and_is_ignored():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        telemetry = FleetTelemetry(max_age=0.5)
    warning = sole_deprecation(caught)
    assert "max_age" in str(warning.message)
    assert telemetry.max_age == 0.5  # kept for introspection, never read


def test_fleet_telemetry_default_construction_is_warning_free():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        FleetTelemetry()
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_fleet_telemetry_max_age_ctor_arg_warns_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fleet = fresh_fleet(telemetry_max_age=1.0)
        fleet.shutdown()
    warning = sole_deprecation(caught)
    assert "telemetry_max_age" in str(warning.message)


def test_modern_surface_is_warning_free():
    """advance_to/wake/control/headroom emit no deprecation noise."""
    fleet = fresh_fleet(rebalance_threshold=0.3)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fleet.try_submit(pipe("i0", "t0", src="nic0", dst="dimm0-0",
                                  bandwidth=Gbps(10)))
            fleet.advance_to(0.05)
            fleet.planner.control()
            for host_id in fleet.host_ids():
                fleet.telemetry.headroom(host_id)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    finally:
        fleet.shutdown()
