"""Analysis helpers: fairness, SLO compliance, capacity reports."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    capacity_report,
    evaluate_objective,
    evaluate_slo,
    format_capacity_report,
    goodput_retention,
    isolation_scorecard,
    jain_index,
    slowdown,
    stranded_bandwidth,
    violation_episodes,
    violation_time_fraction,
    weighted_jain_index,
)
from repro.core import HostNetworkManager, pipe
from repro.slo import SloObjective
from repro.topology import shortest_path
from repro.units import Gbps


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    @settings(max_examples=100)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1,
                    max_size=16))
    def test_bounds_property(self, allocations):
        index = jain_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9

    def test_weighted_proportional_is_one(self):
        allocations = {"a": 20.0, "b": 10.0}
        weights = {"a": 2.0, "b": 1.0}
        assert weighted_jain_index(allocations, weights) == \
            pytest.approx(1.0)

    def test_weighted_detects_unfairness(self):
        allocations = {"a": 10.0, "b": 10.0}
        weights = {"a": 2.0, "b": 1.0}
        assert weighted_jain_index(allocations, weights) < 1.0


class TestInterferenceMetrics:
    def test_slowdown(self):
        assert slowdown(2.0, 20.0) == pytest.approx(10.0)

    def test_retention_capped(self):
        assert goodput_retention(10.0, 12.0) == 1.0
        assert goodput_retention(10.0, 5.0) == pytest.approx(0.5)

    def test_scorecard(self):
        card = isolation_scorecard(
            alone_latency=2.0,
            shared_latency={"unmanaged": 20.0, "hostnet": 2.5},
            alone_throughput=100.0,
            shared_throughput={"unmanaged": 20.0, "hostnet": 99.0},
        )
        assert card["unmanaged"]["slowdown"] == pytest.approx(10.0)
        assert card["hostnet"]["retention"] == pytest.approx(0.99)


class TestSlo:
    def test_full_compliance(self):
        report = evaluate_objective([1.0, 2.0, 3.0],
                                    SloObjective("o", 5.0))
        assert report.attainment == 1.0
        assert report.met

    def test_partial_compliance(self):
        report = evaluate_objective([1.0] * 98 + [10.0, 10.0],
                                    SloObjective("o", 5.0))
        assert report.attainment == pytest.approx(0.98)
        assert not report.met  # p99 lands on the bad tail

    def test_scoped_percentile(self):
        report = evaluate_objective([1.0] * 9 + [10.0],
                                    SloObjective("o", 5.0, percentile=50))
        assert report.met  # p50 is fine even though the tail is not
        assert report.worst == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_objective([], SloObjective("o", 1.0))

    def test_evaluate_slo_shim_warns_once_and_matches(self):
        """The legacy entry point: exactly one DeprecationWarning, and
        field-for-field agreement with evaluate_objective."""
        samples = [1.0] * 98 + [10.0, 10.0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = evaluate_slo(samples, slo=5.0)
        deps = [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1, [str(w.message) for w in deps]
        assert "evaluate_objective" in str(deps[0].message)
        modern = evaluate_objective(samples, SloObjective("o", 5.0))
        assert legacy.samples == modern.samples
        assert legacy.compliance == modern.attainment
        assert legacy.p99 == modern.achieved
        assert legacy.worst == modern.worst
        assert legacy.met == modern.met

    def test_evaluate_slo_shim_rejects_bad_input(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                evaluate_slo([], slo=1.0)
            with pytest.raises(ValueError):
                evaluate_slo([1.0], slo=0.0)

    def test_violation_episodes(self):
        series = [(0.0, 100.0), (1.0, 50.0), (2.0, 50.0), (3.0, 100.0),
                  (4.0, 40.0)]
        episodes = violation_episodes(series, floor=100.0)
        assert episodes == [(1.0, 3.0), (4.0, 4.0)]

    def test_violation_fraction(self):
        series = [(0.0, 100.0), (1.0, 0.0), (2.0, 100.0), (4.0, 100.0)]
        assert violation_time_fraction(series, floor=100.0) == \
            pytest.approx(0.25)

    def test_unordered_series_rejected(self):
        with pytest.raises(ValueError):
            violation_episodes([(1.0, 1.0), (0.5, 1.0)], floor=2.0)

    def test_short_series_no_violation(self):
        assert violation_time_fraction([(0.0, 0.0)], floor=1.0) == 0.0


class TestCapacity:
    def test_report_and_stranded(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        rows = capacity_report(manager)
        by_id = {r.link_id: r for r in rows}
        assert by_id["pcie-nic0"].reserved == pytest.approx(Gbps(100))
        # nothing driven yet: the whole reservation is stranded
        stranded = stranded_bandwidth(manager)
        assert stranded["pcie-nic0"] == pytest.approx(Gbps(100))
        # drive it: stranding disappears
        path = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        cascade_net.start_transfer("kv", path, demand=Gbps(100))
        assert "pcie-nic0" not in stranded_bandwidth(manager)

    def test_format_report(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(10)))
        text = format_capacity_report(capacity_report(manager), limit=3)
        assert "pcie" in text
        assert "G" in text
