"""Latency-SLO ceilings and floor lending: the arbiter's newer features."""

import pytest

from repro.core import DynamicArbiter, HostNetworkManager, compute_caps, pipe
from repro.errors import ArbiterError
from repro.topology import shortest_path
from repro.units import Gbps, us
from repro.workloads import KvStoreApp, MaliciousFloodApp


class TestUtilizationCeiling:
    def test_compute_caps_respects_ceiling(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 30.0}, usages={"a": 30.0, "b": 90.0},
            best_effort={"b"}, work_conserving=True,
            utilization_ceiling=0.6,
        )
        # budget 60: floor 30 + spare 30 distributed; b bounded well below
        # the raw capacity
        assert caps["a"] >= 30.0
        assert caps["a"] + caps["b"] <= 60.0 + 2.0  # + ramp allowance

    def test_floors_beat_ceiling(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 80.0}, usages={"a": 80.0},
            best_effort=set(), work_conserving=True,
            utilization_ceiling=0.5,
        )
        assert caps["a"] >= 80.0

    def test_invalid_ceiling(self):
        with pytest.raises(ValueError):
            compute_caps(100.0, {}, {}, set(), True, utilization_ceiling=0.0)

    def test_arbiter_strictest_ceiling_wins(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net)
        arbiter.set_utilization_ceiling("i1", "pcie-nic0", 0.9)
        arbiter.set_utilization_ceiling("i2", "pcie-nic0", 0.7)
        assert arbiter.ceiling_on("pcie-nic0") == pytest.approx(0.7)
        arbiter.clear_utilization_ceiling("i2", "pcie-nic0")
        assert arbiter.ceiling_on("pcie-nic0") == pytest.approx(0.9)
        arbiter.clear_utilization_ceiling("i1", "pcie-nic0")
        assert arbiter.ceiling_on("pcie-nic0") == 1.0

    def test_arbiter_invalid_ceiling(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net)
        with pytest.raises(ArbiterError):
            arbiter.set_utilization_ceiling("i", "pcie-nic0", 1.5)


class TestSloCompilation:
    def test_slo_installs_ceilings(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        placement = manager.submit(
            pipe("p", "kv", src="nic0", dst="dimm0-0",
                 bandwidth=Gbps(50), latency_slo=us(12))
        )
        for link_id in placement.links():
            assert manager.arbiter.ceiling_on(link_id) < 1.0

    def test_no_slo_no_ceiling(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        placement = manager.submit(
            pipe("p", "kv", src="nic0", dst="dimm0-0", bandwidth=Gbps(50))
        )
        for link_id in placement.links():
            assert manager.arbiter.ceiling_on(link_id) == 1.0

    def test_release_clears_ceilings(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        placement = manager.submit(
            pipe("p", "kv", src="nic0", dst="dimm0-0",
                 bandwidth=Gbps(50), latency_slo=us(12))
        )
        manager.release("p")
        for link_id in placement.links():
            assert manager.arbiter.ceiling_on(link_id) == 1.0

    def test_tighter_slo_tighter_ceiling(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        loose = manager.submit(
            pipe("loose", "a", src="nic0", dst="dimm0-0",
                 bandwidth=Gbps(20), latency_slo=us(50))
        )
        loose_ceiling = manager.arbiter.ceiling_on(loose.links()[0])
        manager.release("loose")
        tight = manager.submit(
            pipe("tight", "a", src="nic0", dst="dimm0-0",
                 bandwidth=Gbps(20), latency_slo=us(3))
        )
        tight_ceiling = manager.arbiter.ceiling_on(tight.links()[0])
        assert tight_ceiling < loose_ceiling

    def test_slo_holds_under_attack(self, cascade_net):
        """End to end: the p99 a tenant sees stays near its admitted SLO."""
        net = cascade_net
        slo = us(12)
        manager = HostNetworkManager(net, decision_latency=0.0,
                                     arbiter_period=0.001)
        manager.register_tenant("evil")
        manager.submit(pipe("kv-slo", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(50), latency_slo=slo,
                            bidirectional=True))
        kv = KvStoreApp(net, "kv", nic="nic0", dimm="dimm0-0",
                        request_rate=20_000, seed=4)
        kv.start()
        MaliciousFloodApp(net, "evil", src="nic0", dst="dimm0-0",
                          flow_count=32).start()
        net.engine.run_until(0.02)
        kv.stats.latencies.clear()  # discard pre-enforcement transient
        net.engine.run_until(0.2)
        p99 = kv.stats.latency_summary().p99
        assert p99 <= slo * 1.2


class TestFloorLending:
    def test_parked_floor_is_lent(self):
        caps = compute_caps(
            capacity=100.0, floors={"sleeper": 40.0},
            usages={"sleeper": 0.0, "worker": 80.0},
            best_effort={"worker"}, work_conserving=True,
        )
        # sleeper is parked; its 40 joins the 60 spare -> worker can
        # approach the full link
        assert caps["worker"] > 80.0

    def test_active_floor_not_lent(self):
        caps = compute_caps(
            capacity=100.0, floors={"owner": 40.0},
            usages={"owner": 39.0, "worker": 80.0},
            best_effort={"worker"}, work_conserving=True,
        )
        # owner is using its floor: only the true spare is distributable
        assert caps["worker"] <= 60.0 + 2.0

    def test_barely_active_floor_not_lent(self):
        """Usage above the park threshold blocks lending (no deadlock)."""
        caps = compute_caps(
            capacity=100.0, floors={"owner": 40.0},
            usages={"owner": 5.0, "worker": 80.0},  # 12.5% of floor
            best_effort={"worker"}, work_conserving=True,
        )
        assert caps["owner"] >= 40.0
        assert caps["worker"] <= 60.0 + 2.0

    def test_reclaim_after_burst(self, cascade_net):
        """A returning guarantee-holder recovers within ~one round."""
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.001, decision_latency=0.0,
                                 work_conserving=True)
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        for link_id in path.links:
            arbiter.add_floor("owner", link_id, Gbps(100))
        arbiter.register_best_effort("borrower")
        arbiter.start()
        borrower = net.start_transfer("borrower", path)
        net.engine.run_until(0.02)
        # owner idle: borrower grew past the non-lending bound
        assert borrower.current_rate > Gbps(160)
        owner = net.start_transfer("owner", path, demand=Gbps(100))
        net.engine.run_until(0.025)  # a few arbiter rounds
        assert owner.current_rate >= Gbps(99)
