"""Focused tests for smaller behaviours: scheduling failures, CSV export,
flow metadata, hostshark lifecycle, and engine queries."""


from repro.diagnostics import HostShark
from repro.monitor import FailureInjector
from repro.sim import Engine, FlowState
from repro.telemetry import MetricStore, TelemetryCollector
from repro.topology import shortest_path
from repro.units import Gbps, us


class TestScheduledFailures:
    def test_inject_and_auto_repair(self, cascade_net):
        injector = FailureInjector(cascade_net)
        injector.schedule(
            lambda inj: inj.degrade_link("pcie-up0", capacity_factor=0.1),
            at=0.05, clear_after=0.05,
        )
        link = cascade_net.topology.link("pcie-up0")
        cascade_net.engine.run_until(0.04)
        assert link.healthy
        cascade_net.engine.run_until(0.06)
        assert not link.healthy
        cascade_net.engine.run_until(0.11)
        assert link.healthy

    def test_inject_without_repair(self, cascade_net):
        injector = FailureInjector(cascade_net)
        injector.schedule(lambda inj: inj.fail_link("eth0"), at=0.01)
        cascade_net.engine.run_until(0.02)
        assert not cascade_net.topology.link("eth0").up
        cascade_net.engine.run_until(0.5)
        assert not cascade_net.topology.link("eth0").up

    def test_scheduled_flap_cycle(self, cascade_net):
        """A scripted incident: flap for a while, then auto-repair."""
        injector = FailureInjector(cascade_net)
        injector.schedule(
            lambda inj: inj.flap_link("pcie-nvme0", period=0.01),
            at=0.02, clear_after=0.05,
        )
        cascade_net.engine.run_until(0.2)
        assert cascade_net.topology.link("pcie-nvme0").up
        assert not injector.failures(active_only=True)


class TestCsvExport:
    def test_roundtrippable_header_and_rows(self):
        store = MetricStore()
        store.record("a", 0.0, 1.0)
        store.record("a", 1.0, 2.0)
        store.record("b", 0.5, 9.0)
        csv = store.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "metric,time,value"
        assert lines[1] == "a,0.0,1.0"
        assert len(lines) == 4

    def test_metric_subset(self):
        store = MetricStore()
        store.record("a", 0.0, 1.0)
        store.record("b", 0.0, 1.0)
        csv = store.to_csv(metrics=["b"])
        assert "a," not in csv

    def test_collector_output_is_exportable(self, minimal_net):
        collector = TelemetryCollector(minimal_net, period=0.01)
        collector.start()
        minimal_net.engine.run_until(0.05)
        csv = collector.store.to_csv()
        assert "link_util.pcie-nic0" in csv


class TestFlowMetadata:
    def test_tags_preserved_through_lifecycle(self, minimal_net):
        path = shortest_path(minimal_net.topology, "nic0", "dimm0-0")
        flow = minimal_net.start_transfer("t", path, size=1e6,
                                          tags={"app": "x", "op": "read"})
        minimal_net.engine.run()
        assert flow.state is FlowState.COMPLETED
        assert flow.tags == {"app": "x", "op": "read"}

    def test_str_forms(self, minimal_net):
        path = shortest_path(minimal_net.topology, "nic0", "dimm0-0")
        flow = minimal_net.start_transfer("t", path)
        assert "nic0" in str(flow)
        assert "active" in str(flow)

    def test_new_flow_id_prefix(self, minimal_net):
        assert minimal_net.new_flow_id("probe").startswith("probe-")

    def test_recompute_count_increases(self, minimal_net):
        before = minimal_net.recompute_count
        path = shortest_path(minimal_net.topology, "nic0", "dimm0-0")
        minimal_net.start_transfer("t", path, demand=Gbps(1))
        assert minimal_net.recompute_count > before


class TestHostSharkLifecycle:
    def test_stop_capture_keeps_existing(self, minimal_net):
        shark = HostShark(minimal_net)
        shark.start_capture()
        path = shortest_path(minimal_net.topology, "nic0", "dimm0-0")
        minimal_net.start_transfer("t", path, size=1e3)
        minimal_net.engine.run()
        shark.stop_capture()
        count = len(shark)
        minimal_net.start_transfer("t", path, size=1e3)
        minimal_net.engine.run()
        assert len(shark) == count

    def test_clear(self, minimal_net):
        shark = HostShark(minimal_net)
        shark.start_capture()
        path = shortest_path(minimal_net.topology, "nic0", "dimm0-0")
        minimal_net.start_transfer("t", path, size=1e3)
        minimal_net.engine.run()
        shark.clear()
        assert len(shark) == 0


class TestEngineQueries:
    def test_peek_time(self):
        engine = Engine()
        assert engine.peek_time() is None
        engine.schedule_at(3.0, lambda: None)
        assert engine.peek_time() == 3.0

    def test_peek_skips_cancelled(self):
        engine = Engine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        event.cancel()
        assert engine.peek_time() == 2.0

    def test_pending_events(self):
        engine = Engine()
        events = [engine.schedule_at(float(i), lambda: None)
                  for i in range(3)]
        events[0].cancel()
        assert engine.pending_events() == 2
