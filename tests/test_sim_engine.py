"""Clock and discrete-event engine: ordering, determinism, periodics."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.sim import Engine, SimClock
from repro.sim.rng import make_rng


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to(self):
        c = SimClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_no_backwards(self):
        c = SimClock(10.0)
        with pytest.raises(ClockError):
            c.advance_to(9.0)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance_by(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule_at(2.0, lambda: fired.append("b"))
        eng.schedule_at(1.0, lambda: fired.append("a"))
        eng.schedule_at(3.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        eng = Engine()
        fired = []
        for i in range(5):
            eng.schedule_at(1.0, lambda i=i: fired.append(i))
        eng.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.clock.advance_to(5.0)
        with pytest.raises(ClockError):
            eng.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            Engine().schedule_in(-0.1, lambda: None)

    def test_cancelled_event_skipped(self):
        eng = Engine()
        fired = []
        event = eng.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        eng.run()
        assert fired == []

    def test_events_scheduled_during_run(self):
        eng = Engine()
        fired = []

        def chain():
            fired.append(eng.now)
            if eng.now < 3.0:
                eng.schedule_in(1.0, chain)

        eng.schedule_at(1.0, chain)
        eng.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunUntil:
    def test_clock_advances_to_target(self):
        eng = Engine()
        eng.run_until(7.5)
        assert eng.now == 7.5

    def test_future_events_not_fired(self):
        eng = Engine()
        fired = []
        eng.schedule_at(10.0, lambda: fired.append("late"))
        eng.run_until(5.0)
        assert fired == []
        assert eng.pending_events() == 1

    def test_boundary_event_fires(self):
        eng = Engine()
        fired = []
        eng.schedule_at(5.0, lambda: fired.append("edge"))
        eng.run_until(5.0)
        assert fired == ["edge"]

    def test_backwards_rejected(self):
        eng = Engine()
        eng.run_until(5.0)
        with pytest.raises(ClockError):
            eng.run_until(4.0)

    def test_max_events_guard(self):
        eng = Engine()

        def storm():
            eng.schedule_in(0.0, storm)

        eng.schedule_at(0.0, storm)
        with pytest.raises(SimulationError):
            eng.run_until(1.0, max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 4


class TestPeriodic:
    def test_fires_every_period(self):
        eng = Engine()
        times = []
        eng.schedule_every(1.0, lambda: times.append(eng.now))
        eng.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_first_delay_override(self):
        eng = Engine()
        times = []
        eng.schedule_every(1.0, lambda: times.append(eng.now),
                           first_delay=0.25)
        eng.run_until(2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops(self):
        eng = Engine()
        times = []
        task = eng.schedule_every(1.0, lambda: times.append(eng.now))
        eng.run_until(2.0)
        task.cancel()
        eng.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_reschedule_changes_period(self):
        """The new period applies after the already-armed firing."""
        eng = Engine()
        times = []
        task = eng.schedule_every(1.0, lambda: times.append(eng.now))
        eng.run_until(1.0)
        task.reschedule(0.5)
        eng.run_until(3.0)
        assert times == [1.0, 2.0, 2.5, 3.0]

    def test_jitter_requires_rng(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_every(1.0, lambda: None, jitter=0.1)

    def test_jitter_varies_periods(self):
        eng = Engine()
        times = []
        eng.schedule_every(1.0, lambda: times.append(eng.now),
                           jitter=0.5, rng=make_rng(42))
        eng.run_until(10.0)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_every(0.0, lambda: None)


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "x")
        b = make_rng(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_decorrelated(self):
        a = make_rng(7, "x")
        b = make_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestPendingEventsAccounting:
    """pending_events() is an O(1) live counter, not a queue scan."""

    def test_counts_live_events_only(self):
        eng = Engine()
        events = [eng.schedule_in(i + 1.0, lambda: None) for i in range(10)]
        assert eng.pending_events() == 10
        for event in events[:4]:
            event.cancel()
        assert eng.pending_events() == 6

    def test_double_cancel_counts_once(self):
        eng = Engine()
        event = eng.schedule_in(1.0, lambda: None)
        eng.schedule_in(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert eng.pending_events() == 1

    def test_pop_keeps_counter_exact(self):
        eng = Engine()
        eng.schedule_in(1.0, lambda: None)
        doomed = eng.schedule_in(2.0, lambda: None)
        eng.schedule_in(3.0, lambda: None)
        doomed.cancel()
        eng.run_until(1.5)
        assert eng.pending_events() == 1
        eng.run()
        assert eng.pending_events() == 0

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        """Cancelling an event whose callback already ran is a no-op for
        the live counter (the event has left the queue)."""
        eng = Engine()
        fired = eng.schedule_in(1.0, lambda: None)
        eng.schedule_in(2.0, lambda: None)
        eng.run_until(1.0)
        fired.cancel()
        assert eng.pending_events() == 1

    def test_self_cancel_during_fire(self):
        """A callback cancelling its own (already popped) event does not
        decrement the counter for an entry no longer queued."""
        eng = Engine()
        holder = {}

        def tick():
            holder["event"].cancel()

        holder["event"] = eng.schedule_in(1.0, tick)
        eng.schedule_in(2.0, lambda: None)
        eng.run_until(1.0)
        assert eng.pending_events() == 1

    def test_peek_time_discards_and_counts(self):
        eng = Engine()
        first = eng.schedule_in(1.0, lambda: None)
        eng.schedule_in(2.0, lambda: None)
        first.cancel()
        assert eng.peek_time() == 2.0
        assert eng.pending_events() == 1


class TestHeapCompaction:
    """Tombstone-heavy queues are rebuilt without the cancelled entries."""

    def test_compaction_triggers_above_half_cancelled(self):
        eng = Engine()
        doomed = [eng.schedule_in(i + 1.0, lambda: None) for i in range(100)]
        keepers = [eng.schedule_in(i + 200.0, lambda: None) for i in range(20)]
        for event in doomed:
            event.cancel()
        assert eng._compactions >= 1
        # The rebuild dropped the tombstones present at the time it fired;
        # later cancels may leave a small (sub-_COMPACT_MIN) residue.
        assert len(eng._queue) < len(doomed) + len(keepers) - 50
        assert eng.pending_events() == 20
        eng.run()
        assert eng.events_processed == 20

    def test_small_queues_never_compact(self):
        eng = Engine()
        doomed = [eng.schedule_in(i + 1.0, lambda: None) for i in range(10)]
        for event in doomed:
            event.cancel()
        assert eng._compactions == 0
        assert eng.pending_events() == 0
        assert not eng.step()

    def test_ordering_survives_compaction(self):
        eng = Engine()
        fired = []
        doomed = [eng.schedule_in(i + 1.0, lambda: None) for i in range(80)]
        for i in range(10):
            eng.schedule_at(100.0, lambda i=i: fired.append(i))
        for event in doomed:
            event.cancel()
        assert eng._compactions >= 1
        eng.run()
        assert fired == list(range(10))  # same-instant order preserved

    def test_periodic_task_churn_stays_bounded(self):
        """Reschedule-style churn (cancel + schedule per tick) cannot grow
        the queue without bound."""
        eng = Engine()
        for i in range(500):
            event = eng.schedule_in(1.0 + i * 1e-6, lambda: None)
            event.cancel()
        assert len(eng._queue) <= Engine._COMPACT_MIN
        assert eng.pending_events() == 0
