"""HostNetworkManager pipeline, virtual views, and migration."""

import pytest

from repro.core import HostNetworkManager, hose, migrate_tenant, pipe
from repro.errors import AdmissionError, HostNetError, UnknownTenantError
from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s, dgx_like, shortest_path
from repro.units import Gbps, to_Gbps
from repro.workloads import MaliciousFloodApp


@pytest.fixture
def manager(cascade_net):
    return HostNetworkManager(cascade_net, decision_latency=0.0)


class TestPipeline:
    def test_submit_places_and_enforces(self, cascade_net, manager):
        placement = manager.submit(
            pipe("p", "kv", src="nic0", dst="dimm0-0", bandwidth=Gbps(100))
        )
        assert "pcie-nic0" in placement.links()
        assert manager.arbiter.floors_on("pcie-nic0")["kv"] == \
            pytest.approx(Gbps(100))

    def test_duplicate_intent_rejected(self, manager):
        intent = pipe("p", "kv", src="nic0", dst="dimm0-0",
                      bandwidth=Gbps(10))
        manager.submit(intent)
        with pytest.raises(AdmissionError):
            manager.submit(intent)

    def test_capacity_exhaustion_rejected(self, manager):
        manager.submit(pipe("p1", "a", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(200)))
        with pytest.raises(HostNetError):
            manager.submit(pipe("p2", "b", src="nic0", dst="dimm0-0",
                                bandwidth=Gbps(100)))

    def test_try_submit_returns_none(self, manager):
        assert manager.try_submit(
            pipe("p", "a", src="nic0", dst="dimm0-0", bandwidth=Gbps(999))
        ) is None

    def test_release_frees_capacity(self, manager):
        manager.submit(pipe("p1", "a", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(200)))
        manager.release("p1")
        assert manager.submit(pipe("p2", "b", src="nic0", dst="dimm0-0",
                                   bandwidth=Gbps(200)))

    def test_release_unknown_rejected(self, manager):
        with pytest.raises(AdmissionError):
            manager.release("ghost")

    def test_hose_submission(self, manager):
        placement = manager.submit(hose("h", "kv", endpoint="nic0",
                                        bandwidth=Gbps(50)))
        assert len(placement.links()) >= 2

    def test_unregister_tenant_cleans_up(self, cascade_net, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        manager.unregister_tenant("kv")
        assert manager.arbiter.managed_links() == []
        assert "kv" not in manager.tenants
        with pytest.raises(UnknownTenantError):
            manager.intents_of("kv")

    def test_describe(self, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(10)))
        text = manager.describe()
        assert "1 intents" in text and "kv" in text


class TestEndToEndIsolation:
    def test_guarantee_protects_victim_goodput(self, cascade_net, manager):
        net = cascade_net
        manager.register_tenant("evil")
        manager.submit(pipe("p", "victim", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        victim = net.start_transfer("victim", path, demand=Gbps(100))
        MaliciousFloodApp(net, "evil", src="nic0", dst="dimm0-0",
                          flow_count=16).start()
        net.engine.run_until(0.05)
        assert to_Gbps(victim.current_rate) >= 99.0

    def test_unmanaged_victim_starves(self, cascade_net):
        net = cascade_net
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        victim = net.start_transfer("victim", path, demand=Gbps(100))
        MaliciousFloodApp(net, "evil", src="nic0", dst="dimm0-0",
                          flow_count=16).start()
        net.engine.run_until(0.05)
        assert to_Gbps(victim.current_rate) < 30.0


class TestVirtualViews:
    def test_view_shows_allocation_as_capacity(self, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        view = manager.tenant_view("kv")
        assert view.allocated_capacity("pcie-nic0") == \
            pytest.approx(Gbps(100))
        assert view.allocated_capacity("eth0") == 0.0

    def test_view_topology_only_reserved_links(self, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        view = manager.tenant_view("kv")
        assert len(view.topology.links()) == 4

    def test_view_sums_intents_per_direction(self, manager):
        manager.submit(pipe("p1", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(50)))
        manager.submit(pipe("p2", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(30)))
        view = manager.tenant_view("kv")
        assert view.allocated_capacity("pcie-nic0") == \
            pytest.approx(Gbps(80))

    def test_unknown_tenant_view_rejected(self, manager):
        with pytest.raises(UnknownTenantError):
            manager.tenant_view("ghost")

    def test_guaranteed_bandwidth_map(self, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(10)))
        view = manager.tenant_view("kv")
        assert view.guaranteed_bandwidth() == {"p": pytest.approx(Gbps(10))}


class TestMigration:
    def _second_host(self, preset):
        engine = Engine()
        network = FabricNetwork(preset(), engine)
        return HostNetworkManager(network, decision_latency=0.0)

    def test_migrate_preserves_guarantees(self, manager):
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        destination = self._second_host(cascade_lake_2s)
        result = migrate_tenant(manager, destination, "kv")
        assert result.complete
        # tenant-visible guarantee unchanged, zero reconfiguration
        assert result.destination_view.guaranteed_bandwidth() == \
            result.source_view.guaranteed_bandwidth()
        # source fully released
        assert manager.intents_of("kv") == []
        assert destination.intents_of("kv")

    def test_migrate_to_different_shape(self, manager):
        """cascade -> DGX: device ids remapped by type/index."""
        manager.submit(pipe("p", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(50)))
        destination = self._second_host(dgx_like)
        result = migrate_tenant(manager, destination, "kv")
        assert result.complete
        moved = destination.intents_of("kv")[0]
        assert moved.bandwidth == pytest.approx(Gbps(50))

    def test_migrate_rolls_back_on_failure(self, manager):
        manager.submit(pipe("p1", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        destination = self._second_host(cascade_lake_2s)
        # fill the destination so the migration cannot fit
        destination.submit(pipe("blocker", "other", src="nic0",
                                dst="dimm0-0", bandwidth=Gbps(200)))
        result = migrate_tenant(manager, destination, "kv")
        assert not result.complete
        assert result.failed
        # source untouched, destination has nothing of kv's
        assert manager.intents_of("kv")
        assert destination.intents_of("kv") == []
