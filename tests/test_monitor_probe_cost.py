"""Heartbeat probes that consume real fabric bandwidth (§3.1 Q2)."""


from repro.monitor import HeartbeatMesh
from repro.sim import SYSTEM_TENANT


class TestProbeFabricCost:
    def test_default_probes_are_free(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0", "gpu0"],
                             period=0.001)
        mesh.start()
        cascade_net.engine.run_until(0.1)
        assert mesh.probe_bytes_sent == 0.0
        assert cascade_net.tenant_link_bytes(SYSTEM_TENANT,
                                             "pcie-nic0") == 0.0

    def test_consuming_probes_cost_the_fabric(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0", "gpu0"],
                             period=0.001, consume_fabric=True)
        mesh.start()
        cascade_net.engine.run_until(0.1)
        assert mesh.probe_bytes_sent > 0
        assert cascade_net.tenant_link_bytes(SYSTEM_TENANT,
                                             "pcie-nic0") > 0

    def test_probe_cost_scales_with_rate_and_size(self, cascade_net):
        slow = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0"],
                             period=0.01, consume_fabric=True)
        slow.start()
        cascade_net.engine.run_until(0.2)
        slow.stop()
        slow_bytes = slow.probe_bytes_sent
        fast = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0"],
                             period=0.001, probe_bytes=1024.0,
                             consume_fabric=True)
        fast.start()
        cascade_net.engine.run_until(0.4)
        assert fast.probe_bytes_sent > 50 * slow_bytes

    def test_down_path_probe_costs_nothing(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0"],
                             consume_fabric=True)
        cascade_net.set_link_up("pcie-nic0", False)
        result = mesh.probe_pair("nic0", "dimm0-0")
        assert result.missed
        assert mesh.probe_bytes_sent == 0.0
