"""The ML failure classifier: features, fitting, and modality masks."""

import numpy as np
import pytest

from repro.errors import MonitorError
from repro.monitor import (
    FEATURE_NAMES,
    MODALITY_MASKS,
    FailureClassifier,
    FailureInjector,
    HostMonitor,
    extract_features,
)
from repro.telemetry import CounterSource
from repro.units import us
from repro.workloads import KvStoreApp

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0"]


def observe(cascade_net, inject=None, seed=0):
    """Run a monitored window, optionally injecting, and extract features."""
    monitor = HostMonitor(cascade_net, probers=PROBERS,
                          telemetry_period=0.005, heartbeat_period=0.005,
                          source=CounterSource.SOFTWARE, seed=seed)
    monitor.start()
    KvStoreApp(cascade_net, "kv", nic="nic0", dimm="dimm0-0",
               request_rate=10_000, seed=seed).start()
    cascade_net.engine.run_until(0.1)
    monitor.record_baseline()
    if inject is not None:
        inject(FailureInjector(cascade_net))
    cascade_net.engine.run_until(0.3)
    return extract_features(monitor.store, monitor.heartbeats,
                            window=0.1, now=cascade_net.engine.now)


class TestFeatureExtraction:
    def test_vector_shape_and_names(self, cascade_net):
        features = observe(cascade_net)
        assert features.shape == (len(FEATURE_NAMES),)
        assert len(FEATURE_NAMES) == 10

    def test_healthy_features_quiet(self, cascade_net):
        features = observe(cascade_net)
        named = dict(zip(FEATURE_NAMES, features))
        assert named["missed_fraction"] == 0.0
        assert named["rtt_inflation_mean"] == pytest.approx(1.0, abs=0.1)

    def test_link_down_shows_missed_probes(self, cascade_net):
        features = observe(cascade_net,
                           inject=lambda i: i.fail_link("pcie-gpu0"))
        named = dict(zip(FEATURE_NAMES, features))
        assert named["missed_fraction"] > 0.0

    def test_degrade_shows_inflation(self, cascade_net):
        features = observe(
            cascade_net,
            inject=lambda i: i.degrade_link("pcie-up0", 0.1, us(4)),
        )
        named = dict(zip(FEATURE_NAMES, features))
        assert named["rtt_inflation_max"] > 3.0

    def test_modality_masks_cover_all_features(self):
        combined = MODALITY_MASKS["combined"]
        counters = MODALITY_MASKS["counters"]
        heartbeats = MODALITY_MASKS["heartbeats"]
        assert all(combined)
        assert [a or b for a, b in zip(counters, heartbeats)] == \
            list(combined)
        assert not any(a and b for a, b in zip(counters, heartbeats))


class TestClassifier:
    def _toy_examples(self):
        rng = np.random.default_rng(0)
        examples = []
        for _ in range(10):
            healthy = np.zeros(len(FEATURE_NAMES))
            healthy += rng.normal(0, 0.01, size=len(FEATURE_NAMES))
            examples.append(("healthy", healthy))
            broken = np.ones(len(FEATURE_NAMES))
            broken += rng.normal(0, 0.01, size=len(FEATURE_NAMES))
            examples.append(("broken", broken))
        return examples

    def test_fit_predict_separable(self):
        clf = FailureClassifier()
        clf.fit(self._toy_examples())
        assert clf.predict(np.zeros(len(FEATURE_NAMES))) == "healthy"
        assert clf.predict(np.ones(len(FEATURE_NAMES))) == "broken"
        assert clf.labels == ["broken", "healthy"]

    def test_accuracy_and_confusion(self):
        clf = FailureClassifier()
        examples = self._toy_examples()
        clf.fit(examples)
        assert clf.accuracy(examples) == 1.0
        confusion = clf.confusion(examples)
        assert confusion[("healthy", "healthy")] == 10

    def test_unfitted_predict_rejected(self):
        with pytest.raises(MonitorError):
            FailureClassifier().predict(np.zeros(len(FEATURE_NAMES)))

    def test_bad_modality_rejected(self):
        with pytest.raises(MonitorError):
            FailureClassifier(modality="psychic")

    def test_bad_feature_shape_rejected(self):
        with pytest.raises(MonitorError):
            FailureClassifier().fit([("x", np.zeros(3))])

    def test_empty_fit_rejected(self):
        with pytest.raises(MonitorError):
            FailureClassifier().fit([])

    def test_modality_restriction_changes_decisions(self):
        """A difference visible only in heartbeat features is invisible to
        the counters-only classifier."""
        base = np.zeros(len(FEATURE_NAMES))
        hb_only = base.copy()
        hb_only[5:] = 5.0  # heartbeat block
        examples = [("healthy", base + 0.01), ("healthy", base - 0.01),
                    ("hb_issue", hb_only + 0.01), ("hb_issue", hb_only - 0.01)]
        counters_clf = FailureClassifier(modality="counters")
        counters_clf.fit(examples)
        hb_clf = FailureClassifier(modality="heartbeats")
        hb_clf.fit(examples)
        probe = hb_only.copy()
        assert hb_clf.predict(probe) == "hb_issue"
        scores = counters_clf.decision_scores(probe)
        # counters cannot separate: both classes equidistant
        assert scores["healthy"] == pytest.approx(scores["hb_issue"],
                                                  abs=1e-6)

    def test_end_to_end_separation(self, cascade_net):
        """Real simulated incidents are separable with combined features."""
        from repro.sim import Engine, FabricNetwork
        from repro.topology import cascade_lake_2s

        examples = []
        for seed in range(2):
            for label, inject in (
                ("healthy", None),
                ("down", lambda i: i.fail_link("pcie-gpu0")),
            ):
                net = FabricNetwork(cascade_lake_2s(), Engine())
                examples.append((label, observe(net, inject, seed=seed)))
        clf = FailureClassifier()
        clf.fit(examples)
        assert clf.accuracy(examples) == 1.0
