"""Fleet determinism and migration conservation.

Two halves of the same trust story: the same seed must reproduce the same
fleet (placements and all), and no sequence of cross-host migrations may
create, destroy, or resize a tenant's allocation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MigrationError
from repro.fleet import Fleet, FleetChurnConfig, generate_events, run_churn
from repro.core import pipe
from repro.units import Gbps

CONFIG = FleetChurnConfig(seed=11, horizon=0.08, arrival_rate=1500.0)


def fresh_fleet(**kwargs):
    kwargs.setdefault("hosts", 4)
    kwargs.setdefault("policy", "best-fit")
    kwargs.setdefault("max_attempts", 3)
    return Fleet("cascade_lake_2s", **kwargs)


def churn_signature(config):
    fleet = fresh_fleet()
    report = run_churn(fleet, config)
    fleet.shutdown()
    return (report.placements, report.admitted, report.rejected,
            report.released)


# -- seeded determinism ------------------------------------------------------


def test_same_seed_same_fleet_placements():
    assert churn_signature(CONFIG) == churn_signature(CONFIG)


def test_event_generation_is_pure():
    fleet = fresh_fleet()
    a = generate_events(CONFIG, fleet)
    b = generate_events(CONFIG, fleet)
    fleet.shutdown()
    assert [(t, s, k) for t, s, k, _ in a] == [(t, s, k) for t, s, k, _ in b]
    assert len(a) > 0


def test_different_seeds_diverge():
    other = FleetChurnConfig(seed=12, horizon=0.08, arrival_rate=1500.0)
    assert churn_signature(CONFIG) != churn_signature(other)


def test_rebalancing_fleet_is_still_deterministic():
    def signature():
        fleet = fresh_fleet(policy="first-fit", max_attempts=1,
                            rebalance_threshold=0.3)
        report = run_churn(fleet, CONFIG)
        moves = [(r.time, r.kind, r.intent_id, r.src, r.dst, r.ok)
                 for r in fleet.planner.records]
        fleet.shutdown()
        return report.placements, moves

    first, second = signature(), signature()
    assert first == second
    assert first[1], "expected at least one rebalance move"


# -- drain mode --------------------------------------------------------------


def test_drain_releases_every_live_session_at_horizon():
    fleet = fresh_fleet()
    report = run_churn(fleet, FleetChurnConfig(
        seed=11, horizon=0.08, arrival_rate=1500.0, drain=True))
    assert report.released == report.admitted
    assert not report.placements
    assert not fleet.placements()
    fleet.shutdown()


def test_drain_does_not_perturb_admission_decisions():
    """Drained and undrained same-seed runs admit and reject identically:
    the extra departures all land at the horizon, after every admission
    decision has been made."""
    undrained = run_churn(fresh_fleet(), CONFIG)
    drained_config = FleetChurnConfig(
        seed=CONFIG.seed, horizon=CONFIG.horizon,
        arrival_rate=CONFIG.arrival_rate, drain=True)
    drained = run_churn(fresh_fleet(), drained_config)
    assert drained.submitted == undrained.submitted
    assert drained.admitted == undrained.admitted
    assert drained.rejected == undrained.rejected
    # Undrained keeps sessions past the horizon; drain releases them.
    assert undrained.released < undrained.admitted
    assert drained.released == drained.admitted


def test_drain_event_stream_is_superset_clamped_to_horizon():
    fleet = fresh_fleet()
    base = generate_events(CONFIG, fleet)
    drained = generate_events(
        FleetChurnConfig(seed=CONFIG.seed, horizon=CONFIG.horizon,
                         arrival_rate=CONFIG.arrival_rate, drain=True),
        fleet)
    fleet.shutdown()
    assert len(drained) > len(base)
    extra = drained[len(base):]
    # Shared prefix is event-for-event identical...
    assert [(t, k) for t, _s, k, _p in drained[:len(base)]] \
        == [(t, k) for t, _s, k, _p in base]
    # ...and every extra event is a depart pinned at the horizon.
    assert all(k == "depart" and t == CONFIG.horizon
               for t, _s, k, _p in extra)


# -- migration conserves intents and allocated bandwidth ---------------------


def reserved_by_intent(fleet):
    """intent_id -> total reserved bytes/s across the whole fleet."""
    totals = {}
    for fp in fleet.placements():
        ledger = fleet.host(fp.host_id).manager.ledger
        totals[fp.intent_id] = sum(
            demand.bandwidth for demand in ledger.demands_of(fp.intent_id)
        )
    return totals


SOURCES = ["nic0", "nic1", "gpu0", "gpu1"]
SINKS = ["dimm0-0", "dimm0-1", "dimm1-0", "dimm1-1"]


@st.composite
def fleet_and_moves(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    intents = [
        pipe(
            f"i{i}",
            f"t{draw(st.integers(min_value=0, max_value=2))}",
            src=draw(st.sampled_from(SOURCES)),
            dst=draw(st.sampled_from(SINKS)),
            bandwidth=Gbps(draw(st.sampled_from([10, 40, 80, 150]))),
            bidirectional=draw(st.booleans()),
        )
        for i in range(n)
    ]
    moves = [
        (f"i{draw(st.integers(min_value=0, max_value=n - 1))}",
         f"host{draw(st.integers(min_value=0, max_value=2)):02d}")
        for _ in range(draw(st.integers(min_value=1, max_value=6)))
    ]
    return intents, moves


@settings(max_examples=25, deadline=None)
@given(case=fleet_and_moves())
def test_migrations_conserve_intents_and_bandwidth(case):
    intents, moves = case
    fleet = Fleet("cascade_lake_2s", hosts=3, policy="best-fit")
    admitted = {i.intent_id for i in intents
                if fleet.try_submit(i) is not None}
    before = reserved_by_intent(fleet)
    assert set(before) == admitted

    for intent_id, dst_host in moves:
        if intent_id not in admitted:
            continue
        try:
            fleet.migrate(intent_id, dst_host)
        except MigrationError:
            pass  # rejected or no-op moves must also conserve state

    after = reserved_by_intent(fleet)
    assert set(after) == admitted  # no intent created or destroyed
    for intent_id in admitted:
        assert after[intent_id] == pytest.approx(before[intent_id])
