"""Failure injection and topology-aware root-cause localization."""

import pytest

from repro.errors import MonitorError
from repro.monitor import (
    FailureInjector,
    FailureKind,
    HeartbeatMesh,
    localization_correct,
    localize,
    top_suspect,
)
from repro.sim.rng import make_rng
from repro.units import us

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0", "nic1", "gpu1", "dimm1-0"]


def probe_split(mesh, factor=3.0):
    """Probe all pairs and split into (healthy, anomalous)."""
    mesh.probe_all()
    bad = mesh.anomalous_probes(inflation_factor=factor)
    flagged = {(p.src, p.dst) for p in bad}
    good = [p for p in mesh.latest_round() if (p.src, p.dst) not in flagged]
    return good, bad


class TestFailureInjector:
    def test_degrade_link_records_truth(self, cascade_net):
        injector = FailureInjector(cascade_net)
        failure = injector.degrade_link("pcie-up0", capacity_factor=0.2)
        assert failure.kind is FailureKind.LINK_DEGRADE
        assert failure.active
        link = cascade_net.topology.link("pcie-up0")
        assert link.effective_capacity == pytest.approx(link.capacity * 0.2)
        assert link.extra_latency > 0

    def test_clear_restores(self, cascade_net):
        injector = FailureInjector(cascade_net)
        failure = injector.degrade_link("pcie-up0")
        injector.clear(failure)
        assert not failure.active
        assert cascade_net.topology.link("pcie-up0").healthy

    def test_fail_link_down(self, cascade_net):
        injector = FailureInjector(cascade_net)
        injector.fail_link("pcie-nic0")
        assert not cascade_net.topology.link("pcie-nic0").up

    def test_switch_degrade_hits_all_links(self, cascade_net):
        injector = FailureInjector(cascade_net)
        failure = injector.degrade_switch("pcisw0", capacity_factor=0.25)
        assert set(failure.affected_links) == {
            "pcie-up0", "pcie-nic0", "pcie-nvme0"
        }
        for link_id in failure.affected_links:
            assert not cascade_net.topology.link(link_id).healthy

    def test_flap_toggles(self, cascade_net):
        injector = FailureInjector(cascade_net)
        failure = injector.flap_link("pcie-nic0", period=0.01)
        cascade_net.engine.run_until(0.015)
        assert not cascade_net.topology.link("pcie-nic0").up
        cascade_net.engine.run_until(0.025)
        assert cascade_net.topology.link("pcie-nic0").up
        injector.clear(failure)
        cascade_net.engine.run_until(0.1)
        assert cascade_net.topology.link("pcie-nic0").up

    def test_clear_all(self, cascade_net):
        injector = FailureInjector(cascade_net)
        injector.degrade_link("pcie-up0")
        injector.fail_link("eth0")
        injector.clear_all()
        assert not injector.failures(active_only=True)
        assert cascade_net.topology.link("pcie-up0").healthy
        assert cascade_net.topology.link("eth0").up

    def test_invalid_factor(self, cascade_net):
        with pytest.raises(MonitorError):
            FailureInjector(cascade_net).degrade_link("pcie-up0",
                                                      capacity_factor=0.0)

    def test_degrade_unknown_switch(self, cascade_net):
        from repro.errors import UnknownDeviceError

        with pytest.raises(UnknownDeviceError):
            FailureInjector(cascade_net).degrade_switch("ghost")


class TestLocalization:
    def test_degraded_link_is_top_suspect(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, rng=make_rng(1))
        mesh.record_baseline()
        FailureInjector(cascade_net).degrade_link("upi-socket0-socket1-0",
                                                  capacity_factor=0.05,
                                                  extra_latency=us(5))
        good, bad = probe_split(mesh)
        assert bad
        suspects = localize(cascade_net.topology, good, bad)
        top = top_suspect(suspects, kind="link")
        # both parallel UPI links are confounded (same probes cross the
        # degraded one's pairs) — accept either as "correct" topologically,
        # but the injected one must be in the top-2.
        assert localization_correct(suspects, "upi-socket0-socket1-0",
                                    top_k=2)

    def test_switch_failure_blames_device(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, rng=make_rng(2))
        mesh.record_baseline()
        FailureInjector(cascade_net).degrade_switch("pcisw0",
                                                    capacity_factor=0.1,
                                                    extra_latency=us(5))
        good, bad = probe_split(mesh)
        suspects = localize(cascade_net.topology, good, bad)
        device = top_suspect(suspects, kind="device")
        assert device is not None
        # the failing switch should be among the most suspicious devices
        ranked_devices = [s.element_id for s in suspects
                          if s.kind == "device" and s.suspicion >= 0.99]
        assert "pcisw0" in ranked_devices

    def test_healthy_network_no_suspicion(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, rng=make_rng(3))
        mesh.record_baseline()
        good, bad = probe_split(mesh)
        assert not bad
        suspects = localize(cascade_net.topology, good, bad)
        assert all(s.suspicion == 0.0 for s in suspects)

    def test_empty_probes(self, cascade_net):
        assert localize(cascade_net.topology, [], []) == []

    def test_localization_correct_helper(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, rng=make_rng(4))
        mesh.record_baseline()
        FailureInjector(cascade_net).degrade_link("pcie-gpu0",
                                                  capacity_factor=0.05,
                                                  extra_latency=us(5))
        good, bad = probe_split(mesh)
        suspects = localize(cascade_net.topology, good, bad)
        assert localization_correct(suspects, "pcie-gpu0", top_k=2)
        assert not localization_correct(suspects, "eth0", top_k=2)
