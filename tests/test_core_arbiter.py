"""The dynamic arbiter: allocation rule and runtime enforcement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicArbiter, compute_caps
from repro.errors import ArbiterError
from repro.topology import shortest_path
from repro.units import Gbps, us


class TestComputeCaps:
    def test_floors_guaranteed_when_reserved(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 40.0}, usages={"a": 40.0, "b": 60.0},
            best_effort={"b"}, work_conserving=False,
        )
        assert caps["a"] == pytest.approx(40.0)

    def test_non_work_conserving_pins_at_floor(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 40.0}, usages={"a": 0.0},
            best_effort=set(), work_conserving=False,
        )
        assert caps["a"] == pytest.approx(40.0)

    def test_work_conserving_spare_follows_demand(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 40.0}, usages={"a": 40.0, "b": 60.0},
            best_effort={"b"}, work_conserving=True,
        )
        # spare = 60; a sits at its floor (tiny estimate), b is pushing
        # hard, so water-filling hands b nearly all the spare
        assert caps["a"] == pytest.approx(42.0)
        assert caps["b"] == pytest.approx(58.0)
        assert caps["a"] + caps["b"] == pytest.approx(100.0)

    def test_idle_guarantee_spare_goes_to_demander(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 40.0}, usages={"a": 0.0, "b": 50.0},
            best_effort={"b"}, work_conserving=True,
        )
        # a idle: its floor stays reserved (hard guarantee), but the spare
        # goes to b, whose cap exceeds its current usage so it can grow
        assert caps["a"] >= 40.0
        assert caps["b"] > 50.0

    def test_best_effort_gets_ramp_allowance_when_idle(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 90.0}, usages={"a": 90.0, "b": 0.0},
            best_effort={"b"}, work_conserving=True,
        )
        assert caps["b"] >= 2.0  # the 2% ramp allowance

    def test_sum_of_floors_never_violated_by_guarantees(self):
        caps = compute_caps(
            capacity=100.0, floors={"a": 30.0, "b": 30.0},
            usages={"a": 30.0, "b": 30.0}, best_effort=set(),
            work_conserving=False,
        )
        assert caps["a"] + caps["b"] <= 100.0

    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.floats(min_value=10.0, max_value=1000.0),
        floor_values=st.lists(st.floats(min_value=1.0, max_value=100.0),
                              min_size=0, max_size=4),
        be_usages=st.lists(st.floats(min_value=0.0, max_value=500.0),
                           min_size=0, max_size=3),
        work_conserving=st.booleans(),
    )
    def test_caps_invariants(self, capacity, floor_values, be_usages,
                             work_conserving):
        """Every guaranteed tenant's cap >= its floor (when reservations fit);
        caps are non-negative; and in non-work-conserving mode guaranteed
        caps equal floors exactly."""
        floors = {f"g{i}": v for i, v in enumerate(floor_values)}
        if sum(floors.values()) > capacity:
            return  # admission would never commit this
        usages = {t: f for t, f in floors.items()}
        best_effort = set()
        for i, usage in enumerate(be_usages):
            tenant = f"b{i}"
            best_effort.add(tenant)
            usages[tenant] = usage
        caps = compute_caps(capacity, floors, usages, best_effort,
                            work_conserving)
        for tenant, floor in floors.items():
            assert caps[tenant] >= floor - 1e-9
            if not work_conserving:
                assert caps[tenant] == pytest.approx(floor)
        assert all(c >= 0 for c in caps.values())


class TestDynamicArbiter:
    def test_floor_protects_guaranteed_tenant(self, cascade_net):
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.001, decision_latency=0.0)
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        for link_id in path.links:
            arbiter.add_floor("victim", link_id, Gbps(100))
        arbiter.register_best_effort("bully")
        arbiter.start()

        victim = net.start_transfer("victim", path, demand=Gbps(100))
        for i in range(8):
            net.start_transfer("bully", path)
        net.engine.run_until(0.05)
        assert victim.current_rate >= Gbps(100) * 0.99

    def test_work_conserving_lets_bully_use_spare(self, cascade_net):
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.001, decision_latency=0.0,
                                 work_conserving=True)
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        for link_id in path.links:
            arbiter.add_floor("victim", link_id, Gbps(100))
        arbiter.register_best_effort("bully")
        arbiter.start()
        bully = net.start_transfer("bully", path)  # victim idle
        net.engine.run_until(0.05)
        assert bully.current_rate > Gbps(120)

    def test_reserved_mode_wastes_spare(self, cascade_net):
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.001, decision_latency=0.0,
                                 work_conserving=False)
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        for link_id in path.links:
            arbiter.add_floor("victim", link_id, Gbps(100))
        arbiter.register_best_effort("bully")
        arbiter.start()
        bully = net.start_transfer("bully", path)
        net.engine.run_until(0.05)
        # bully limited to capacity - floor on the PCIe bottleneck
        assert bully.current_rate <= Gbps(256) - Gbps(100) + Gbps(1)

    def test_decision_latency_delays_enforcement(self, cascade_net):
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.01,
                                 decision_latency=us(5000))  # 5 ms
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        arbiter.add_floor("victim", path.links[0], Gbps(100))
        arbiter.register_best_effort("bully")
        bully = net.start_transfer("bully", path)
        arbiter.adjust_once()
        # immediately after the decision, no cap applied yet
        assert bully.current_rate == pytest.approx(Gbps(256), rel=1e-6)
        net.engine.run_until(0.006)
        assert bully.current_rate < Gbps(256)

    def test_floor_bookkeeping(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net)
        arbiter.add_floor("t", "pcie-nic0", Gbps(10))
        arbiter.add_floor("t", "pcie-nic0", Gbps(5))
        assert arbiter.floors_on("pcie-nic0")["t"] == pytest.approx(Gbps(15))
        arbiter.remove_floor("t", "pcie-nic0", Gbps(15))
        assert arbiter.managed_links() == []

    def test_remove_unknown_floor_rejected(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net)
        with pytest.raises(ArbiterError):
            arbiter.remove_floor("t", "pcie-nic0", 1.0)

    def test_stop_lifts_caps(self, cascade_net):
        net = cascade_net
        arbiter = DynamicArbiter(net, period=0.001, decision_latency=0.0)
        path = shortest_path(net.topology, "nic0", "dimm0-0")
        arbiter.add_floor("victim", path.links[0], Gbps(100))
        arbiter.register_best_effort("bully")
        arbiter.start()
        bully = net.start_transfer("bully", path)
        net.engine.run_until(0.01)
        assert bully.current_rate < Gbps(256)
        arbiter.stop(lift_caps=True)
        assert bully.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_invalid_params(self, cascade_net):
        with pytest.raises(ArbiterError):
            DynamicArbiter(cascade_net, period=0.0)
        with pytest.raises(ArbiterError):
            DynamicArbiter(cascade_net, decision_latency=-1.0)
        arbiter = DynamicArbiter(cascade_net)
        with pytest.raises(ArbiterError):
            arbiter.add_floor("t", "pcie-nic0", 0.0)

    def test_allocations_introspection(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net, decision_latency=0.0)
        arbiter.add_floor("t", "pcie-nic0", Gbps(10))
        allocations = arbiter.adjust_once()
        # a direction-less floor manages both directions independently
        assert {a.link_id for a in allocations} == \
            {"pcie-nic0|fwd", "pcie-nic0|rev"}
        assert all("t" in a.caps for a in allocations)

    def test_directional_floor_manages_one_direction(self, cascade_net):
        arbiter = DynamicArbiter(cascade_net, decision_latency=0.0)
        arbiter.add_floor("t", "pcie-nic0", Gbps(10), direction="fwd")
        allocations = arbiter.adjust_once()
        assert [a.link_id for a in allocations] == ["pcie-nic0|fwd"]
        assert arbiter.floors_on("pcie-nic0", "rev") == {}
        assert arbiter.floors_on("pcie-nic0")["t"] == pytest.approx(Gbps(10))
