"""Diagnostic tools: hostping, hosttrace, hostperf, hostshark, troubleshoot."""

import pytest

from repro.diagnostics import (
    CauseClass,
    HostShark,
    hostperf,
    hostping,
    hosttrace,
    troubleshoot,
)
from repro.errors import MonitorError
from repro.monitor import FailureInjector
from repro.topology import shortest_path
from repro.units import Gbps, us
from repro.workloads import RdmaLoopbackApp


class TestHostping:
    def test_idle_rtt_near_spec(self, cascade_net):
        report = hostping(cascade_net, "nic0", "dimm0-0", count=5)
        spec = 2 * report.path.base_latency
        assert report.received == 5
        assert report.summary.p50 == pytest.approx(spec, rel=0.1)

    def test_congestion_inflates(self, cascade_net):
        idle = hostping(cascade_net, "nic0", "dimm0-0", count=3)
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        loaded = hostping(cascade_net, "nic0", "dimm0-0", count=3)
        assert loaded.summary.p50 > 5 * idle.summary.p50

    def test_loss_on_down_path(self, cascade_net):
        cascade_net.set_link_up("pcie-nic0", False)
        # hostping probes the physical path; the dead hop loses every probe
        report = hostping(cascade_net, "nic0", "dimm0-0", count=4)
        assert report.loss_rate == 1.0
        assert report.summary is None
        assert "100% loss" in report.describe()

    def test_invalid_count(self, cascade_net):
        with pytest.raises(MonitorError):
            hostping(cascade_net, "nic0", "dimm0-0", count=0)

    def test_advances_time(self, cascade_net):
        before = cascade_net.engine.now
        hostping(cascade_net, "nic0", "dimm0-0", count=5, interval=0.01)
        assert cascade_net.engine.now == pytest.approx(before + 0.05)


class TestHosttrace:
    def test_hop_count_matches_path(self, cascade_net):
        report = hosttrace(cascade_net, "nic0", "dimm1-0")
        assert len(report.hops) == report.path.hop_count == 5

    def test_total_is_sum_of_hops(self, cascade_net):
        report = hosttrace(cascade_net, "nic0", "dimm0-0")
        assert report.total_latency == pytest.approx(
            sum(h.measured_latency for h in report.hops)
        )

    def test_worst_hop_under_congestion(self, cascade_net):
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        report = hosttrace(cascade_net, "nic0", "dimm0-0")
        worst = report.worst_hop()
        assert worst.utilization == pytest.approx(1.0)
        assert worst.inflation > 10

    def test_describe_format(self, cascade_net):
        text = hosttrace(cascade_net, "nic0", "dimm0-0").describe()
        assert "HOSTTRACE" in text
        assert "pcie-nic0" in text

    def test_degraded_flag_shown(self, cascade_net):
        FailureInjector(cascade_net).degrade_link("pcie-up0")
        report = hosttrace(cascade_net, "nic0", "dimm0-0")
        assert any(not h.healthy for h in report.hops)
        assert "DEGRADED" in report.describe()


class TestHostperf:
    def test_idle_path_achieves_bottleneck(self, cascade_net):
        report = hostperf(cascade_net, "gpu0", "dimm0-0", duration=0.02)
        assert report.efficiency == pytest.approx(1.0, rel=1e-3)

    def test_probe_is_removed_after(self, cascade_net):
        hostperf(cascade_net, "gpu0", "dimm0-0", duration=0.02)
        assert cascade_net.active_flows() == []

    def test_shares_with_background(self, cascade_net):
        RdmaLoopbackApp(cascade_net, "bg", nic="nic0",
                        dimm="dimm0-0").start()
        report = hostperf(cascade_net, "nic0", "dimm0-0", duration=0.02)
        # probe and one background flow split the direction fairly
        assert report.achieved_rate == pytest.approx(Gbps(128), rel=0.05)

    def test_demand_limited_probe(self, cascade_net):
        report = hostperf(cascade_net, "gpu0", "dimm0-0", duration=0.02,
                          demand=Gbps(10))
        assert report.achieved_rate == pytest.approx(Gbps(10), rel=1e-3)

    def test_invalid_duration(self, cascade_net):
        with pytest.raises(MonitorError):
            hostperf(cascade_net, "gpu0", "dimm0-0", duration=0.0)

    def test_describe(self, cascade_net):
        text = hostperf(cascade_net, "gpu0", "dimm0-0",
                        duration=0.01).describe()
        assert "HOSTPERF" in text and "Gbps" in text


class TestHostShark:
    def test_capture_start_and_complete(self, cascade_net):
        shark = HostShark(cascade_net)
        shark.start_capture()
        p = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        cascade_net.start_transfer("t", p, size=1e6, tags={"app": "x"})
        cascade_net.engine.run()
        events = [r.event for r in shark.records()]
        assert events == ["start", "complete"]

    def test_not_capturing_by_default(self, cascade_net):
        shark = HostShark(cascade_net)
        p = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        cascade_net.start_transfer("t", p, size=1e6)
        cascade_net.engine.run()
        assert len(shark) == 0

    def test_filters(self, cascade_net):
        shark = HostShark(cascade_net)
        shark.start_capture()
        p1 = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        p2 = shortest_path(cascade_net.topology, "gpu0", "dimm0-0")
        cascade_net.start_transfer("a", p1, size=1e6, tags={"app": "kv"})
        cascade_net.start_transfer("b", p2, size=1e6, tags={"app": "ml"})
        cascade_net.engine.run()
        assert len(shark.records(tenant="a")) == 2
        assert len(shark.records(device="gpu0")) == 2
        assert len(shark.records(link="pcie-nic0")) == 2
        assert len(shark.records(tag={"app": "ml"})) == 2
        assert len(shark.records(event="start")) == 2
        assert len(shark.records(predicate=lambda r: r.size == 1e6)) == 4

    def test_ring_bound(self, cascade_net):
        shark = HostShark(cascade_net, max_records=4)
        shark.start_capture()
        p = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        for _ in range(5):
            cascade_net.start_transfer("t", p, size=1e3)
            cascade_net.engine.run()
        assert len(shark) == 4

    def test_summary_by_tenant(self, cascade_net):
        shark = HostShark(cascade_net)
        shark.start_capture()
        p = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        cascade_net.start_transfer("a", p, size=1e3)
        cascade_net.engine.run()
        assert shark.summary_by_tenant() == {"a": 2}


class TestTroubleshoot:
    def test_healthy_verdict(self, cascade_net):
        diagnosis = troubleshoot(cascade_net, "nic0", "dimm0-0")
        assert diagnosis.cause is CauseClass.HEALTHY
        assert diagnosis.culprit_link is None

    def test_congestion_verdict(self, cascade_net):
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        diagnosis = troubleshoot(cascade_net, "nic0", "dimm0-0")
        assert diagnosis.cause is CauseClass.CONGESTION
        assert diagnosis.culprit_link in diagnosis.trace.path.links

    def test_degraded_verdict(self, cascade_net):
        FailureInjector(cascade_net).degrade_link("pcie-up0",
                                                  capacity_factor=0.1,
                                                  extra_latency=us(2))
        diagnosis = troubleshoot(cascade_net, "nic0", "dimm0-0")
        assert diagnosis.cause is CauseClass.DEGRADED_LINK
        assert diagnosis.culprit_link == "pcie-up0"

    def test_path_down_verdict(self, cascade_net):
        cascade_net.set_link_up("pcie-nic0", False)
        diagnosis = troubleshoot(cascade_net, "nic0", "dimm0-0")
        assert diagnosis.cause is CauseClass.PATH_DOWN
        assert diagnosis.culprit_link == "pcie-nic0"

    def test_bandwidth_measurement_optional(self, cascade_net):
        diagnosis = troubleshoot(cascade_net, "nic0", "dimm0-0",
                                 measure_bandwidth=True)
        assert diagnosis.perf is not None
        assert any("hostperf" in n for n in diagnosis.notes)

    def test_describe(self, cascade_net):
        text = troubleshoot(cascade_net, "nic0", "dimm0-0").describe()
        assert "DIAGNOSIS" in text
