"""Admission retry queue: backoff, kick-on-release, bounded shedding."""

from __future__ import annotations

import pytest

from repro import Gbps, Host, cascade_lake_2s, pipe
from repro.core.admission import AdmissionRetryQueue
from repro.resilience import RecoveryConfig


def _quiet_host(**kwargs) -> Host:
    """A resilient host without the monitor's background traffic."""
    config = RecoveryConfig(monitor=False, **kwargs)
    return Host(cascade_lake_2s(), resilience=config,
                coalesce_recompute=True, decision_latency=0.0)


def _pipe(i: int, bandwidth: float):
    return pipe(f"r{i}", f"tenant{i}", src="nic0", dst="dimm0-0",
                bandwidth=bandwidth)


class TestImmediateAdmission:
    def test_submit_passes_through_when_capacity_allows(self):
        host = _quiet_host()
        placement = host.submit_with_retry(_pipe(0, Gbps(50)))
        assert placement is not None
        assert len(host.retry) == 0
        host.shutdown()

    def test_requires_resilience(self):
        host = Host(cascade_lake_2s())
        with pytest.raises(RuntimeError, match="retry queue"):
            host.submit_with_retry(_pipe(0, Gbps(10)))
        host.shutdown()


class TestParkAndReadmit:
    def test_burst_parks_then_admits_when_capacity_frees(self):
        # pcie-nic0 is 32 GB/s with 0.9 headroom: two 140 Gbps (17.5 GB/s)
        # pipes cannot coexist, so the second parks.
        host = _quiet_host()
        first = host.submit_with_retry(_pipe(0, Gbps(140)))
        assert first is not None
        second = host.submit_with_retry(_pipe(1, Gbps(140)))
        assert second is None
        assert host.retry.is_parked("r1")

        # Freeing the first placement kicks the queue: the parked intent
        # is admitted at the release instant, not after a full backoff.
        t_release = host.now
        host.release("r0")
        host.run_until(t_release + 1e-6)
        assert not host.retry.is_parked("r1")
        assert host.retry.admitted_after_retry == 1
        assert any(p.intent.intent_id == "r1"
                   for p in host.placements())
        host.shutdown()

    def test_backoff_retries_without_release(self):
        host = _quiet_host()
        host.submit_with_retry(_pipe(0, Gbps(140)))
        assert host.submit_with_retry(_pipe(1, Gbps(140))) is None

        # No release: the queue keeps retrying on its own clock; shrink
        # the blocker by swapping it for a smaller one *without* a release
        # listener firing for the new capacity (release fires for r0, but
        # the immediate kick happens before r0b is admitted, so the final
        # admission comes from a timer retry).
        host.manager.release("r0")
        host.manager.submit(_pipe(2, Gbps(40)))
        host.run_until(host.now + 0.2)
        assert host.retry.admitted_after_retry == 1
        assert not host.retry.is_parked("r1")
        host.shutdown()

    def test_attempts_are_counted(self):
        host = _quiet_host()
        host.submit_with_retry(_pipe(0, Gbps(140)))
        host.submit_with_retry(_pipe(1, Gbps(140)))
        host.run_until(host.now + 0.1)
        (entry,) = host.retry.parked()
        assert entry.attempts > 2
        assert "r" in entry.last_reason or entry.last_reason
        host.shutdown()


class TestShedding:
    def test_deadline_shed_with_reason(self):
        host = _quiet_host()
        host.submit_with_retry(_pipe(0, Gbps(140)))
        deadline = host.now + 0.01
        assert host.submit_with_retry(_pipe(1, Gbps(140)),
                                      deadline=deadline) is None
        host.run_until(deadline + 0.05)
        assert not host.retry.is_parked("r1")
        (record,) = host.retry.shed
        assert record.intent_id == "r1"
        assert record.reason == "deadline"
        assert record.time >= deadline
        assert record.attempts >= 1
        host.shutdown()

    def test_past_deadline_sheds_immediately(self):
        host = _quiet_host()
        host.submit_with_retry(_pipe(0, Gbps(140)))
        host.run_until(0.01)
        assert host.submit_with_retry(_pipe(1, Gbps(140)),
                                      deadline=0.005) is None
        assert not host.retry.is_parked("r1")
        assert host.retry.shed[0].reason == "deadline"
        host.shutdown()

    def test_bounded_queue_sheds_overflow(self):
        config = RecoveryConfig(monitor=False, retry_max_parked=1)
        host = Host(cascade_lake_2s(), resilience=config,
                    coalesce_recompute=True, decision_latency=0.0)
        host.submit_with_retry(_pipe(0, Gbps(140)))
        host.submit_with_retry(_pipe(1, Gbps(140)))  # parks (slot 1/1)
        host.submit_with_retry(_pipe(2, Gbps(140)))  # overflows
        assert host.retry.is_parked("r1")
        assert not host.retry.is_parked("r2")
        (record,) = host.retry.shed
        assert record.intent_id == "r2"
        assert record.reason == "queue_full"
        host.shutdown()

    def test_stop_sheds_remaining(self):
        host = _quiet_host()
        host.submit_with_retry(_pipe(0, Gbps(140)))
        host.submit_with_retry(_pipe(1, Gbps(140)))
        host.retry.stop()
        assert len(host.retry) == 0
        assert host.retry.shed[-1].reason == "shutdown"
        host.shutdown()


class TestBackoffMath:
    def test_exponential_growth_capped(self):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        queue = AdmissionRetryQueue(
            host.engine, host.manager.submit,
            base_delay=0.001, multiplier=2.0, max_delay=0.01, jitter=0.0,
        )
        delays = [queue._backoff(attempts) for attempts in range(1, 8)]
        assert delays[:4] == [0.001, 0.002, 0.004, 0.008]
        assert all(d == 0.01 for d in delays[4:])
        host.shutdown()

    def test_jitter_stays_within_fraction(self):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        queue = AdmissionRetryQueue(
            host.engine, host.manager.submit,
            base_delay=0.001, multiplier=1.0, jitter=0.25, seed=42,
        )
        for _ in range(100):
            assert 0.00075 <= queue._backoff(1) <= 0.00125
        host.shutdown()

    @pytest.mark.parametrize("kwargs", [
        {"base_delay": 0.0},
        {"max_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"max_parked": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        with pytest.raises(ValueError):
            AdmissionRetryQueue(host.engine, host.manager.submit, **kwargs)
        host.shutdown()
