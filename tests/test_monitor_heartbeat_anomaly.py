"""Heartbeat mesh and anomaly detectors."""

import math

import pytest

from repro.errors import MonitorError
from repro.monitor import (
    AnomalyKind,
    CusumDetector,
    EwmaDetector,
    HeartbeatMesh,
    ThresholdDetector,
    scan_store,
)
from repro.sim.rng import make_rng
from repro.telemetry import MetricStore
from repro.units import Gbps
from repro.workloads import RdmaLoopbackApp

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0"]


class TestHeartbeatMesh:
    def test_all_pairs_probed(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS)
        results = mesh.probe_all()
        assert len(results) == len(PROBERS) * (len(PROBERS) - 1)
        assert all(not r.missed for r in results)

    def test_periodic_probing(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, period=0.01)
        mesh.start()
        cascade_net.engine.run_until(0.05)
        assert mesh.probes_sent == 5 * len(mesh.pairs())

    def test_needs_two_probers(self, cascade_net):
        with pytest.raises(MonitorError):
            HeartbeatMesh(cascade_net, ["nic0"])

    def test_rtt_reflects_congestion(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS)
        idle = mesh.probe_pair("nic0", "dimm0-0").rtt
        RdmaLoopbackApp(cascade_net, "agg", nic="nic0",
                        dimm="dimm0-0").start()
        loaded = mesh.probe_pair("nic0", "dimm0-0").rtt
        assert loaded > 5 * idle

    def test_missed_on_down_path(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS)
        cascade_net.set_link_up("pcie-nic0", False)
        result = mesh.probe_pair("nic0", "dimm0-0")
        assert result.missed
        assert math.isinf(result.rtt)

    def test_baseline_and_anomalous_probes(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS, rng=make_rng(1))
        mesh.record_baseline()
        mesh.probe_all()
        assert mesh.anomalous_probes() == []
        # silently degrade the switch uplink and add latency
        link = cascade_net.topology.link("pcie-up0")
        link.extra_latency = 5e-6
        cascade_net.degrade_link("pcie-up0", Gbps(25))
        mesh.probe_all()
        flagged = mesh.anomalous_probes(inflation_factor=3.0)
        assert flagged
        assert all("pcie-up0" in p.path.links for p in flagged)

    def test_history_bounded(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, ["nic0", "dimm0-0"], history=5)
        for _ in range(10):
            mesh.probe_pair("nic0", "dimm0-0")
        assert len(mesh.results("nic0", "dimm0-0")) == 5

    def test_unknown_pair_rejected(self, cascade_net):
        mesh = HeartbeatMesh(cascade_net, PROBERS)
        with pytest.raises(MonitorError):
            mesh.probe_pair("nic0", "external")


class TestThresholdDetector:
    def test_flags_above(self):
        d = ThresholdDetector(threshold=0.9)
        assert d.observe("m", 0.0, 0.95) is not None
        assert d.observe("m", 0.0, 0.85) is None

    def test_flags_below_mode(self):
        d = ThresholdDetector(threshold=0.1, above=False)
        assert d.observe("m", 0.0, 0.05) is not None
        assert d.observe("m", 0.0, 0.5) is None

    def test_prefix_filter(self):
        d = ThresholdDetector(threshold=0.9, metric_prefix="link_util.")
        assert d.observe("other.metric", 0.0, 5.0) is None
        assert d.observe("link_util.x", 0.0, 5.0) is not None

    def test_anomaly_fields(self):
        d = ThresholdDetector(threshold=1.0)
        anomaly = d.observe("m", 3.0, 2.0)
        assert anomaly.kind is AnomalyKind.THRESHOLD_EXCEEDED
        assert anomaly.time == 3.0
        assert anomaly.value == 2.0
        assert anomaly.expected == 1.0
        assert anomaly.severity == pytest.approx(1.0)


class TestEwmaDetector:
    def test_quiet_during_warmup(self):
        d = EwmaDetector(warmup=10)
        for i in range(9):
            assert d.observe("m", float(i), 1000.0) is None

    def test_flags_spike_after_warmup(self):
        d = EwmaDetector(zscore_threshold=6.0, warmup=5)
        for i in range(20):
            d.observe("m", float(i), 10.0 + (i % 2) * 0.5)
        anomaly = d.observe("m", 21.0, 500.0)
        assert anomaly is not None
        assert anomaly.kind is AnomalyKind.DEVIATION
        assert anomaly.severity > 6.0

    def test_stable_signal_not_flagged(self):
        d = EwmaDetector(warmup=5)
        anomalies = [d.observe("m", float(i), 10.0) for i in range(50)]
        assert all(a is None for a in anomalies)

    def test_per_metric_baselines(self):
        d = EwmaDetector(warmup=3)
        for i in range(10):
            d.observe("low", float(i), 1.0)
            d.observe("high", float(i), 1000.0)
        # 1000 is normal for "high" but a spike for "low"
        assert d.observe("low", 11.0, 1000.0) is not None
        assert d.observe("high", 11.0, 1000.0) is None

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            EwmaDetector(warmup=1)


class TestCusumDetector:
    def test_flags_level_shift(self):
        d = CusumDetector(drift=0.05, threshold=1.0, warmup=10)
        found = []
        for i in range(10):
            d.observe("m", float(i), 10.0)
        for i in range(10, 40):
            anomaly = d.observe("m", float(i), 13.0)  # persistent +30%
            if anomaly:
                found.append(anomaly)
        assert found
        assert found[0].kind is AnomalyKind.LEVEL_SHIFT

    def test_noise_within_drift_ignored(self):
        d = CusumDetector(drift=0.2, threshold=2.0, warmup=5)
        values = [10.0, 10.5, 9.5, 10.2, 9.9] * 10
        anomalies = [d.observe("m", float(i), v)
                     for i, v in enumerate(values)]
        assert all(a is None for a in anomalies)

    def test_resets_after_alarm(self):
        d = CusumDetector(drift=0.01, threshold=0.5, warmup=5)
        for i in range(5):
            d.observe("m", float(i), 10.0)
        alarms = 0
        for i in range(5, 60):
            if d.observe("m", float(i), 14.0):
                alarms += 1
        assert alarms >= 2  # alarm, reset, alarm again


class TestScanStore:
    def test_scan_in_time_order(self):
        store = MetricStore()
        store.record("util", 0.0, 0.1)
        store.record("util", 1.0, 0.95)
        store.record("util", 2.0, 0.1)
        anomalies = scan_store(store, [ThresholdDetector(0.9)])
        assert len(anomalies) == 1
        assert anomalies[0].time == 1.0

    def test_metric_subset(self):
        store = MetricStore()
        store.record("a", 0.0, 5.0)
        store.record("b", 0.0, 5.0)
        anomalies = scan_store(store, [ThresholdDetector(1.0)],
                               metrics=["a"])
        assert len(anomalies) == 1
        assert anomalies[0].metric == "a"
