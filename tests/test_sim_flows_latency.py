"""Flow lifecycle objects and the analytic latency model."""

import math

import pytest

from repro.errors import FlowError
from repro.sim import LatencyModel
from repro.sim.flows import Flow, FlowState
from repro.topology import cascade_lake_2s, shortest_path
from repro.units import kib, ns


@pytest.fixture(scope="module")
def topo():
    return cascade_lake_2s()


@pytest.fixture
def path(topo):
    return shortest_path(topo, "nic0", "dimm0-0")


def make_flow(path, **overrides):
    defaults = dict(flow_id="f0", tenant_id="t0", path=path)
    defaults.update(overrides)
    return Flow(**defaults)


class TestFlow:
    def test_initial_state(self, path):
        f = make_flow(path)
        assert f.state is FlowState.PENDING
        assert f.bytes_sent == 0.0
        assert f.remaining_bytes == math.inf

    def test_finite_remaining(self, path):
        f = make_flow(path, size=100.0)
        f.bytes_sent = 30.0
        assert f.remaining_bytes == pytest.approx(70.0)
        assert f.is_finite

    def test_effective_demand_combines_cap(self, path):
        f = make_flow(path, demand=10.0, rate_cap=4.0)
        assert f.effective_demand == 4.0

    def test_duration_and_throughput(self, path):
        f = make_flow(path, size=100.0)
        f.started_at, f.finished_at, f.bytes_sent = 1.0, 3.0, 100.0
        assert f.duration == pytest.approx(2.0)
        assert f.throughput() == pytest.approx(50.0)

    def test_duration_none_before_finish(self, path):
        f = make_flow(path)
        f.started_at = 1.0
        assert f.duration is None
        assert f.throughput() is None

    def test_invalid_size(self, path):
        with pytest.raises(FlowError):
            make_flow(path, size=0.0)

    def test_invalid_weight(self, path):
        with pytest.raises(FlowError):
            make_flow(path, weight=0.0)

    def test_invalid_demand(self, path):
        with pytest.raises(FlowError):
            make_flow(path, demand=-1.0)


class TestLatencyModel:
    def test_zero_load_is_base(self, topo, path):
        model = LatencyModel()
        latency = model.path_latency(topo, path, lambda _: 0.0)
        assert latency == pytest.approx(path.base_latency)

    def test_inflation_monotone_in_utilization(self, topo, path):
        model = LatencyModel()
        lats = [
            model.path_latency(topo, path, lambda _, r=rho: r)
            for rho in (0.0, 0.5, 0.9, 0.99)
        ]
        assert lats == sorted(lats)

    def test_inflation_bounded_by_rho_cap(self):
        model = LatencyModel(alpha=1.0, rho_cap=0.98)
        assert model.inflation(5.0) == model.inflation(0.98)
        assert model.inflation(0.98) == pytest.approx(49.0)

    def test_negative_utilization_clamped(self):
        model = LatencyModel()
        assert model.inflation(-0.5) == 0.0

    def test_message_size_adds_serialization(self, topo, path):
        model = LatencyModel()
        small = model.path_latency(topo, path, lambda _: 0.0, 0.0)
        big = model.path_latency(topo, path, lambda _: 0.0, kib(64))
        expected_serialization = kib(64) / path.bottleneck_capacity
        assert big - small == pytest.approx(expected_serialization)

    def test_down_link_infinite(self, topo, path):
        broken = topo.copy()
        broken.link(path.links[0]).up = False
        model = LatencyModel()
        assert math.isinf(model.path_latency(broken, path, lambda _: 0.0))

    def test_round_trip_is_two_one_ways(self, topo, path):
        model = LatencyModel()
        one = model.path_latency(topo, path, lambda _: 0.0)
        rt = model.round_trip(topo, path, lambda _: 0.0)
        assert rt == pytest.approx(2 * one)

    def test_extra_latency_included(self, topo, path):
        broken = topo.copy()
        broken.link(path.links[0]).extra_latency = ns(500)
        model = LatencyModel()
        healthy = model.path_latency(topo, path, lambda _: 0.0)
        degraded = model.path_latency(broken, path, lambda _: 0.0)
        assert degraded - healthy == pytest.approx(ns(500))

    def test_residual_floor_keeps_latency_finite(self, topo, path):
        model = LatencyModel(min_residual_fraction=0.02)
        latency = model.path_latency(topo, path, lambda _: 1.0, kib(4))
        assert math.isfinite(latency)
