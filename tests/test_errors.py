"""The exception hierarchy: everything derives from HostNetError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.TopologyError,
    errors.UnknownDeviceError,
    errors.UnknownLinkError,
    errors.DuplicateElementError,
    errors.InvalidTopologyError,
    errors.NoPathError,
    errors.SimulationError,
    errors.ClockError,
    errors.FlowError,
    errors.TelemetryError,
    errors.UnknownMetricError,
    errors.MonitorError,
    errors.ResourceError,
    errors.AdmissionError,
    errors.InterpretationError,
    errors.ScheduleError,
    errors.ArbiterError,
    errors.UnknownTenantError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_derives_from_hostneterror(error_class):
    assert issubclass(error_class, errors.HostNetError)


def test_unknown_device_carries_id():
    err = errors.UnknownDeviceError("gpu9")
    assert err.device_id == "gpu9"
    assert "gpu9" in str(err)


def test_unknown_link_carries_id():
    err = errors.UnknownLinkError("pcie-x")
    assert err.link_id == "pcie-x"


def test_no_path_carries_endpoints():
    err = errors.NoPathError("a", "b", "isolated")
    assert err.src == "a" and err.dst == "b"
    assert "isolated" in str(err)


def test_admission_error_carries_reason():
    err = errors.AdmissionError("intent-1", "no capacity")
    assert err.intent_id == "intent-1"
    assert err.reason == "no capacity"


def test_unknown_metric_carries_name():
    err = errors.UnknownMetricError("link_util.x")
    assert err.metric == "link_util.x"


def test_unknown_tenant_carries_id():
    err = errors.UnknownTenantError("t0")
    assert err.tenant_id == "t0"


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.HostNetError):
        raise errors.ScheduleError("nope")
