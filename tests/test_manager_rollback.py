"""Submit/replace are all-or-nothing: no partial state leaks on failure."""

from __future__ import annotations

import pytest

from repro import Gbps, Host, cascade_lake_2s, pipe
from repro.errors import AdmissionError, ArbiterError, ScheduleError


def _host() -> Host:
    return Host(cascade_lake_2s(), coalesce_recompute=True,
                decision_latency=0.0)


def _state_fingerprint(host: Host):
    """Everything a failed pipeline stage must leave untouched."""
    manager = host.manager
    floors = {
        (link.link_id, d): manager.arbiter.floors_on(link.link_id, d)
        for link in host.topology.links() for d in ("fwd", "rev")
    }
    reserved = {
        (link.link_id, d): manager.ledger.reserved(link.link_id, d)
        for link in host.topology.links() for d in ("fwd", "rev")
    }
    ceilings = {
        link.link_id: manager.arbiter.ceiling_on(link.link_id)
        for link in host.topology.links()
    }
    placements = sorted(p.intent.intent_id for p in manager.placements())
    return (floors, reserved, ceilings, placements,
            manager.admission.admitted_count)


class TestSubmitRollback:
    def test_failed_floor_install_rolls_back_everything(self, monkeypatch):
        host = _host()
        baseline = _state_fingerprint(host)
        real_add = host.manager.arbiter.add_floor
        calls = {"n": 0}

        def flaky_add(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:  # fail mid-install, after partial floors
                raise ArbiterError("synthetic mid-install fault")
            return real_add(*args, **kwargs)

        monkeypatch.setattr(host.manager.arbiter, "add_floor", flaky_add)
        with pytest.raises(ArbiterError):
            host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50)))
        assert calls["n"] >= 3  # the failure really was mid-install
        assert _state_fingerprint(host) == baseline
        host.shutdown()

    def test_failed_slo_ceiling_install_rolls_back(self, monkeypatch):
        host = _host()
        baseline = _state_fingerprint(host)

        def broken_ceiling(*args, **kwargs):
            raise ArbiterError("synthetic ceiling fault")

        monkeypatch.setattr(host.manager.arbiter,
                            "set_utilization_ceiling", broken_ceiling)
        with pytest.raises(ArbiterError):
            host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50), latency_slo=1e-4))
        assert _state_fingerprint(host) == baseline
        host.shutdown()

    def test_resubmit_succeeds_after_rolled_back_failure(self, monkeypatch):
        host = _host()
        real_add = host.manager.arbiter.add_floor
        calls = {"n": 0}

        def once_flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ArbiterError("synthetic one-shot fault")
            return real_add(*args, **kwargs)

        monkeypatch.setattr(host.manager.arbiter, "add_floor", once_flaky)
        intent = pipe("x", "tA", src="nic0", dst="dimm0-0",
                      bandwidth=Gbps(50))
        with pytest.raises(ArbiterError):
            host.submit(intent)
        # The id was not leaked as "already placed"; retry is clean.
        placement = host.submit(intent)
        assert placement.intent.intent_id == "x"
        host.shutdown()

    def test_admission_reject_leaves_no_state(self):
        host = _host()
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(140)))
        baseline = _state_fingerprint(host)
        with pytest.raises((AdmissionError, ScheduleError)):
            host.submit(pipe("y", "tB", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(140)))
        assert _state_fingerprint(host) == baseline
        host.shutdown()


class TestReplaceRollback:
    def test_no_viable_candidate_reinstates_original(self):
        host = _host()
        placement = host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                                     bandwidth=Gbps(50)))
        baseline = _state_fingerprint(host)
        # Avoiding every link the intent could use makes replace
        # impossible; the original placement must survive exactly.
        with pytest.raises(ScheduleError, match="avoided link"):
            host.manager.replace("x", avoid_links=placement.links())
        assert _state_fingerprint(host) == baseline
        assert host.manager.placement("x").links() == placement.links()
        host.shutdown()

    def test_failed_reinstall_during_replace_reinstates(self, monkeypatch):
        host = _host()
        host.submit(pipe("x", "tA", src="dimm0-0", dst="dimm1-0",
                         bandwidth=Gbps(50)))
        baseline = _state_fingerprint(host)
        real_add = host.manager.arbiter.add_floor
        calls = {"n": 0}

        def flaky_add(*args, **kwargs):
            # Fail only the *first* install attempt of the replace (the
            # new candidate); the reinstate path must then succeed.
            calls["n"] += 1
            if calls["n"] == 1:
                raise ArbiterError("synthetic replace fault")
            return real_add(*args, **kwargs)

        monkeypatch.setattr(host.manager.arbiter, "add_floor", flaky_add)
        with pytest.raises(ArbiterError):
            host.manager.replace("x")
        monkeypatch.undo()
        assert _state_fingerprint(host) == baseline
        host.shutdown()

    def test_replace_not_placed_raises(self):
        host = _host()
        with pytest.raises(AdmissionError, match="not placed"):
            host.manager.replace("ghost")
        host.shutdown()

    def test_successful_replace_keeps_books_balanced(self):
        host = _host()
        host.submit(pipe("x", "tA", src="dimm0-0", dst="dimm1-0",
                         bandwidth=Gbps(50)))
        old = host.manager.placement("x")
        upi = next(l for l in old.links() if l.startswith("upi"))
        new = host.manager.replace("x", avoid_links=[upi])
        assert upi not in new.links()
        # Reservation moved with the placement: old links freed.
        for demand in old.candidate.demands:
            if demand.link_id == upi:
                assert host.manager.ledger.reserved(
                    demand.link_id, demand.direction) == 0.0
        for demand in new.candidate.demands:
            assert host.manager.ledger.reserved(
                demand.link_id, demand.direction) >= demand.bandwidth - 1e-6
        host.shutdown()
