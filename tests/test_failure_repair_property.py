"""Property: any fault storm, repaired in any order, restores the fabric
bit-exact — capacities, latencies, and link state all return to baseline."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, FabricNetwork, cascade_lake_2s
from repro.monitor import FailureInjector
from repro.monitor.failures import FailureKind
from repro.resilience import diff_snapshots, snapshot_fabric

KINDS = list(FailureKind)


def _inject_random(injector: FailureInjector, rng: random.Random,
                   links, switches):
    kind = rng.choice(KINDS)
    if kind is FailureKind.LINK_DEGRADE:
        return injector.degrade_link(rng.choice(links),
                                     capacity_factor=rng.uniform(0.05, 0.95),
                                     extra_latency=rng.uniform(0, 1e-5))
    if kind is FailureKind.LINK_DOWN:
        return injector.fail_link(rng.choice(links))
    if kind is FailureKind.LINK_FLAP:
        return injector.flap_link(rng.choice(links),
                                  period=rng.uniform(0.001, 0.01))
    return injector.degrade_switch(rng.choice(switches),
                                   capacity_factor=rng.uniform(0.05, 0.95),
                                   extra_latency=rng.uniform(0, 1e-5))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_inject_clear_restores_baseline_exactly(seed):
    rng = random.Random(seed)
    topology = cascade_lake_2s()
    network = FabricNetwork(topology, Engine(), coalesce_recompute=True)
    links = sorted(l.link_id for l in topology.links())
    switches = sorted(
        d.device_id for d in topology.devices()
        if d.is_fabric and topology.incident_links(d.device_id)
    )
    injector = FailureInjector(network)
    baseline = snapshot_fabric(network)

    # Overlapping storm: several failures live at once, some stacked on
    # the same links, with simulated time advancing so flaps toggle.
    records = []
    for _ in range(rng.randint(1, 8)):
        records.append(_inject_random(injector, rng, links, switches))
        network.engine.run_until(network.engine.now
                                 + rng.uniform(0.0, 0.02))

    rng.shuffle(records)  # repair order must not matter
    for record in records:
        injector.clear(record)
        network.engine.run_until(network.engine.now
                                 + rng.uniform(0.0, 0.01))

    assert not injector.failures(active_only=True)
    diffs = diff_snapshots(baseline, snapshot_fabric(network))
    assert diffs == [], f"seed {seed}: fabric drifted after repair: {diffs}"


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_each_kind_alone_roundtrips(seed):
    rng = random.Random(seed)
    topology = cascade_lake_2s()
    network = FabricNetwork(topology, Engine(), coalesce_recompute=True)
    links = sorted(l.link_id for l in topology.links())
    switches = sorted(
        d.device_id for d in topology.devices()
        if d.is_fabric and topology.incident_links(d.device_id)
    )
    injector = FailureInjector(network)
    baseline = snapshot_fabric(network)

    for kind in KINDS:
        if kind is FailureKind.LINK_DEGRADE:
            failure = injector.degrade_link(
                rng.choice(links), capacity_factor=rng.uniform(0.05, 0.95)
            )
        elif kind is FailureKind.LINK_DOWN:
            failure = injector.fail_link(rng.choice(links))
        elif kind is FailureKind.LINK_FLAP:
            failure = injector.flap_link(rng.choice(links),
                                         period=rng.uniform(0.001, 0.01))
        else:
            failure = injector.degrade_switch(
                rng.choice(switches),
                capacity_factor=rng.uniform(0.05, 0.95),
            )
        network.engine.run_until(network.engine.now
                                 + rng.uniform(0.0, 0.02))
        injector.clear(failure)
        diffs = diff_snapshots(baseline, snapshot_fabric(network))
        assert diffs == [], (f"seed {seed}: {kind.value} did not "
                             f"round-trip: {diffs}")
