"""Baseline policies and their characteristic weaknesses."""

import pytest

from repro.baselines import (
    HostnetPolicy,
    RdtLikePolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
)
from repro.core import pipe
from repro.topology import shortest_path
from repro.units import Gbps, to_Gbps
from repro.workloads import MaliciousFloodApp

TENANTS = ["victim", "evil"]


def attack(net, victim_demand=Gbps(100)):
    """Victim flow + 16-flow flood on the same path; returns victim flow."""
    path = shortest_path(net.topology, "nic0", "dimm0-0")
    victim = net.start_transfer("victim", path, demand=victim_demand)
    MaliciousFloodApp(net, "evil", src="nic0", dst="dimm0-0",
                      flow_count=16).start()
    net.engine.run_until(0.05)
    return victim


class TestUnmanaged:
    def test_no_enforcement(self, cascade_net):
        policy = UnmanagedPolicy()
        policy.setup(cascade_net, TENANTS)
        victim = attack(cascade_net)
        assert to_Gbps(victim.current_rate) < 30.0
        policy.teardown(cascade_net, TENANTS)


class TestStaticPartition:
    def test_protects_victim(self, cascade_net):
        policy = StaticPartitionPolicy()
        policy.setup(cascade_net, TENANTS)
        victim = attack(cascade_net)
        # victim holds its 1/2 share of the 256 Gbps link
        assert to_Gbps(victim.current_rate) >= 99.0

    def test_wastes_idle_capacity(self, cascade_net):
        """The static-partition weakness: N=2 split caps a lone tenant."""
        policy = StaticPartitionPolicy()
        policy.setup(cascade_net, TENANTS)
        path = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        lone = cascade_net.start_transfer("victim", path)
        assert to_Gbps(lone.current_rate) == pytest.approx(128.0, rel=1e-6)

    def test_teardown_restores(self, cascade_net):
        policy = StaticPartitionPolicy()
        policy.setup(cascade_net, TENANTS)
        policy.teardown(cascade_net, TENANTS)
        path = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        lone = cascade_net.start_transfer("victim", path)
        assert to_Gbps(lone.current_rate) == pytest.approx(256.0, rel=1e-6)

    def test_empty_tenant_list(self, cascade_net):
        StaticPartitionPolicy().setup(cascade_net, [])


class TestRdtLike:
    def test_memory_bus_managed(self, cascade_net):
        policy = RdtLikePolicy()
        policy.setup(cascade_net, TENANTS)
        assert cascade_net.tenant_link_cap("victim", "membus0-0") is not None
        assert cascade_net.tenant_link_cap("victim", "pcie-nic0") is None

    def test_pcie_interference_sails_through(self, cascade_net):
        """The point-solution gap: PCIe flood still starves the victim."""
        policy = RdtLikePolicy()
        policy.setup(cascade_net, TENANTS)
        victim = attack(cascade_net)
        assert to_Gbps(victim.current_rate) < 30.0

    def test_memory_bus_interference_blocked(self, cascade_net):
        policy = RdtLikePolicy()
        policy.setup(cascade_net, TENANTS)
        path = shortest_path(cascade_net.topology, "dimm0-0", "gpu0")
        victim = cascade_net.start_transfer("victim", path,
                                            demand=Gbps(200))
        MaliciousFloodApp(cascade_net, "evil", src="dimm0-0", dst="gpu0",
                          flow_count=16).start()
        cascade_net.engine.run_until(0.05)
        # membus0-0 (1048 Gbps) split in half -> victim keeps its 200 Gbps
        # demand because evil is capped at 524 Gbps on the memory bus and
        # both fit; the bottleneck is the PCIe link where fair share still
        # applies, so victim gets its fair half there.
        assert to_Gbps(victim.current_rate) > 0


class TestHostnetPolicy:
    def _factory(self, tenant):
        if tenant == "victim":
            return [pipe("victim-pipe", "victim", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(100))]
        return []

    def test_protects_and_stays_work_conserving(self, cascade_net):
        policy = HostnetPolicy(self._factory, decision_latency=0.0)
        policy.setup(cascade_net, TENANTS)
        victim = attack(cascade_net)
        assert to_Gbps(victim.current_rate) >= 99.0
        # the attacker still gets the spare (work conservation)
        evil_rate = cascade_net.tenant_link_rate("evil", "pcie-nic0")
        assert to_Gbps(evil_rate) > 50.0
        policy.teardown(cascade_net, TENANTS)

    def test_rejections_recorded(self, cascade_net):
        def greedy(tenant):
            return [pipe(f"{tenant}-pipe", tenant, src="nic0",
                         dst="dimm0-0", bandwidth=Gbps(200))]

        policy = HostnetPolicy(greedy)
        policy.setup(cascade_net, TENANTS)
        # first tenant fits (200 <= 0.9*256 ≈ 230), second cannot
        assert len(policy.rejections) == 1

    def test_teardown_stops_arbiter(self, cascade_net):
        policy = HostnetPolicy(self._factory, decision_latency=0.0)
        policy.setup(cascade_net, TENANTS)
        policy.teardown(cascade_net, TENANTS)
        assert policy.manager is None
        path = shortest_path(cascade_net.topology, "nic0", "dimm0-0")
        lone = cascade_net.start_transfer("evil", path)
        cascade_net.engine.run_until(0.01)
        assert to_Gbps(lone.current_rate) == pytest.approx(256.0, rel=1e-6)
