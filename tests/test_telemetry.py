"""Telemetry: counter fidelity (Q1), storage, collection cost (Q2), views."""

import pytest

from repro.errors import TelemetryError, UnknownMetricError
from repro.sim import SYSTEM_TENANT
from repro.telemetry import (
    SOURCE_SPECS,
    CounterBank,
    CounterSource,
    MetricStore,
    TelemetryCollector,
    hottest_links,
    per_tenant_usage,
    tenant_rate_metric,
    top_talkers,
    utilization_table,
)
from repro.topology import shortest_path
from repro.units import Gbps, ms


def drive_traffic(net, tenant="t1", demand=Gbps(100)):
    p = shortest_path(net.topology, "nic0", "dimm0-0")
    return net.start_transfer(tenant, p, demand=demand)


class TestCounterBank:
    def test_hardware_is_tenant_blind(self, minimal_net):
        bank = CounterBank(minimal_net, CounterSource.HARDWARE)
        assert not bank.supports_per_tenant()
        with pytest.raises(TelemetryError):
            bank.tenant_link_bytes("t1", "pcie-nic0")

    def test_software_sees_tenants_but_underreports(self, minimal_net):
        drive_traffic(minimal_net)
        minimal_net.engine.run_until(1.0)
        bank = CounterBank(minimal_net, CounterSource.SOFTWARE)
        truth = minimal_net.tenant_link_bytes("t1", "pcie-nic0")
        seen = bank.tenant_link_bytes("t1", "pcie-nic0")
        visibility = SOURCE_SPECS[CounterSource.SOFTWARE].visibility
        assert seen == pytest.approx(truth * visibility, rel=1e-3)

    def test_hardware_latches_fast_reads(self, minimal_net):
        drive_traffic(minimal_net)
        bank = CounterBank(minimal_net, CounterSource.HARDWARE)
        minimal_net.engine.run_until(0.2)
        first = bank.link_bytes("pcie-nic0")
        # advance less than the 100ms min read interval: stale value
        minimal_net.engine.run_until(0.25)
        assert bank.link_bytes("pcie-nic0") == first
        # advance beyond it: fresh value
        minimal_net.engine.run_until(0.35)
        assert bank.link_bytes("pcie-nic0") > first

    def test_future_hardware_fast_and_attributed(self, minimal_net):
        drive_traffic(minimal_net)
        bank = CounterBank(minimal_net, CounterSource.FUTURE_HARDWARE)
        assert bank.supports_per_tenant()
        minimal_net.engine.run_until(0.001)
        a = bank.link_bytes("pcie-nic0")
        minimal_net.engine.run_until(0.002)
        assert bank.link_bytes("pcie-nic0") > a

    def test_quantization(self, minimal_net):
        drive_traffic(minimal_net)
        minimal_net.engine.run_until(0.5)
        bank = CounterBank(minimal_net, CounterSource.HARDWARE)
        value = bank.link_bytes("pcie-nic0")
        assert value % 64 == 0


class TestMetricStore:
    def test_record_and_series(self):
        store = MetricStore()
        store.record("m", 0.0, 1.0)
        store.record("m", 1.0, 2.0)
        assert store.series("m") == [(0.0, 1.0), (1.0, 2.0)]
        assert store.latest("m") == (1.0, 2.0)
        assert store.values("m") == [1.0, 2.0]

    def test_ring_eviction(self):
        store = MetricStore(capacity=3)
        for i in range(5):
            store.record("m", float(i), float(i))
        assert store.values("m") == [2.0, 3.0, 4.0]
        assert store.samples_evicted == 2

    def test_unknown_metric(self):
        with pytest.raises(UnknownMetricError):
            MetricStore().series("ghost")

    def test_window(self):
        store = MetricStore()
        for i in range(10):
            store.record("m", float(i), float(i))
        assert len(store.window("m", 2.0, 5.0)) == 4

    def test_metrics_sorted(self):
        store = MetricStore()
        store.record("b", 0, 0)
        store.record("a", 0, 0)
        assert store.metrics() == ["a", "b"]

    def test_memory_accounting(self):
        store = MetricStore(capacity=10)
        store.record("m", 0, 0)
        assert store.memory_bytes(16.0) == 16.0


class TestCollector:
    def test_samples_utilization(self, minimal_net):
        collector = TelemetryCollector(minimal_net, period=0.01,
                                       source=CounterSource.SOFTWARE)
        collector.start()
        drive_traffic(minimal_net, demand=Gbps(128))
        minimal_net.engine.run_until(0.1)
        util = collector.latest_utilization("pcie-nic0")
        # software interception sees 90% of the true 0.5 utilization
        assert util == pytest.approx(0.45, abs=0.05)

    def test_hardware_sampling_below_read_interval_goes_stale(self,
                                                              minimal_net):
        """Polling PCM-style counters faster than they refresh reads zeros."""
        collector = TelemetryCollector(minimal_net, period=0.01,
                                       source=CounterSource.HARDWARE)
        collector.start()
        drive_traffic(minimal_net, demand=Gbps(128))
        minimal_net.engine.run_until(0.05)
        assert collector.latest_utilization("pcie-nic0") == 0.0

    def test_local_mode_costs_nothing(self, minimal_net):
        collector = TelemetryCollector(minimal_net, period=0.01,
                                       processing="local")
        collector.start()
        minimal_net.engine.run_until(0.5)
        assert collector.overhead_rate() == 0.0

    def test_ship_mode_consumes_fabric(self, minimal_net):
        collector = TelemetryCollector(minimal_net, period=0.01,
                                       processing="ship")
        collector.start()
        minimal_net.engine.run_until(0.5)
        assert collector.shipped_bytes > 0
        assert minimal_net.link_bytes("pcie-nic0") > 0  # system flows ran
        assert minimal_net.tenant_link_bytes(
            SYSTEM_TENANT, "pcie-nic0") == pytest.approx(
                minimal_net.link_bytes("pcie-nic0"))

    def test_faster_sampling_ships_more(self, minimal_net):
        fast = TelemetryCollector(minimal_net, period=0.001,
                                  processing="ship")
        fast.start()
        minimal_net.engine.run_until(0.2)
        fast.stop()
        fast_bytes = fast.shipped_bytes
        slow = TelemetryCollector(minimal_net, period=0.05,
                                  processing="ship")
        slow.start()
        minimal_net.engine.run_until(0.4)
        assert fast_bytes > slow.shipped_bytes * 5

    def test_per_tenant_metrics_with_software_source(self, minimal_net):
        collector = TelemetryCollector(
            minimal_net, source=CounterSource.SOFTWARE, period=0.01,
            tenants=["t1"],
        )
        collector.start()
        drive_traffic(minimal_net)
        minimal_net.engine.run_until(0.1)
        metric = tenant_rate_metric("t1", "pcie-nic0")
        assert collector.store.has_metric(metric)
        assert collector.store.latest(metric)[1] > 0

    def test_hardware_source_no_tenant_metrics(self, minimal_net):
        collector = TelemetryCollector(
            minimal_net, source=CounterSource.HARDWARE, period=0.01,
            tenants=["t1"],
        )
        collector.start()
        drive_traffic(minimal_net)
        minimal_net.engine.run_until(0.1)
        assert not collector.store.has_metric(
            tenant_rate_metric("t1", "pcie-nic0")
        )

    def test_double_start_rejected(self, minimal_net):
        collector = TelemetryCollector(minimal_net)
        collector.start()
        with pytest.raises(TelemetryError):
            collector.start()

    def test_set_period(self, minimal_net):
        collector = TelemetryCollector(minimal_net, period=0.1)
        collector.start()
        collector.set_period(0.01)
        minimal_net.engine.run_until(0.5)
        assert collector.cycles > 10

    def test_degraded_link_looks_underutilized(self, minimal_net):
        """The E4 premise: counters divide by advertised capacity."""
        collector = TelemetryCollector(minimal_net, period=0.01,
                                       source=CounterSource.SOFTWARE)
        collector.start()
        drive_traffic(minimal_net, demand=Gbps(999))  # elastic saturation
        minimal_net.degrade_link("pcie-nic0", Gbps(25.6))  # silent 10x loss
        minimal_net.engine.run_until(0.2)
        util = collector.latest_utilization("pcie-nic0")
        assert util < 0.15  # looks idle although the link is saturated


class TestViews:
    def test_utilization_table_sorted(self, cascade_net):
        drive_traffic(cascade_net)
        rows = utilization_table(cascade_net)
        utils = [r.utilization for r in rows]
        assert utils == sorted(utils, reverse=True)
        assert rows[0].utilization > 0

    def test_row_format_mentions_degraded(self, cascade_net):
        cascade_net.degrade_link("pcie-nic0", Gbps(10))
        rows = [r for r in utilization_table(cascade_net)
                if r.link_id == "pcie-nic0"]
        assert "DEGRADED" in rows[0].format_row()

    def test_per_tenant_usage(self, cascade_net):
        drive_traffic(cascade_net, tenant="a")
        usage = per_tenant_usage(cascade_net, ["a", "idle"])
        assert usage["a"]
        assert usage["idle"] == {}

    def test_top_talkers(self, cascade_net):
        drive_traffic(cascade_net, tenant="big", demand=Gbps(100))
        drive_traffic(cascade_net, tenant="small", demand=Gbps(1))
        talkers = top_talkers(cascade_net, ["big", "small"], "pcie-nic0")
        assert talkers[0][0] == "big"

    def test_hottest_links(self, cascade_net):
        drive_traffic(cascade_net)
        hot = hottest_links(cascade_net, k=3)
        assert len(hot) == 3
