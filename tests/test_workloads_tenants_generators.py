"""Tenant registry and arrival generators."""

import pytest

from repro.errors import (
    DuplicateElementError,
    UnknownTenantError,
    WorkloadError,
)
from repro.sim import Engine
from repro.sim.rng import make_rng
from repro.workloads import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    Tenant,
    TenantRegistry,
)


class TestTenants:
    def test_create_and_get(self):
        reg = TenantRegistry()
        reg.create("t1", priority=2)
        assert reg.get("t1").priority == 2
        assert "t1" in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = TenantRegistry()
        reg.create("t1")
        with pytest.raises(DuplicateElementError):
            reg.create("t1")

    def test_unknown_raises(self):
        with pytest.raises(UnknownTenantError):
            TenantRegistry().get("ghost")

    def test_remove(self):
        reg = TenantRegistry()
        reg.create("t1")
        reg.remove("t1")
        assert "t1" not in reg

    def test_malicious_partition(self):
        reg = TenantRegistry()
        reg.create("good")
        reg.create("evil", malicious=True)
        assert [t.tenant_id for t in reg.honest()] == ["good"]
        assert [t.tenant_id for t in reg.adversaries()] == ["evil"]

    def test_invalid_priority(self):
        with pytest.raises(ValueError):
            Tenant("t", priority=0)

    def test_iteration_order(self):
        reg = TenantRegistry()
        for name in ("a", "b", "c"):
            reg.create(name)
        assert reg.ids() == ["a", "b", "c"]


class TestOpenLoop:
    def test_periodic_when_no_rng(self):
        eng = Engine()
        times = []
        gen = OpenLoopGenerator(eng, lambda: times.append(eng.now), rate=10.0)
        gen.start()
        eng.run_until(0.35)
        assert times == pytest.approx([0.1, 0.2, 0.3])

    def test_poisson_mean_rate(self):
        eng = Engine()
        count = [0]
        gen = OpenLoopGenerator(eng, lambda: count.__setitem__(0, count[0] + 1),
                                rate=1000.0, rng=make_rng(1))
        gen.start()
        eng.run_until(2.0)
        assert count[0] == pytest.approx(2000, rel=0.1)

    def test_stop(self):
        eng = Engine()
        times = []
        gen = OpenLoopGenerator(eng, lambda: times.append(eng.now), rate=10.0)
        gen.start()
        eng.run_until(0.25)
        gen.stop()
        eng.run_until(1.0)
        assert len(times) == 2

    def test_set_rate(self):
        eng = Engine()
        times = []
        gen = OpenLoopGenerator(eng, lambda: times.append(eng.now), rate=10.0)
        gen.start()
        eng.run_until(0.1)
        gen.set_rate(100.0)
        # the already-armed arrival fires at 0.2; the new rate applies after
        eng.run_until(0.3)
        assert len(times) > 5

    def test_invalid_rate(self):
        with pytest.raises(WorkloadError):
            OpenLoopGenerator(Engine(), lambda: None, rate=0.0)

    def test_invalid_process(self):
        with pytest.raises(WorkloadError):
            OpenLoopGenerator(Engine(), lambda: None, rate=1.0,
                              process="weird")

    def test_uniform_process(self):
        eng = Engine()
        count = [0]
        gen = OpenLoopGenerator(eng, lambda: count.__setitem__(0, count[0] + 1),
                                rate=100.0, rng=make_rng(2), process="uniform")
        gen.start()
        eng.run_until(1.0)
        assert count[0] == pytest.approx(100, rel=0.3)

    def test_idempotent_start(self):
        eng = Engine()
        times = []
        gen = OpenLoopGenerator(eng, lambda: times.append(eng.now), rate=10.0)
        gen.start()
        gen.start()
        eng.run_until(0.15)
        assert len(times) == 1


class TestClosedLoop:
    def test_keeps_window_full(self):
        eng = Engine()
        state = {"running": 0, "peak": 0}

        def launch():
            state["running"] += 1
            state["peak"] = max(state["peak"], state["running"])
            eng.schedule_in(0.01, finish)

        gen = ClosedLoopGenerator(eng, launch, concurrency=3)

        def finish():
            state["running"] -= 1
            gen.operation_done()

        gen.start()
        eng.run_until(0.1)
        assert state["peak"] == 3
        assert gen.in_flight == 3
        assert gen.completed >= 9

    def test_think_time_slows_relaunch(self):
        eng = Engine()
        launches = []

        gen = ClosedLoopGenerator(eng, lambda: launches.append(eng.now),
                                  concurrency=1, think_time=0.5)
        gen.start()
        gen.operation_done()
        eng.run_until(1.0)
        assert launches == [0.0, 0.5]

    def test_stop_drains(self):
        eng = Engine()
        launches = []
        gen = ClosedLoopGenerator(eng, lambda: launches.append(eng.now),
                                  concurrency=2)
        gen.start()
        gen.stop()
        gen.operation_done()
        assert len(launches) == 2  # no relaunch after stop

    def test_invalid_concurrency(self):
        with pytest.raises(WorkloadError):
            ClosedLoopGenerator(Engine(), lambda: None, concurrency=0)
