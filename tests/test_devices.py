"""Device behavioural models: PCIe, DDIO cache, NIC cache, IOMMU, config."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    MISCONFIGURATIONS,
    RECOMMENDED_CONFIG,
    CpuModel,
    CxlDeviceModel,
    DdioCache,
    DeviceCache,
    GpuModel,
    HostConfig,
    IommuModel,
    MemoryModel,
    NumaPolicy,
    NvmeModel,
    PcieSwitchModel,
    RdmaNicModel,
    effective_pcie_bandwidth,
    tlp_efficiency,
)
from repro.units import GBps, Gbps, kib, mib, ms, us


class TestPcieProtocol:
    def test_efficiency_below_one(self):
        assert 0 < tlp_efficiency(256) < 1

    def test_small_payloads_less_efficient(self):
        assert tlp_efficiency(64) < tlp_efficiency(256) < tlp_efficiency(4096,
                                                                         4096)

    def test_payload_chunked_at_mps(self):
        # a 4 KiB transfer with MPS=256 behaves like 256B TLPs
        assert tlp_efficiency(4096, 256) == pytest.approx(tlp_efficiency(256, 256))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            tlp_efficiency(0)
        with pytest.raises(ValueError):
            tlp_efficiency(256, 0)

    def test_effective_bandwidth(self):
        raw = Gbps(256)
        eff = effective_pcie_bandwidth(raw, 256)
        assert eff == pytest.approx(raw * tlp_efficiency(256))

    @given(st.integers(min_value=1, max_value=8192))
    def test_efficiency_in_unit_interval(self, payload):
        assert 0 < tlp_efficiency(payload) < 1


class TestPcieSwitch:
    def test_healthy_latency(self):
        sw = PcieSwitchModel("sw0")
        assert sw.effective_latency == sw.forwarding_latency
        assert sw.capacity_factor() == 1.0

    def test_failure_degrades(self):
        sw = PcieSwitchModel("sw0")
        sw.inject_failure(degrade_factor=0.1)
        assert sw.capacity_factor() == pytest.approx(0.1)
        assert sw.effective_latency > sw.forwarding_latency

    def test_repair(self):
        sw = PcieSwitchModel("sw0")
        sw.inject_failure()
        sw.repair()
        assert sw.capacity_factor() == 1.0

    def test_invalid_degrade_factor(self):
        sw = PcieSwitchModel("sw0")
        with pytest.raises(ValueError):
            sw.inject_failure(degrade_factor=0.0)


class TestDdioCache:
    def test_no_io_no_thrash(self):
        report = DdioCache().steady_state(0.0, consume_delay=1e-3)
        assert report.hit_rate == 1.0
        assert report.membus_extra_rate == 0.0

    def test_below_threshold_all_hits(self):
        cache = DdioCache(ways=2, way_size=mib(1.5))
        threshold = cache.thrash_threshold(consume_delay=1e-4)
        report = cache.steady_state(threshold * 0.5, consume_delay=1e-4)
        assert report.hit_rate == 1.0
        assert report.spill_rate == 0.0

    def test_above_threshold_spills(self):
        cache = DdioCache(ways=2, way_size=mib(1.5))
        threshold = cache.thrash_threshold(consume_delay=1e-4)
        report = cache.steady_state(threshold * 4, consume_delay=1e-4)
        assert report.hit_rate == pytest.approx(0.25)
        assert report.spill_rate == pytest.approx(threshold * 3)
        assert report.membus_extra_rate == pytest.approx(2 * report.spill_rate)

    def test_disabled_cache_all_misses(self):
        cache = DdioCache(enabled=False)
        report = cache.steady_state(GBps(10), consume_delay=1e-4)
        assert report.hit_rate == 0.0
        assert report.membus_extra_rate == pytest.approx(2 * GBps(10))

    def test_more_ways_raise_threshold(self):
        small = DdioCache(ways=2).thrash_threshold(1e-4)
        large = DdioCache(ways=8).thrash_threshold(1e-4)
        assert large == pytest.approx(4 * small)

    def test_zero_consume_delay_never_thrashes(self):
        report = DdioCache().steady_state(GBps(100), consume_delay=0.0)
        assert report.hit_rate == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DdioCache(ways=0)
        with pytest.raises(ValueError):
            DdioCache().steady_state(-1.0, 1e-3)

    @given(rate=st.floats(min_value=1.0, max_value=1e12),
           delay=st.floats(min_value=1e-7, max_value=1e-1))
    @settings(max_examples=100)
    def test_hit_rate_bounded_property(self, rate, delay):
        report = DdioCache().steady_state(rate, delay)
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.spill_rate <= rate * (1 + 1e-9)


class TestDeviceCache:
    def test_fits_no_misses(self):
        cache = DeviceCache(entries=100)
        assert cache.miss_rate(100) == 0.0
        assert cache.miss_rate(50) == 0.0

    def test_overflow_miss_rate(self):
        cache = DeviceCache(entries=100)
        assert cache.miss_rate(200) == pytest.approx(0.5)
        assert cache.miss_rate(400) == pytest.approx(0.75)

    def test_expected_costs(self):
        cache = DeviceCache(entries=10, miss_penalty=us(1),
                            miss_extra_bytes=kib(4))
        assert cache.expected_penalty(20) == pytest.approx(us(0.5))
        assert cache.expected_extra_bytes(20) == pytest.approx(kib(2))

    def test_negative_active_rejected(self):
        with pytest.raises(ValueError):
            DeviceCache(entries=10).miss_rate(-1)


class TestRdmaNic:
    def test_goodput_flat_within_cache(self):
        nic = RdmaNicModel("nic0")
        pcie = Gbps(256)
        in_cache = nic.goodput(kib(4), active_connections=100,
                               pcie_capacity=pcie)
        at_capacity = nic.goodput(kib(4),
                                  active_connections=nic.saturating_connections(),
                                  pcie_capacity=pcie)
        assert in_cache == pytest.approx(at_capacity)

    def test_goodput_cliff_beyond_cache(self):
        nic = RdmaNicModel("nic0")
        pcie = Gbps(256)
        healthy = nic.goodput(kib(4), 512, pcie)
        thrashing = nic.goodput(kib(4), 16384, pcie)
        assert thrashing < healthy * 0.5

    def test_latency_grows_with_misses(self):
        nic = RdmaNicModel("nic0")
        assert nic.message_latency(100) == nic.base_latency
        assert nic.message_latency(10000) > nic.base_latency

    def test_extra_pcie_traffic(self):
        nic = RdmaNicModel("nic0")
        assert nic.extra_pcie_rate(1e6, 100) == 0.0
        assert nic.extra_pcie_rate(1e6, 4096) > 0.0

    def test_goodput_bounded_by_line_rate(self):
        nic = RdmaNicModel("nic0", line_rate=Gbps(100))
        assert nic.goodput(mib(1), 10, Gbps(256)) <= Gbps(100) * (1 + 1e-9)

    def test_invalid_message_size(self):
        with pytest.raises(ValueError):
            RdmaNicModel("nic0").goodput(0, 10, Gbps(1))


class TestIommu:
    def test_disabled_is_free(self):
        iommu = IommuModel(enabled=False)
        assert iommu.translation_latency(mib(100)) == 0.0
        assert iommu.miss_rate(mib(100)) == 0.0

    def test_small_buffer_hits(self):
        iommu = IommuModel(iotlb_entries=256)
        assert iommu.miss_rate(kib(4) * 256) == 0.0
        assert iommu.translation_latency(kib(4)) == iommu.hit_latency

    def test_large_buffer_misses(self):
        iommu = IommuModel(iotlb_entries=256)
        buffer = kib(4) * 2560  # 10x the IOTLB reach
        assert iommu.miss_rate(buffer) == pytest.approx(0.9)
        assert iommu.translation_latency(buffer) > iommu.hit_latency

    def test_walk_traffic_scales_with_rate(self):
        iommu = IommuModel(iotlb_entries=16)
        buffer = kib(4) * 160
        assert iommu.walk_traffic(2e6, buffer) == \
            pytest.approx(2 * iommu.walk_traffic(1e6, buffer))

    def test_working_set_pages_ceiling(self):
        iommu = IommuModel()
        assert iommu.working_set_pages(1.0) == 1
        assert iommu.working_set_pages(kib(4) + 1) == 2


class TestHostConfig:
    def test_default_is_recommended(self):
        assert HostConfig() == RECOMMENDED_CONFIG

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            HostConfig(max_payload_size=100)

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            HostConfig(ddio_ways=0)

    def test_with_changes(self):
        cfg = RECOMMENDED_CONFIG.with_changes(iommu_enabled=True)
        assert cfg.iommu_enabled
        assert RECOMMENDED_CONFIG.iommu_enabled is False

    def test_latency_penalty_accumulates(self):
        base = RECOMMENDED_CONFIG.small_op_latency_penalty()
        heavy = RECOMMENDED_CONFIG.with_changes(
            iommu_enabled=True, acs_enabled=True,
            interrupt_moderation=us(10),
        ).small_op_latency_penalty()
        assert heavy > base + us(10)

    def test_efficiency_factor(self):
        strict = RECOMMENDED_CONFIG.with_changes(relaxed_ordering=False)
        assert strict.pcie_efficiency_factor() < \
            RECOMMENDED_CONFIG.pcie_efficiency_factor()

    def test_membus_amplification(self):
        assert RECOMMENDED_CONFIG.membus_amplification() == 1.0
        no_ddio = RECOMMENDED_CONFIG.with_changes(ddio_enabled=False)
        assert no_ddio.membus_amplification() == 2.0

    def test_describe_differences(self):
        cfg = RECOMMENDED_CONFIG.with_changes(numa_policy=NumaPolicy.REMOTE)
        diffs = cfg.describe_differences(RECOMMENDED_CONFIG)
        assert len(diffs) == 1 and "numa_policy" in diffs[0]

    def test_misconfigurations_registry(self):
        assert "remote_numa" in MISCONFIGURATIONS
        for name, cfg in MISCONFIGURATIONS.items():
            assert cfg.describe_differences(RECOMMENDED_CONFIG), name


class TestEndpointModels:
    def test_cpu_op_rate(self):
        cpu = CpuModel(socket=0, cores=4, ops_per_core=1e6)
        assert cpu.max_op_rate(2) == pytest.approx(2e6)
        with pytest.raises(ValueError):
            cpu.max_op_rate(5)

    def test_memory_bandwidth(self):
        mem = MemoryModel(channels=6, per_channel_bandwidth=GBps(21.8))
        assert mem.bandwidth == pytest.approx(GBps(130.8))

    def test_gpu_dma_rate(self):
        gpu = GpuModel("gpu0", copy_engines=2, per_engine_bandwidth=GBps(26))
        assert gpu.max_dma_rate() == pytest.approx(GBps(52))
        assert gpu.max_dma_rate(1) == pytest.approx(GBps(26))
        with pytest.raises(ValueError):
            gpu.max_dma_rate(3)

    def test_nvme_offered_rate_iops_bound(self):
        nvme = NvmeModel("nvme0", max_iops=1e6)
        # 512B ops: IOPS-bound at 512 MB/s
        assert nvme.offered_rate(512.0) == pytest.approx(512e6)

    def test_nvme_offered_rate_bandwidth_bound(self):
        nvme = NvmeModel("nvme0")
        assert nvme.offered_rate(mib(1)) == pytest.approx(nvme.read_bandwidth)

    def test_nvme_mixed_rw(self):
        nvme = NvmeModel("nvme0", read_bandwidth=GBps(6),
                         write_bandwidth=GBps(4))
        assert nvme.offered_rate(mib(1), read_fraction=0.5) == \
            pytest.approx(GBps(5))

    def test_cxl_defaults(self):
        cxl = CxlDeviceModel("cxl0")
        assert cxl.access_latency == pytest.approx(150e-9)
