"""Max-min fair solver: fairness, demand limits, weights, constraints."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bandwidth import (
    Constraint,
    FlowDemand,
    link_utilizations,
    max_min_fair_rates,
)


def solve(flows, caps, extra=()):
    return max_min_fair_rates(flows, caps, extra)


class TestBasics:
    def test_empty(self):
        assert solve([], {}) == {}

    def test_single_elastic_flow_gets_bottleneck(self):
        flows = [FlowDemand("f", ("a", "b"))]
        rates = solve(flows, {"a": 10.0, "b": 4.0})
        assert rates["f"] == pytest.approx(4.0)

    def test_two_equal_flows_split(self):
        flows = [FlowDemand("f1", ("l",)), FlowDemand("f2", ("l",))]
        rates = solve(flows, {"l": 10.0})
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(5.0)

    def test_demand_limited_flow_frees_capacity(self):
        flows = [FlowDemand("small", ("l",), demand=2.0),
                 FlowDemand("big", ("l",))]
        rates = solve(flows, {"l": 10.0})
        assert rates["small"] == pytest.approx(2.0)
        assert rates["big"] == pytest.approx(8.0)

    def test_weights_proportional(self):
        flows = [FlowDemand("w1", ("l",), weight=1.0),
                 FlowDemand("w3", ("l",), weight=3.0)]
        rates = solve(flows, {"l": 8.0})
        assert rates["w1"] == pytest.approx(2.0)
        assert rates["w3"] == pytest.approx(6.0)

    def test_zero_demand_gets_zero(self):
        flows = [FlowDemand("idle", ("l",), demand=0.0),
                 FlowDemand("busy", ("l",))]
        rates = solve(flows, {"l": 10.0})
        assert rates["idle"] == 0.0
        assert rates["busy"] == pytest.approx(10.0)

    def test_failed_link_gives_zero(self):
        flows = [FlowDemand("f", ("dead",))]
        rates = solve(flows, {"dead": 0.0})
        assert rates["f"] == 0.0

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            solve([FlowDemand("f", ("ghost",))], {"l": 1.0})

    def test_duplicate_flow_ids_raise(self):
        flows = [FlowDemand("f", ("l",)), FlowDemand("f", ("l",))]
        with pytest.raises(ValueError):
            solve(flows, {"l": 1.0})

    def test_elastic_flow_with_no_constraint_raises(self):
        with pytest.raises(ValueError):
            solve([FlowDemand("f", ())], {})


class TestMultiHop:
    def test_classic_parking_lot(self):
        """Long flow crosses both links; short flows cross one each."""
        flows = [
            FlowDemand("long", ("l1", "l2")),
            FlowDemand("s1", ("l1",)),
            FlowDemand("s2", ("l2",)),
        ]
        rates = solve(flows, {"l1": 10.0, "l2": 10.0})
        assert rates["long"] == pytest.approx(5.0)
        assert rates["s1"] == pytest.approx(5.0)
        assert rates["s2"] == pytest.approx(5.0)

    def test_bottleneck_migration(self):
        """Narrow second hop binds the long flow; short flow takes slack."""
        flows = [
            FlowDemand("long", ("wide", "narrow")),
            FlowDemand("short", ("wide",)),
        ]
        rates = solve(flows, {"wide": 10.0, "narrow": 2.0})
        assert rates["long"] == pytest.approx(2.0)
        assert rates["short"] == pytest.approx(8.0)


class TestVirtualConstraints:
    def test_tenant_cap_binds(self):
        flows = [FlowDemand("t1a", ("l",)), FlowDemand("t1b", ("l",)),
                 FlowDemand("t2", ("l",))]
        cap = Constraint("cap:t1", capacity=2.0,
                         member_flows=frozenset({"t1a", "t1b"}))
        rates = solve(flows, {"l": 12.0}, [cap])
        assert rates["t1a"] + rates["t1b"] == pytest.approx(2.0)
        assert rates["t2"] == pytest.approx(10.0)

    def test_constraint_without_members_rejected(self):
        with pytest.raises(ValueError):
            solve([FlowDemand("f", ("l",))], {"l": 1.0},
                  [Constraint("c", 1.0)])

    def test_constraint_id_collision_rejected(self):
        with pytest.raises(ValueError):
            solve([FlowDemand("f", ("l",))], {"l": 1.0},
                  [Constraint("l", 1.0, member_flows=frozenset({"f"}))])

    def test_constraint_over_absent_flows_ignored(self):
        flows = [FlowDemand("f", ("l",))]
        cap = Constraint("cap:x", 0.5, member_flows=frozenset({"ghost"}))
        rates = solve(flows, {"l": 4.0}, [cap])
        assert rates["f"] == pytest.approx(4.0)


class TestInvalidInputs:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FlowDemand("f", ("l",), weight=-1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            FlowDemand("f", ("l",), demand=-1.0)

    def test_negative_capacity_constraint_rejected(self):
        with pytest.raises(ValueError):
            Constraint("c", capacity=-1.0)


class TestUtilizations:
    def test_utilization_computation(self):
        flows = [FlowDemand("f1", ("l",)), FlowDemand("f2", ("l",))]
        rates = solve(flows, {"l": 10.0})
        utils = link_utilizations(flows, rates, {"l": 10.0})
        assert utils["l"] == pytest.approx(1.0)

    def test_zero_capacity_link(self):
        flows = [FlowDemand("f", ("dead",))]
        utils = link_utilizations(flows, {"f": 0.0}, {"dead": 0.0})
        assert utils["dead"] == 0.0


# -- property-based invariants ------------------------------------------------

link_names = ["a", "b", "c", "d"]


@st.composite
def solver_instances(draw):
    n_flows = draw(st.integers(min_value=1, max_value=8))
    caps = {
        name: draw(st.floats(min_value=0.5, max_value=100.0))
        for name in link_names
    }
    flows = []
    for i in range(n_flows):
        links = tuple(draw(st.sets(st.sampled_from(link_names), min_size=1,
                                   max_size=4)))
        demand = draw(st.one_of(
            st.just(math.inf),
            st.floats(min_value=0.0, max_value=50.0),
        ))
        weight = draw(st.floats(min_value=0.1, max_value=10.0))
        flows.append(FlowDemand(f"f{i}", links, demand=demand, weight=weight))
    return flows, caps


@settings(max_examples=200, deadline=None)
@given(solver_instances())
def test_solver_invariants(instance):
    """No link oversubscribed; no demand exceeded; no negative rates;
    and the allocation is maximal (some constraint or demand binds every
    flow)."""
    flows, caps = instance
    rates = max_min_fair_rates(flows, caps)
    tol = 1e-6

    for f in flows:
        assert rates[f.flow_id] >= -tol
        assert rates[f.flow_id] <= f.demand * (1 + tol) + tol

    for link, cap in caps.items():
        load = sum(rates[f.flow_id] for f in flows if link in f.links)
        assert load <= cap * (1 + 1e-6) + tol

    # Maximality: every flow is bound by its demand or by a saturated link.
    for f in flows:
        at_demand = rates[f.flow_id] >= f.demand * (1 - 1e-6) - tol
        on_saturated = any(
            sum(rates[g.flow_id] for g in flows if link in g.links)
            >= caps[link] * (1 - 1e-6) - tol
            for link in f.links
        )
        assert at_demand or on_saturated, (
            f"flow {f.flow_id} is not maximal: rate={rates[f.flow_id]}"
        )


@settings(max_examples=100, deadline=None)
@given(solver_instances())
def test_solver_deterministic(instance):
    flows, caps = instance
    first = max_min_fair_rates(flows, caps)
    second = max_min_fair_rates(flows, caps)
    assert first == second
