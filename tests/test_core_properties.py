"""Property tests over the resource-management pipeline.

Random intent batches against the manager must preserve the admission
invariants regardless of order, kind, or floor sizes:

* the ledger never reserves more than ``capacity * headroom`` on any
  directed link;
* release returns the ledger to exactly its prior state;
* every admitted intent's floors are installed in the arbiter and torn
  down on release.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HostNetworkManager, hose, pipe
from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s
from repro.units import Gbps

ENDPOINTS = ["nic0", "nic1", "gpu0", "gpu1", "nvme0", "nvme1"]
DIMMS = ["dimm0-0", "dimm0-1", "dimm1-0", "dimm1-1"]


@st.composite
def intent_batches(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    intents = []
    for i in range(n):
        kind = draw(st.sampled_from(["pipe", "hose"]))
        tenant = f"t{draw(st.integers(min_value=0, max_value=3))}"
        bandwidth = Gbps(draw(st.sampled_from([10, 25, 50, 90, 150])))
        if kind == "pipe":
            src = draw(st.sampled_from(ENDPOINTS))
            dst = draw(st.sampled_from(DIMMS))
            bidirectional = draw(st.booleans())
            intents.append(pipe(f"i{i}", tenant, src=src, dst=dst,
                                bandwidth=bandwidth,
                                bidirectional=bidirectional))
        else:
            endpoint = draw(st.sampled_from(ENDPOINTS))
            intents.append(hose(f"i{i}", tenant, endpoint=endpoint,
                                bandwidth=bandwidth))
    return intents


HEADROOM = 0.9


def fresh_manager():
    network = FabricNetwork(cascade_lake_2s(), Engine())
    return HostNetworkManager(network, headroom=HEADROOM,
                              decision_latency=0.0,
                              auto_start_arbiter=False)


@settings(max_examples=40, deadline=None)
@given(batch=intent_batches())
def test_ledger_never_overcommitted(batch):
    manager = fresh_manager()
    for intent in batch:
        manager.try_submit(intent)
    topology = manager.network.topology
    for link in topology.links():
        for direction in ("fwd", "rev"):
            reserved = manager.ledger.reserved(link.link_id, direction)
            assert reserved <= link.capacity * HEADROOM * (1 + 1e-9), (
                f"{link.link_id}/{direction} overcommitted: {reserved}"
            )


@settings(max_examples=40, deadline=None)
@given(batch=intent_batches())
def test_release_restores_ledger(batch):
    manager = fresh_manager()
    placed = [intent for intent in batch
              if manager.try_submit(intent) is not None]
    if not placed:
        return
    for intent in placed:
        manager.release(intent.intent_id)
    topology = manager.network.topology
    for link in topology.links():
        for direction in ("fwd", "rev"):
            assert manager.ledger.reserved(link.link_id, direction) == \
                pytest.approx(0.0, abs=1e-6)
    assert manager.arbiter.managed_links() == []
    assert manager.ledger.committed_intents() == []


@settings(max_examples=40, deadline=None)
@given(batch=intent_batches())
def test_floors_match_ledger(batch):
    """The arbiter's per-direction floors mirror the ledger exactly."""
    manager = fresh_manager()
    for intent in batch:
        manager.try_submit(intent)
    topology = manager.network.topology
    for link in topology.links():
        for direction in ("fwd", "rev"):
            floors = manager.arbiter.floors_on(link.link_id, direction)
            assert sum(floors.values()) == pytest.approx(
                manager.ledger.reserved(link.link_id, direction), rel=1e-9,
                abs=1e-6,
            )


@settings(max_examples=25, deadline=None)
@given(batch=intent_batches(), seed=st.integers(min_value=0, max_value=99))
def test_admission_deterministic(batch, seed):
    """The same batch admits identically on identical fresh hosts."""
    outcomes = []
    for _ in range(2):
        manager = fresh_manager()
        outcomes.append(tuple(
            manager.try_submit(intent) is not None for intent in batch
        ))
    assert outcomes[0] == outcomes[1]
