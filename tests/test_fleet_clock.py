"""The event-driven fleet clock: equivalence, invalidation, quiescence.

The event clock's contract is that it is an *optimization*, never a
semantic change: a seeded churn run must produce bit-identical placements,
rejections, and reservation ledgers under either discipline, and waking
hosts in any order must never affect what the fleet has promised.  The
same bargain is asserted for the other incremental layers this rests on —
the vectorized headroom matrix vs the scalar rollup, the self-parking
arbiter vs recomputing every round, and the shared route cache vs
per-host enumeration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MigrationError
from repro.fleet import Fleet, FleetChurnConfig, make_policy, run_churn
from repro.core import pipe
from repro.monitor import FailureInjector
from repro.topology.elements import LinkClass
from repro.topology.graph import HostTopology
from repro.topology.routing import k_shortest_paths
from repro.units import Gbps

CONFIG = FleetChurnConfig(seed=11, horizon=0.08, arrival_rate=1500.0)


def kv(intent_id, tenant="tA", bandwidth=Gbps(50), src="nic0",
       dst="dimm0-0"):
    return pipe(intent_id, tenant, src=src, dst=dst, bandwidth=bandwidth)


def ledger_signature(fleet):
    """Reserved bytes/s per (host, link, direction) — the ground truth
    both clock disciplines must agree on exactly."""
    return {
        host_id: tuple(sorted(host.manager.ledger.reserved_map.items()))
        for host_id, host in fleet.hosts()
    }


def churn_under(clock, seed):
    fleet = Fleet("cascade_lake_2s", hosts=4, policy="best-fit",
                  max_attempts=3, clock=clock)
    config = FleetChurnConfig(seed=seed, horizon=0.08, arrival_rate=1500.0)
    report = run_churn(fleet, config)
    signature = (
        report.placements,
        report.admitted,
        report.rejected,
        report.released,
        ledger_signature(fleet),
    )
    fleet.shutdown()
    return signature


# -- event/lockstep equivalence ----------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_event_clock_matches_lockstep_exactly(seed):
    assert churn_under("event", seed) == churn_under("lockstep", seed)


def test_event_clock_is_self_deterministic():
    assert churn_under("event", 99) == churn_under("event", 99)


# -- waking order is irrelevant to conservation ------------------------------


HOSTS = ["host00", "host01", "host02", "host03"]


def _run_with_wakes(wake_order):
    fleet = Fleet("cascade_lake_2s", hosts=4, policy="best-fit",
                  clock="event")
    fleet.submit(kv("a", tenant="t0", bandwidth=Gbps(80)))
    fleet.submit(kv("b", tenant="t1", bandwidth=Gbps(40), src="nic1"))
    fleet.advance_to(0.005)
    for host_id in wake_order:
        fleet.wake(host_id)
    fleet.submit(kv("c", tenant="t0", bandwidth=Gbps(20),
                    dst="dimm1-0"))
    fleet.advance_to(0.01)
    for host_id in reversed(wake_order):
        fleet.wake(host_id)
    signature = ledger_signature(fleet)
    clocks = [host.now for _hid, host in fleet.hosts()]
    fleet.shutdown()
    return signature, clocks


@settings(max_examples=20, deadline=None)
@given(order=st.permutations(HOSTS))
def test_waking_order_never_affects_conservation(order):
    shuffled, clocks = _run_with_wakes(list(order))
    reference, _ = _run_with_wakes(HOSTS)
    assert shuffled == reference
    # And every woken host landed exactly on fleet time.
    assert clocks == [pytest.approx(0.01)] * len(HOSTS)


# -- matrix vs scalar rollup --------------------------------------------------


def test_matrix_excludes_inter_host_links_exactly_like_scalar():
    fleet = Fleet("cascade_lake_2s", hosts=2)
    fleet.submit(kv("a", bandwidth=Gbps(60)))
    host = fleet.host("host00")
    wires = host.topology.links(LinkClass.INTER_HOST)
    assert wires, "preset is expected to model the external wire"

    rooms = fleet.telemetry.headrooms()
    matrix = fleet.telemetry.matrix()
    for i, room in enumerate(rooms):
        assert matrix.host_ids[i] == room.host_id
        assert matrix.free_capacity_total[i] == room.free_capacity_total
        assert (matrix.free_capacity_min_directed[i]
                == room.free_capacity_min_directed)
        assert bool(matrix.available[i]) == room.available

    # Degrading the wire must not move any headroom capacity figure (it
    # is not placement fabric), in either representation.
    before = fleet.telemetry.headroom("host00")
    FailureInjector(host.network).degrade_link(wires[0].link_id,
                                               capacity_factor=0.5)
    fleet.telemetry.invalidate("host00")
    after = fleet.telemetry.headroom("host00")
    assert after.free_capacity_total == before.free_capacity_total
    assert after.degraded_links == before.degraded_links + 1
    matrix_after = fleet.telemetry.matrix()
    idx = matrix_after.host_ids.index("host00")
    assert (matrix_after.free_capacity_total[idx]
            == after.free_capacity_total)


@pytest.mark.parametrize("name", ["first-fit", "best-fit", "spread"])
def test_rank_matrix_agrees_with_scalar_rank(name):
    fleet = Fleet("cascade_lake_2s", hosts=5)
    # Asymmetric load so the ranking is non-trivial.
    fleet.submit(kv("a", tenant="t0", bandwidth=Gbps(150)))
    fleet.submit(kv("b", tenant="t0", bandwidth=Gbps(80), src="nic1"))
    fleet.submit(kv("c", tenant="t1", bandwidth=Gbps(40)))
    policy = make_policy(name)
    request = fleet.scheduler.request_for(kv("probe", tenant="t0",
                                             bandwidth=Gbps(60)))
    rooms = fleet.telemetry.headrooms()
    matrix = fleet.telemetry.matrix()
    assert policy.rank_matrix(request, matrix) == policy.rank(request, rooms)


# -- invalidation protocol ----------------------------------------------------


def test_failed_migration_invalidates_src_and_dst_summaries():
    fleet = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    fleet.submit(kv("moving", bandwidth=Gbps(150)))   # -> host00
    fleet.submit(kv("blocker", bandwidth=Gbps(150)))  # -> host01
    fleet.telemetry.headrooms()  # warm both summaries
    count = fleet.telemetry.refresh_count

    with pytest.raises(MigrationError, match="rejected"):
        fleet.migrate("moving", "host01")

    # Rollback touched the source ledger and probed the destination:
    # both summaries must recompute on next read.
    fleet.telemetry.headroom("host00")
    fleet.telemetry.headroom("host01")
    assert fleet.telemetry.refresh_count == count + 2
    assert fleet.scheduler.host_of("moving") == "host00"


# -- arbiter quiescence -------------------------------------------------------


def test_arbiter_parks_when_quiesced_and_reacts_to_perturbation():
    fleet = Fleet("cascade_lake_2s", hosts=2, clock="event")
    placed = fleet.submit(kv("a", tenant="t0", bandwidth=Gbps(100)))
    fleet.advance_to(0.02)  # long enough for many idle arbiter periods
    host = fleet.host(placed.host_id)
    arbiter = host.manager.arbiter
    assert arbiter.skipped_adjustments > 0
    # Parked: far fewer rounds than periods elapsed (0.02s / 1ms = 20
    # periods minimum under a metronome; quiesced rounds self-cancel).
    assert arbiter.adjustments < 20

    # A perturbation (new floors) re-arms enforcement: the new tenant
    # ends up capped on every link its intent reserved.
    rounds = arbiter.adjustments
    fleet.submit(kv("b", tenant="t1", bandwidth=Gbps(50), src="nic1",
                    dst="dimm1-0"))
    fleet.advance_to(0.03)
    assert arbiter.adjustments + sum(
        h.manager.arbiter.adjustments for _i, h in fleet.hosts()
        if h is not host
    ) > rounds
    dst_host = fleet.host(fleet.scheduler.host_of("b"))
    demands = dst_host.manager.ledger.demands_of("b")
    assert demands
    for demand in demands:
        cap = dst_host.network.tenant_link_cap("t1", demand.link_id,
                                               direction=demand.direction)
        assert cap is not None and cap >= demand.bandwidth - 1e-6


# -- the shared route cache ---------------------------------------------------


def test_route_cache_shared_between_identical_hosts_but_state_isolated():
    fleet = Fleet("cascade_lake_2s", hosts=2)
    h0 = fleet.host("host00")
    h1 = fleet.host("host01")
    paths0 = k_shortest_paths(h0.topology, "nic0", "dimm0-0")
    paths1 = k_shortest_paths(h1.topology, "nic0", "dimm0-0")
    assert [p.links for p in paths0] == [p.links for p in paths1]
    # Identical structure and link state hash to one shared cache...
    assert h0.topology._route_cache is h1.topology._route_cache
    assert any(HostTopology._SHARED_ROUTE_CACHES)

    # ...but divergent link state splits them: degradation on host00
    # must never leak into host01's enumerations.
    degraded_link = paths0[0].links[0]
    FailureInjector(h0.network).degrade_link(degraded_link,
                                             capacity_factor=0.25)
    after0 = k_shortest_paths(h0.topology, "nic0", "dimm0-0")
    after1 = k_shortest_paths(h1.topology, "nic0", "dimm0-0")
    assert h0.topology._route_cache is not h1.topology._route_cache
    assert (min(p.bottleneck_capacity for p in after0)
            < min(p.bottleneck_capacity for p in after1))
    assert [p.links for p in after1] == [p.links for p in paths1]
