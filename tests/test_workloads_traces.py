"""Trace generation, serialization, and replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim import Engine
from repro.workloads import (
    AppKind,
    Trace,
    TraceEvent,
    TraceGenerator,
    TraceReplayer,
)


class TestGenerator:
    def test_deterministic(self):
        a = TraceGenerator(seed=42).generate()
        b = TraceGenerator(seed=42).generate()
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = TraceGenerator(seed=1).generate()
        b = TraceGenerator(seed=2).generate()
        assert a.events != b.events

    def test_horizon_respected(self):
        trace = TraceGenerator(seed=7).generate(horizon=5.0)
        assert trace.horizon <= 5.0 + 1e-9
        for event in trace:
            assert 0.0 <= event.start <= event.end <= 5.0 + 1e-9

    def test_tenant_count(self):
        trace = TraceGenerator(seed=3).generate(tenant_count=5)
        assert len(trace.tenants()) == 5

    def test_intensity_range(self):
        trace = TraceGenerator(seed=3).generate()
        for event in trace:
            assert 0.3 <= event.intensity <= 1.0

    def test_mix_restriction(self):
        gen = TraceGenerator(seed=3, mix={AppKind.KV_STORE: 1.0})
        trace = gen.generate()
        assert all(e.app_kind is AppKind.KV_STORE for e in trace)

    def test_invalid_mix(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(mix={AppKind.KV_STORE: -1.0})

    def test_events_sorted_by_start(self):
        trace = TraceGenerator(seed=9).generate()
        starts = [e.start for e in trace]
        assert starts == sorted(starts)


class TestSerialization:
    def test_json_roundtrip(self):
        trace = TraceGenerator(seed=11).generate()
        rebuilt = Trace.from_json(trace.to_json())
        assert rebuilt.events == trace.events

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_json_roundtrip_property(self, seed):
        trace = TraceGenerator(seed=seed).generate(tenant_count=3,
                                                   horizon=4.0)
        assert Trace.from_json(trace.to_json()).events == trace.events


class TestTraceQueries:
    def test_concurrent_at(self):
        trace = Trace(events=[
            TraceEvent("a", AppKind.KV_STORE, start=0.0, duration=2.0,
                       intensity=1.0),
            TraceEvent("b", AppKind.NVME_SCAN, start=1.0, duration=2.0,
                       intensity=1.0),
        ])
        assert trace.concurrent_at(0.5) == 1
        assert trace.concurrent_at(1.5) == 2
        assert trace.concurrent_at(2.5) == 1
        assert trace.concurrent_at(5.0) == 0

    def test_empty_trace(self):
        trace = Trace(events=[])
        assert trace.horizon == 0.0
        assert len(trace) == 0


class FakeApp:
    def __init__(self):
        self.started = False
        self.stopped = False

    def start(self):
        self.started = True

    def stop(self):
        self.stopped = True


class TestReplayer:
    def test_sessions_start_and_stop_on_time(self):
        engine = Engine()
        trace = Trace(events=[
            TraceEvent("a", AppKind.KV_STORE, start=1.0, duration=2.0,
                       intensity=1.0),
        ])
        apps = []

        def make_app(event):
            app = FakeApp()
            apps.append(app)
            return app

        replayer = TraceReplayer(engine, trace, make_app)
        replayer.arm()
        engine.run_until(0.5)
        assert apps == []
        engine.run_until(1.5)
        assert apps[0].started and not apps[0].stopped
        assert replayer.active
        engine.run_until(3.5)
        assert apps[0].stopped
        assert not replayer.active

    def test_double_arm_rejected(self):
        engine = Engine()
        trace = Trace(events=[])
        replayer = TraceReplayer(engine, trace, lambda e: FakeApp())
        replayer.arm()
        with pytest.raises(WorkloadError):
            replayer.arm()
