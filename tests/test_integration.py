"""Full-stack integration: the paper's scenarios end to end.

Each test stitches several subsystems together exactly the way the
benchmarks do — workloads on the fabric, the monitor watching, the manager
enforcing — and asserts the paper's qualitative claims.
"""


from repro.baselines import (
    HostnetPolicy,
    RdtLikePolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
)
from repro.core import HostNetworkManager, migrate_tenant, pipe
from repro.diagnostics import CauseClass, troubleshoot
from repro.monitor import FailureInjector, HostMonitor
from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s, shortest_path
from repro.units import Gbps, us
from repro.workloads import (
    AppKind,
    KvStoreApp,
    MlTrainingApp,
    RdmaLoopbackApp,
    TraceGenerator,
    TraceReplayer,
)


def fresh_net():
    return FabricNetwork(cascade_lake_2s(), Engine())


class TestInterferenceMatrix:
    """E2's shape: per-policy victim QoS under co-location."""

    def run_policy(self, policy):
        net = fresh_net()
        tenants = ["kv", "ml"]
        policy.setup(net, tenants)
        kv = KvStoreApp(net, "kv", nic="nic0", dimm="dimm0-0",
                        request_rate=20000, seed=1)
        ml = MlTrainingApp(net, "ml", dimm="dimm0-0", gpu="gpu0")
        # GPUDirect-style NIC<->GPU loopback: PCIe pressure on kv's path
        # that memory-only RDT throttling cannot see (mirrors bench E2)
        loop = RdmaLoopbackApp(net, "ml", nic="nic0", dimm="gpu0",
                               streams=4)
        kv.start()
        ml.start()
        loop.start()  # the aggressor sharing kv's path
        net.engine.run_until(0.3)
        policy.teardown(net, tenants)
        return kv.stats.latency_summary().p99

    def test_policy_ordering(self):
        def factory(tenant):
            if tenant == "kv":
                # bidirectional (request/response) with a latency SLO:
                # bandwidth floors alone don't protect tails on a
                # work-conserving fabric
                return [pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50), latency_slo=us(6),
                             bidirectional=True)]
            return []

        p99 = {
            "unmanaged": self.run_policy(UnmanagedPolicy()),
            "rdt": self.run_policy(RdtLikePolicy()),
            "hostnet": self.run_policy(
                HostnetPolicy(factory, decision_latency=0.0)
            ),
            "static": self.run_policy(StaticPartitionPolicy()),
        }
        # who wins: hostnet and static protect; unmanaged and rdt do not
        assert p99["hostnet"] < p99["unmanaged"] / 2
        assert p99["static"] < p99["unmanaged"] / 2
        assert p99["rdt"] > p99["hostnet"] * 2


class TestDetectThenDiagnose:
    def test_monitor_flags_then_toolkit_names_culprit(self):
        net = fresh_net()
        monitor = HostMonitor(net, probers=["nic0", "gpu0", "dimm0-0",
                                            "nvme0"])
        monitor.start()
        KvStoreApp(net, "kv", nic="nic0", dimm="dimm0-0",
                   request_rate=5000, seed=2).start()
        net.engine.run_until(0.05)
        monitor.record_baseline()

        FailureInjector(net).degrade_link("pcie-up0", capacity_factor=0.1,
                                          extra_latency=us(3))
        net.engine.run_until(0.15)
        report = monitor.check()
        assert not report.healthy

        suspect = report.top_link_suspect()
        assert suspect is not None
        diagnosis = troubleshoot(net, "nic0", "dimm0-0")
        assert diagnosis.cause is CauseClass.DEGRADED_LINK
        assert diagnosis.culprit_link == "pcie-up0"


class TestManagedHostUnderChurn:
    def test_trace_replay_with_manager(self):
        """Tenants come and go (§3.2); the manager and fabric stay sane."""
        net = fresh_net()
        manager = HostNetworkManager(net, decision_latency=0.0)
        trace = TraceGenerator(seed=5).generate(
            tenant_count=4, horizon=2.0, mean_duration=0.5
        )

        def make_app(event):
            manager.register_tenant(event.tenant_id)
            if event.app_kind is AppKind.KV_STORE:
                return KvStoreApp(net, event.tenant_id, nic="nic0",
                                  dimm="dimm0-0",
                                  request_rate=20000 * event.intensity,
                                  seed=7)
            if event.app_kind is AppKind.ML_TRAINING:
                return MlTrainingApp(net, event.tenant_id, dimm="dimm0-0",
                                     gpu="gpu0")
            return RdmaLoopbackApp(net, event.tenant_id, nic="nic1",
                                   dimm="dimm1-0",
                                   offered_rate=Gbps(100 * event.intensity))

        replayer = TraceReplayer(net.engine, trace, make_app)
        replayer.arm()
        net.engine.run_until(trace.horizon + 0.1)
        # everything wound down cleanly
        assert replayer.active == {}
        app_flows = [f for f in net.active_flows()
                     if f.tenant_id != "_system"]
        assert app_flows == []

    def test_guarantee_survives_churn(self):
        net = fresh_net()
        manager = HostNetworkManager(net, decision_latency=0.0,
                                     arbiter_period=0.001)
        manager.submit(pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(100)))
        kv_path = shortest_path(net.topology, "nic0", "dimm0-0")
        victim = net.start_transfer("kv", kv_path, demand=Gbps(100))
        # churn: best-effort tenants arrive and leave repeatedly
        for i in range(5):
            tenant = f"churn{i}"
            manager.register_tenant(tenant)
            flows = [net.start_transfer(tenant, kv_path) for _ in range(4)]
            net.engine.run_until(net.engine.now + 0.02)
            assert victim.current_rate >= Gbps(100) * 0.98, (
                f"guarantee violated during wave {i}"
            )
            for flow in flows:
                net.cancel_flow(flow.flow_id)


class TestMigrationEndToEnd:
    def test_live_migration_preserves_victim_protection(self):
        source_net = fresh_net()
        destination_net = fresh_net()
        source = HostNetworkManager(source_net, decision_latency=0.0)
        destination = HostNetworkManager(destination_net,
                                         decision_latency=0.0)
        source.submit(pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                           bandwidth=Gbps(100)))
        result = migrate_tenant(source, destination, "kv")
        assert result.complete

        # protection is active on the destination
        destination.register_tenant("evil")
        path = shortest_path(destination_net.topology, "nic0", "dimm0-0")
        victim = destination_net.start_transfer("kv", path,
                                                demand=Gbps(100))
        for _ in range(8):
            destination_net.start_transfer("evil", path)
        destination_net.engine.run_until(0.05)
        assert victim.current_rate >= Gbps(100) * 0.98


class TestMonitoringCostVisibility:
    def test_shipped_telemetry_is_attributed_to_system(self):
        net = fresh_net()
        monitor = HostMonitor(net, probers=["nic0", "dimm0-0"],
                              processing="ship", telemetry_period=0.001)
        monitor.start()
        net.engine.run_until(0.2)
        overhead = monitor.monitoring_overhead_rate()
        assert overhead > 0
        # the overhead is real fabric traffic, attributed to _system
        assert net.tenant_link_bytes("_system", "pcie-nic0") > 0
