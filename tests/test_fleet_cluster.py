"""The Fleet facade: construction, lockstep clock, remapping, delegation."""

import pytest

from repro.errors import ClockError, FleetError, UnknownHostError
from repro.fleet import Fleet
from repro.core import pipe
from repro.topology import cascade_lake_2s, minimal_host
from repro.units import Gbps


def small_fleet(**kwargs):
    kwargs.setdefault("hosts", 3)
    return Fleet("cascade_lake_2s", **kwargs)


def kv(intent_id="kv", tenant="tA", bandwidth=Gbps(50)):
    return pipe(intent_id, tenant, src="nic0", dst="dimm0-0",
                bandwidth=bandwidth)


# -- construction ------------------------------------------------------------


def test_default_host_ids_and_len():
    fleet = small_fleet()
    assert fleet.host_ids() == ["host00", "host01", "host02"]
    assert len(fleet) == 3


def test_explicit_host_ids_are_sorted_into_deterministic_order():
    fleet = Fleet("minimal", host_ids=["zeta", "alpha"])
    assert fleet.host_ids() == ["alpha", "zeta"]


def test_rejects_shared_topology_instance():
    with pytest.raises(FleetError, match="factory"):
        Fleet(cascade_lake_2s(), hosts=2)


def test_accepts_topology_factory():
    fleet = Fleet(minimal_host, hosts=2)
    assert len(fleet) == 2
    a = fleet.host("host00").topology
    b = fleet.host("host01").topology
    assert a is not b  # each host got a fresh instance


def test_rejects_bad_quantum_and_duplicate_and_empty_ids():
    with pytest.raises(FleetError, match="clock_quantum"):
        Fleet("minimal", hosts=1, clock_quantum=0.0)
    with pytest.raises(FleetError, match="duplicate"):
        Fleet("minimal", host_ids=["a", "a"])
    with pytest.raises(FleetError, match="at least one"):
        Fleet("minimal", hosts=0)


def test_unknown_host_raises():
    fleet = small_fleet()
    with pytest.raises(UnknownHostError):
        fleet.host("nope")


# -- the fleet clock ---------------------------------------------------------


def test_run_until_advances_every_host_to_fleet_time():
    fleet = small_fleet(clock_quantum=0.001)
    with pytest.deprecated_call():
        fleet.run_until(0.0105)
    assert fleet.now == pytest.approx(0.0105)
    for _host_id, host in fleet.hosts():
        assert host.now == pytest.approx(0.0105)


def test_advance_to_rejects_going_backwards():
    fleet = small_fleet()
    fleet.advance_to(0.01)
    with pytest.raises(ClockError):
        fleet.advance_to(0.005)


def test_planner_controls_once_per_quantum_boundary():
    fleet = small_fleet(clock_quantum=0.002, clock="lockstep")
    boundaries = []
    original = fleet.planner.control
    fleet.planner.control = lambda: (boundaries.append(fleet.now),
                                     original())
    fleet.advance_to(0.01)
    assert len(boundaries) == 5  # 0.002, 0.004, ..., 0.010


def test_planner_tick_shim_warns_and_delegates():
    fleet = small_fleet()
    with pytest.deprecated_call():
        fleet.planner.tick()


def test_event_clock_leaves_idle_hosts_behind_until_woken():
    fleet = small_fleet(clock="event")
    fleet.advance_to(0.02)
    assert fleet.now == pytest.approx(0.02)
    # Hosts run periodic tasks (arbiter/monitor may be off in defaults),
    # but whatever their local clocks read, wake() must land them on
    # fleet time exactly.
    fleet.wake("host01")
    assert fleet.host("host01").now == pytest.approx(0.02)


def test_unknown_clock_name_rejected():
    with pytest.raises(FleetError, match="unknown fleet clock"):
        small_fleet(clock="metronome")


def test_telemetry_max_age_is_deprecated_and_ignored():
    with pytest.deprecated_call():
        fleet = small_fleet(telemetry_max_age=0.5)
    # Ignored: the rollup is push-invalidated, no staleness window kept.
    assert fleet.telemetry.max_age is None


# -- remapping ---------------------------------------------------------------


def test_remap_is_identity_on_homogeneous_fleet():
    fleet = small_fleet()
    intent = kv()
    assert fleet.remap_intent(intent, "host01") is intent


def test_canonical_device_key_vocabulary():
    fleet = small_fleet()
    assert fleet.canonical_device_key("nic0") == "nic:0"
    assert fleet.canonical_device_key("nic1") == "nic:1"
    assert fleet.canonical_device_key("dimm0-0") == "dimm:0"
    assert fleet.canonical_device_key("missing") is None


# -- delegation --------------------------------------------------------------


def test_submit_release_placements_roundtrip():
    fleet = small_fleet()
    placed = fleet.submit(kv())
    assert placed.intent_id == "kv"
    assert placed.tenant_id == "tA"
    assert [p.intent_id for p in fleet.placements()] == ["kv"]
    fleet.release("kv")
    assert fleet.placements() == []


def test_describe_names_every_host():
    fleet = small_fleet()
    fleet.submit(kv())
    text = fleet.describe()
    for host_id in fleet.host_ids():
        assert host_id in text
    assert "ClusterScheduler" in text and "FleetTelemetry" in text
    assert "Fleet(hosts=3" in repr(fleet)


def test_shutdown_stops_resilient_hosts():
    fleet = small_fleet(resilience=True)
    for _host_id, host in fleet.hosts():
        assert host.recovery is not None
    fleet.advance_to(0.01)
    fleet.shutdown()
