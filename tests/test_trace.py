"""The `repro.trace` subsystem: recorder, exporters, and profiler."""

from __future__ import annotations

import io
import json

import pytest

from repro.trace import (
    TRACER,
    TraceConfig,
    Tracer,
    category_totals,
    chrome_trace_dict,
    chrome_trace_events,
    flame_summary,
    profile,
    profile_spans,
    render_profile,
    start_tracing,
    stop_tracing,
    tracing,
    write_chrome_trace,
)
from repro.trace.spans import SpanRecord


# -- recorder ---------------------------------------------------------------


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer()
        tracer.begin("cat", "work")
        tracer.end()
        tracer.instant("cat", "evt")
        tracer.counter("cat", "track", 1.0)
        with tracer.span("cat", "more"):
            pass
        assert len(tracer) == 0
        assert not tracer.enabled

    def test_span_recording_and_nesting(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer_cat", "outer"):
            with tracer.span("inner_cat", "inner"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # completion order
        inner, outer = spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.duration >= inner.duration
        # Parent self-time excludes the child's duration.
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration
        )
        assert inner.self_time == pytest.approx(inner.duration)

    def test_begin_end_args_and_annotate(self):
        tracer = Tracer()
        tracer.enable()
        tracer.begin("solver", "solve", {"flows": 3})
        tracer.annotate(kind="full")
        tracer.end()
        (span,) = tracer.spans()
        assert span.args == {"flows": 3, "kind": "full"}

    def test_annotate_without_initial_args(self):
        tracer = Tracer()
        tracer.enable()
        tracer.begin("c", "n")
        tracer.annotate(outcome="ok")
        tracer.end()
        assert tracer.spans()[0].args == {"outcome": "ok"}

    def test_instants_and_counters(self):
        tracer = Tracer()
        tracer.enable()
        tracer.instant("network", "batch_flush", {"t": 1.0})
        tracer.counter("engine", "queue_depth", 17)
        (instant,) = tracer.instants()
        (sample,) = tracer.counters()
        assert instant.name == "batch_flush" and instant.args == {"t": 1.0}
        assert sample.track == "queue_depth" and sample.value == 17

    def test_ring_buffer_bound(self):
        tracer = Tracer(TraceConfig(capacity=8))
        tracer.enable()
        for i in range(20):
            tracer.counter("c", "t", i)
        assert len(tracer) == 8
        assert tracer.dropped_records == 12
        assert tracer.records_recorded == 20
        # Oldest evicted first: the ring holds the last 8 samples.
        assert [s.value for s in tracer.counters()] == list(range(12, 20))

    def test_category_filter(self):
        tracer = Tracer(TraceConfig(categories={"keep"}))
        tracer.enable()
        with tracer.span("keep", "a"):
            with tracer.span("drop", "b"):
                pass
        tracer.instant("drop", "x")
        tracer.counter("keep", "t", 1)
        assert {r.name for r in tracer.spans()} == {"a"}
        assert tracer.instants() == []
        assert len(tracer.counters()) == 1
        # Filtered spans still nest: the kept parent's self-time excludes
        # nothing (the dropped child's time stays attributed to it).
        (kept,) = tracer.spans()
        assert kept.self_time <= kept.duration

    def test_unbalanced_end_is_harmless(self):
        tracer = Tracer()
        tracer.enable()
        tracer.end()  # no open span
        assert len(tracer) == 0

    def test_clear_resets(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("c", "n"):
            pass
        tracer.clear()
        assert len(tracer) == 0 and tracer.records_recorded == 0

    def test_disable_abandons_open_spans(self):
        tracer = Tracer()
        tracer.enable()
        tracer.begin("c", "open")
        tracer.disable()
        tracer.enable()
        tracer.end()  # stack was cleared; this must not record garbage
        assert tracer.spans() == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(capacity=0)

    def test_repr(self):
        tracer = Tracer()
        assert "enabled=False" in repr(tracer)

    def test_categories_query(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a", "x"):
            pass
        tracer.counter("b", "t", 0)
        assert tracer.categories() == {"a", "b"}


class TestGlobalTracer:
    def test_start_stop_tracing(self):
        tracer = start_tracing()
        assert tracer is TRACER and TRACER.enabled
        stop_tracing()
        assert not TRACER.enabled

    def test_tracing_context_manager(self):
        with tracing() as tracer:
            assert tracer is TRACER and TRACER.enabled
            with tracer.span("c", "n"):
                pass
        assert not TRACER.enabled
        assert len(TRACER.spans()) == 1

    def test_tracing_reconfigures(self):
        with tracing(TraceConfig(capacity=4)) as tracer:
            assert tracer.config.capacity == 4


# -- export -----------------------------------------------------------------


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("engine", "dispatch", {"t": 0.5}):
        with tracer.span("solver", "solve"):
            pass
    tracer.instant("network", "coalesced_flush")
    tracer.counter("engine", "engine.queue_depth", 3)
    return tracer


class TestChromeExport:
    def test_event_structure(self):
        events = chrome_trace_events(_sample_tracer())
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 2  # process + thread names
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        assert phases.count("C") == 1
        complete = [e for e in events if e["ph"] == "X"]
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
            assert event["pid"] == 1 and event["tid"] == 1
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"value": 3}
        assert counter["name"] == "engine.queue_depth"

    def test_dict_and_json_roundtrip(self):
        payload = chrome_trace_dict(_sample_tracer())
        decoded = json.loads(json.dumps(payload))
        assert decoded["displayTimeUnit"] == "ms"
        assert len(decoded["traceEvents"]) == 6

    def test_write_to_file_object(self):
        buffer = io.StringIO()
        count = write_chrome_trace(_sample_tracer(), buffer)
        assert count == 6
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer(), str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestFlameSummary:
    def test_tree_rendering(self):
        text = flame_summary(_sample_tracer())
        assert "engine:dispatch" in text
        assert "solver:solve" in text
        # The child is indented under its parent.
        parent_line = next(line for line in text.splitlines()
                           if "engine:dispatch" in line)
        child_line = next(line for line in text.splitlines()
                          if "solver:solve" in line)
        parent_indent = len(parent_line) - len(parent_line.lstrip())
        child_indent = len(child_line) - len(child_line.lstrip())
        assert child_indent > parent_indent

    def test_empty(self):
        assert "no spans" in flame_summary(Tracer())


# -- profile ----------------------------------------------------------------


def _span(category, name, start, duration, self_time=None, depth=0):
    return SpanRecord(category=category, name=name, start=start,
                      duration=duration,
                      self_time=duration if self_time is None else self_time,
                      depth=depth)


class TestProfile:
    def test_aggregates(self):
        spans = [
            _span("solver", "solve", 0.0, 0.010),
            _span("solver", "solve", 0.1, 0.030),
            _span("engine", "dispatch", 0.2, 0.005, self_time=0.002),
        ]
        stats = profile_spans(spans)
        solve = stats[("solver", "solve")]
        assert solve.count == 2
        assert solve.total == pytest.approx(0.040)
        assert solve.mean == pytest.approx(0.020)
        assert solve.p50 == pytest.approx(0.020)
        assert solve.max == pytest.approx(0.030)
        dispatch = stats[("engine", "dispatch")]
        assert dispatch.self_total == pytest.approx(0.002)

    def test_profile_of_tracer_and_render(self):
        tracer = _sample_tracer()
        stats = profile(tracer)
        assert ("engine", "dispatch") in stats
        table = render_profile(stats)
        assert "engine:dispatch" in table and "p99" in table
        assert render_profile({}) == "(no spans recorded)"

    def test_category_totals_partition_time(self):
        tracer = _sample_tracer()
        totals = category_totals(tracer)
        spans = tracer.spans()
        assert sum(totals.values()) == pytest.approx(
            sum(s.self_time for s in spans)
        )
        # Self-times never exceed the root span's inclusive duration.
        root = max(spans, key=lambda s: s.duration)
        assert sum(totals.values()) <= root.duration * 1.0001
