"""The operator CLI: every subcommand runs and prints sensible output."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def run_cli_err(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_presets(capsys):
    code, out = run_cli(capsys, "presets")
    assert code == 0
    assert "cascade_lake_2s" in out
    assert "dgx_like" in out


def test_describe(capsys):
    code, out = run_cli(capsys, "describe")
    assert code == 0
    assert "HostTopology" in out


def test_describe_other_preset(capsys):
    code, out = run_cli(capsys, "--preset", "minimal", "describe")
    assert code == 0
    assert "minimal" in out


def test_ping(capsys):
    code, out = run_cli(capsys, "ping", "nic0", "dimm0-0", "--count", "3")
    assert code == 0
    assert "HOSTPING" in out
    assert "3 probes sent" in out


def test_ping_with_load(capsys):
    code, out = run_cli(capsys, "ping", "nic0", "dimm0-0", "--load")
    assert code == 0
    assert "HOSTPING" in out


def test_describe_tree(capsys):
    code, out = run_cli(capsys, "describe", "--tree")
    assert code == 0
    assert out.strip()


def test_trace(capsys):
    code, out = run_cli(capsys, "trace", "nic0", "dimm1-0")
    assert code == 0
    assert "HOSTTRACE" in out
    assert "hops" in out


@pytest.mark.parametrize("scenario", ["quickstart", "churn"])
def test_trace_scenario(capsys, tmp_path, scenario):
    out_path = tmp_path / f"trace-{scenario}.json"
    code, out = run_cli(capsys, "trace", scenario,
                        "--out", str(out_path), "--sim-seconds", "0.02")
    assert code == 0
    assert "ui.perfetto.dev" in out
    assert "categories:" in out
    # The written file is valid Perfetto/Chrome trace_event JSON with
    # spans from the required categories and at least one counter track.
    import json

    payload = json.loads(out_path.read_text())
    events = payload["traceEvents"]
    assert events
    span_cats = {e["cat"] for e in events if e["ph"] == "X"}
    assert {"engine", "solver", "arbiter", "monitor"} <= span_cats
    assert any(e["ph"] == "C" for e in events)


def test_trace_unknown_scenario(capsys):
    code, out, err = run_cli_err(capsys, "trace", "not-a-scenario")
    assert code == 2
    assert "neither" in err and "quickstart" in err


def test_perf(capsys):
    code, out = run_cli(capsys, "perf", "gpu0", "dimm0-0",
                        "--duration", "0.01")
    assert code == 0
    assert "HOSTPERF" in out
    assert "Gbps" in out


@pytest.mark.parametrize("failure", ["switch", "link-degrade", "link-down"])
def test_drill(capsys, failure):
    code, out = run_cli(capsys, "drill", "--failure", failure)
    assert code == 0
    assert "[injected]" in out
    assert "ANOMALOUS" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_unknown_preset_exits():
    with pytest.raises(SystemExit):
        main(["--preset", "bogus", "describe"])


def test_chaos_run(capsys):
    code, out = run_cli(capsys, "chaos", "run", "--seed", "3",
                        "--faults", "6", "--intents", "3")
    assert code == 0
    assert "PASSED" in out
    assert "seed=3" in out
    assert "re-placements" in out


def test_chaos_run_events_timeline(capsys):
    code, out = run_cli(capsys, "chaos", "run", "--seed", "1",
                        "--faults", "4", "--events")
    assert code == 0
    assert "inject" in out and "repair" in out


def test_chaos_run_rejects_bad_faults(capsys):
    code, out, err = run_cli_err(capsys, "chaos", "run", "--faults", "0")
    assert code == 2
    assert "--faults" in err


def test_chaos_run_rejects_bad_intents(capsys):
    code, out, err = run_cli_err(capsys, "chaos", "run", "--intents", "-1")
    assert code == 2
    assert "--intents" in err


def test_chaos_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["chaos"])


def test_fleet_describe(capsys):
    code, out = run_cli(capsys, "fleet", "describe", "--hosts", "2")
    assert code == 0
    assert "Fleet of 2 hosts" in out
    assert "host00" in out and "host01" in out
    assert "FleetTelemetry" in out


def test_fleet_run_seeded_churn(capsys):
    code, out = run_cli(capsys, "fleet", "run", "--hosts", "2",
                        "--seed", "5", "--horizon", "0.05",
                        "--arrival-rate", "800")
    assert code == 0
    assert "seed=5" in out
    assert "admitted" in out
    assert "ClusterScheduler(policy=best-fit)" in out


def test_fleet_run_policy_and_probe_flags(capsys):
    code, out = run_cli(capsys, "fleet", "run", "--hosts", "2",
                        "--policy", "spread", "--max-attempts", "1",
                        "--horizon", "0.05", "--arrival-rate", "800")
    assert code == 0
    assert "policy=spread" in out


def test_fleet_rejects_bad_hosts(capsys):
    code, out, err = run_cli_err(capsys, "fleet", "run", "--hosts", "0")
    assert code == 2
    assert "--hosts" in err


def test_fleet_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["fleet"])


def test_fleet_run_drain(capsys):
    code, out = run_cli(capsys, "fleet", "run", "--hosts", "2",
                        "--seed", "5", "--horizon", "0.05",
                        "--arrival-rate", "800", "--drain")
    assert code == 0
    assert "0 intents at end" in out or "intents at end" not in out


def test_fleet_replay_synthesized(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    code, out = run_cli(capsys, "fleet", "replay", "--hosts", "2",
                        "--policy", "best_fit", "--tasks", "60",
                        "--tenants", "8", "--horizon", "1.0",
                        "--report", str(report_path))
    assert code == 0
    assert "ClusterTrace" in out
    assert "policy=best-fit" in out  # underscore alias resolved
    assert "SLO" in out
    import json
    payload = json.loads(report_path.read_text())
    assert payload["schema"] == "repro.cluster-replay/v2"
    assert payload["counts"]["submitted"] == 60


def test_fleet_replay_compare(capsys):
    code, out = run_cli(capsys, "fleet", "replay", "--hosts", "2",
                        "--tasks", "40", "--tenants", "8",
                        "--horizon", "1.0", "--compare")
    assert code == 0
    assert "policy comparison" in out
    assert "first-fit" in out and "best-fit" in out and "spread" in out


def test_fleet_replay_ingests_fixture(capsys):
    from .test_cluster_traces import FIXTURE
    code, out = run_cli(capsys, "fleet", "replay", "--hosts", "2",
                        "--trace", FIXTURE, "--time-scale", "0.05")
    assert code == 0
    assert "alibaba_batch_task_sample" in out
    assert "33 tasks" in out


def test_fleet_replay_missing_trace_file(capsys):
    code, out, err = run_cli_err(capsys, "fleet", "replay",
                                 "--trace", "/nonexistent/trace.csv")
    assert code == 2
    assert "trace" in err.lower()


def test_fleet_replay_with_faults(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    code, out = run_cli(capsys, "fleet", "replay", "--hosts", "3",
                        "--tasks", "60", "--tenants", "8",
                        "--horizon", "1.0", "--faults", "3",
                        "--domains", "3", "--report", str(report_path))
    assert code == 0
    assert "fault schedule (seed=0): 3 events" in out
    assert "availability" in out
    import json
    payload = json.loads(report_path.read_text())
    assert payload["faults"]["schedule_events"] == 3
    assert 0.0 <= payload["availability"] <= 1.0


def test_fleet_replay_faults_need_two_hosts(capsys):
    code, out, err = run_cli_err(capsys, "fleet", "replay", "--hosts", "1",
                                 "--tasks", "10", "--faults", "2")
    assert code == 2
    assert "hosts" in err


def test_fleet_chaos(capsys, tmp_path):
    report_path = tmp_path / "outcome.json"
    code, out = run_cli(capsys, "fleet", "chaos", "--hosts", "4",
                        "--seed", "1", "--fault-rate", "20",
                        "--horizon", "0.2", "--domains", "2",
                        "--report", str(report_path))
    assert code == 0
    assert "fleet chaos (seed=1, hosts=4, clock=event): PASS" in out
    assert "oracle:" in out
    import json
    payload = json.loads(report_path.read_text())
    assert payload["passed"] is True
    assert payload["violations"] == []


def test_fleet_chaos_lockstep(capsys):
    code, out = run_cli(capsys, "fleet", "chaos", "--hosts", "4",
                        "--seed", "1", "--fault-rate", "20",
                        "--horizon", "0.2", "--clock", "lockstep")
    assert code == 0
    assert "clock=lockstep): PASS" in out


def test_fleet_chaos_rejects_bad_args(capsys):
    code, _out, err = run_cli_err(capsys, "fleet", "chaos",
                                  "--fault-rate", "0")
    assert code == 2 and "fault-rate" in err
    code, _out, err = run_cli_err(capsys, "fleet", "chaos",
                                  "--horizon", "-1")
    assert code == 2 and "horizon" in err
    code, _out, err = run_cli_err(capsys, "fleet", "chaos",
                                  "--hosts", "1")
    assert code == 2 and "hosts" in err
