"""Property tests over randomly generated (but valid) host topologies.

A hypothesis strategy assembles random commodity-server shapes with the
same conventions the presets use; every library invariant that should hold
for *any* valid host is then checked against them:

* validation passes;
* every endpoint pair is connected and routing finds simple paths;
* serialization round-trips;
* the renderer mentions every device;
* the simulator can carry a flow between random endpoints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FabricNetwork
from repro.topology import (
    LinkClass,
    TopologyBuilder,
    enumerate_paths,
    render_tree,
    shortest_path,
    topology_diff,
    topology_from_json,
    topology_to_json,
    validate_topology,
)
from repro.units import GBps, Gbps, ns, us


@st.composite
def random_hosts(draw):
    """A random valid host: 1-2 sockets, random device fan-out."""
    sockets = draw(st.integers(min_value=1, max_value=2))
    builder = TopologyBuilder("random")
    socket_ids = []
    for s in range(sockets):
        socket_id = builder.add_socket(s)
        socket_ids.append(socket_id)
        for d in range(draw(st.integers(min_value=1, max_value=2))):
            dimm = builder.add_dimm(s, device_id=f"dimm{s}-{d}")
            builder.connect(socket_id, dimm, LinkClass.INTRA_SOCKET,
                            GBps(draw(st.sampled_from([100, 131, 180]))),
                            ns(draw(st.sampled_from([50, 85, 100]))))
        rc_count = draw(st.integers(min_value=1, max_value=2))
        for r in range(rc_count):
            rc = builder.add_root_complex(s, device_id=f"rc{s}-{r}")
            builder.connect(socket_id, rc, LinkClass.INTRA_SOCKET,
                            GBps(150), ns(50))
            use_switch = draw(st.booleans())
            attach = rc
            if use_switch:
                switch = builder.add_pcie_switch(
                    s, device_id=f"sw{s}-{r}"
                )
                builder.connect(rc, switch, LinkClass.PCIE_UPSTREAM,
                                Gbps(256), ns(105))
                attach = switch
            for kind in draw(st.lists(
                st.sampled_from(["nic", "gpu", "nvme"]),
                min_size=1, max_size=3,
            )):
                if kind == "nic":
                    device = builder.add_nic(s)
                elif kind == "gpu":
                    device = builder.add_gpu(s)
                else:
                    device = builder.add_nvme(s)
                builder.connect(attach, device, LinkClass.PCIE_DOWNSTREAM,
                                Gbps(256), ns(70))
    if sockets == 2:
        for i in range(draw(st.integers(min_value=1, max_value=3))):
            builder.connect(socket_ids[0], socket_ids[1],
                            LinkClass.INTER_SOCKET, GBps(23.3), ns(140),
                            link_id=f"upi{i}")
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(topology=random_hosts())
def test_random_hosts_validate(topology):
    validate_topology(topology)
    assert topology.is_connected()


@settings(max_examples=30, deadline=None)
@given(topology=random_hosts(), data=st.data())
def test_random_hosts_routable(topology, data):
    endpoints = [d.device_id for d in topology.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    if src == dst:
        return
    path = shortest_path(topology, src, dst)
    assert path.src == src and path.dst == dst
    assert len(set(path.devices)) == len(path.devices)
    for candidate in enumerate_paths(topology, src, dst, max_paths=8):
        assert candidate.base_latency >= path.base_latency - 1e-15


@settings(max_examples=30, deadline=None)
@given(topology=random_hosts())
def test_random_hosts_serialize_roundtrip(topology):
    rebuilt = topology_from_json(topology_to_json(topology))
    assert topology_diff(topology, rebuilt) == []


@settings(max_examples=20, deadline=None)
@given(topology=random_hosts())
def test_random_hosts_render_complete(topology):
    text = render_tree(topology)
    for device in topology.devices():
        assert device.device_id in text


@settings(max_examples=20, deadline=None)
@given(topology=random_hosts(), data=st.data())
def test_random_hosts_carry_flows(topology, data):
    endpoints = [d.device_id for d in topology.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    if src == dst:
        return
    network = FabricNetwork(topology, Engine())
    path = shortest_path(topology, src, dst)
    flow = network.start_transfer("t", path, size=1e6)
    network.engine.run_until(1.0)
    assert flow.state.value == "completed"
    assert flow.bytes_sent == pytest.approx(1e6)
