"""Cluster scheduling: placement policies, probing, and telemetry rollups."""

import pytest

from repro.errors import AdmissionError, FleetError
from repro.fleet import (
    BestFitHeadroomPolicy,
    FirstFitPolicy,
    Fleet,
    SpreadByTenantPolicy,
    make_policy,
)
from repro.fleet.placement import PlacementRequest
from repro.fleet.telemetry import HostHeadroom
from repro.core import pipe
from repro.units import Gbps


def kv(intent_id, tenant="tA", bandwidth=Gbps(50), src="nic0",
       dst="dimm0-0"):
    return pipe(intent_id, tenant, src=src, dst=dst, bandwidth=bandwidth)


def headroom(host_id, free_total=100.0, free_max=50.0, free_min=50.0,
             healthy=True, down=0, attach_free=None):
    return HostHeadroom(
        host_id=host_id, updated_at=0.0,
        free_fraction_min=0.5, free_fraction_mean=0.5,
        free_capacity_total=free_total,
        free_capacity_max_directed=free_max,
        free_capacity_min_directed=free_min,
        reserved_peak=0.0, utilization_peak=0.0, placements=0,
        down_links=down, degraded_links=0, healthy=healthy,
        attach_free=attach_free or {},
    )


def request(bandwidth=10.0, src_key=None, dst_key=None, tenant_hosts=()):
    return PlacementRequest(
        intent=kv("i0", bandwidth=bandwidth),
        src_key=src_key, dst_key=dst_key,
        tenant_hosts=frozenset(tenant_hosts),
    )


# -- the policies, as pure ranking functions ---------------------------------


def test_first_fit_is_blind_stable_id_order():
    rooms = [headroom("b", free_total=999.0), headroom("a", free_total=1.0)]
    assert FirstFitPolicy().rank(request(), rooms) == ["a", "b"]


def test_best_fit_prefers_fullest_viable_host():
    rooms = [
        headroom("empty", free_total=300.0),
        headroom("busy", free_total=100.0),
        headroom("packed", free_total=20.0),
    ]
    order = BestFitHeadroomPolicy().rank(request(bandwidth=10.0), rooms)
    assert order == ["packed", "busy", "empty"]


def test_best_fit_sends_nonviable_hosts_to_the_back():
    rooms = [
        headroom("full", free_total=5.0, free_max=5.0),  # cannot fit
        headroom("open", free_total=200.0),
    ]
    order = BestFitHeadroomPolicy().rank(request(bandwidth=10.0), rooms)
    assert order == ["open", "full"]


def test_best_fit_prefers_hosts_with_path_slack():
    # Both can fit on some link, but "hot" has a congested shared link.
    rooms = [
        headroom("hot", free_total=50.0, free_min=2.0),
        headroom("calm", free_total=80.0, free_min=40.0),
    ]
    order = BestFitHeadroomPolicy().rank(request(bandwidth=10.0), rooms)
    assert order == ["calm", "hot"]


def test_best_fit_respects_attach_keys():
    # Plenty free overall, but this intent's source NIC is exhausted.
    rooms = [
        headroom("a", free_total=50.0,
                 attach_free={"nic:0": 1.0, "dimm:0": 100.0}),
        headroom("b", free_total=300.0,
                 attach_free={"nic:0": 100.0, "dimm:0": 100.0}),
    ]
    order = BestFitHeadroomPolicy().rank(
        request(bandwidth=10.0, src_key="nic:0", dst_key="dimm:0"), rooms
    )
    assert order == ["b", "a"]


def test_best_fit_demotes_unhealthy_hosts():
    rooms = [
        headroom("sick", free_total=10.0, healthy=False),
        headroom("ok", free_total=200.0),
    ]
    order = BestFitHeadroomPolicy().rank(request(bandwidth=1.0), rooms)
    assert order == ["ok", "sick"]


def test_spread_avoids_tenant_hosts_and_levels():
    rooms = [
        headroom("mine", free_total=300.0),
        headroom("other-full", free_total=10.0),
        headroom("other-empty", free_total=200.0),
    ]
    order = SpreadByTenantPolicy().rank(
        request(bandwidth=1.0, tenant_hosts={"mine"}), rooms
    )
    assert order == ["other-empty", "other-full", "mine"]


def test_make_policy_resolution():
    assert make_policy("first-fit").name == "first-fit"
    instance = BestFitHeadroomPolicy()
    assert make_policy(instance) is instance
    with pytest.raises(FleetError, match="unknown placement policy"):
        make_policy("worst-fit")


# -- scheduler bookkeeping ---------------------------------------------------


def test_submit_binds_and_release_unbinds():
    fleet = Fleet("cascade_lake_2s", hosts=2)
    fleet.submit(kv("a", tenant="t1"))
    fleet.submit(kv("b", tenant="t1", src="nic1"))
    sched = fleet.scheduler
    assert sched.has_intent("a") and sched.has_intent("b")
    assert sched.tenant_hosts("t1") != set()
    assert sched.admitted_count == 2
    host_a = sched.host_of("a")
    assert [p.intent_id for p in sched.placements_on(host_a)] >= ["a"]
    fleet.release("a")
    fleet.release("b")
    assert not sched.has_intent("a")
    assert sched.tenant_hosts("t1") == set()
    assert sched.released_count == 2


def test_duplicate_submit_and_unknown_release_raise():
    fleet = Fleet("cascade_lake_2s", hosts=2)
    fleet.submit(kv("a"))
    with pytest.raises(AdmissionError, match="already placed"):
        fleet.submit(kv("a"))
    with pytest.raises(AdmissionError, match="not placed"):
        fleet.release("ghost")


def test_fleet_wide_rejection_reports_policy_and_counts():
    fleet = Fleet("cascade_lake_2s", hosts=2)
    # nic0 attach budget is 230.4 Gbps per host; two 150G pipes fill both.
    fleet.submit(kv("a", bandwidth=Gbps(150)))
    fleet.submit(kv("b", bandwidth=Gbps(150)))
    with pytest.raises(AdmissionError, match="no host admitted"):
        fleet.submit(kv("c", bandwidth=Gbps(150)))
    assert fleet.try_submit(kv("d", bandwidth=Gbps(150))) is None
    assert fleet.scheduler.rejected_count == 2
    assert 0.0 < fleet.scheduler.rejection_rate < 1.0


def test_max_attempts_bounds_probing():
    bounded = Fleet("cascade_lake_2s", hosts=2, policy="first-fit",
                    max_attempts=1)
    bounded.submit(kv("a", bandwidth=Gbps(150)))
    # host00's nic0 is now tight; with one probe the fleet gives up even
    # though host01 would admit it.
    assert bounded.try_submit(kv("b", bandwidth=Gbps(150))) is None

    unbounded = Fleet("cascade_lake_2s", hosts=2, policy="first-fit")
    unbounded.submit(kv("a", bandwidth=Gbps(150)))
    placed = unbounded.submit(kv("b", bandwidth=Gbps(150)))
    assert placed.host_id == "host01"


# -- telemetry rollups -------------------------------------------------------


def test_headroom_attach_free_tracks_reservations():
    fleet = Fleet("cascade_lake_2s", hosts=1)
    before = fleet.telemetry.headroom("host00")
    assert before.attach_free["nic:0"] == pytest.approx(Gbps(230.4))
    fleet.submit(kv("a", bandwidth=Gbps(200)))
    after = fleet.telemetry.headroom("host00")
    assert after.attach_free["nic:0"] == pytest.approx(Gbps(30.4))
    assert after.can_fit(Gbps(100), src_key="nic:1")
    assert not after.can_fit(Gbps(100), src_key="nic:0")
    assert after.placements == 1


def test_headroom_cache_serves_until_invalidated():
    fleet = Fleet("cascade_lake_2s", hosts=1)
    fleet.telemetry.headroom("host00")
    count = fleet.telemetry.refresh_count
    fleet.telemetry.headroom("host00")
    assert fleet.telemetry.refresh_count == count  # served from cache
    fleet.telemetry.invalidate("host00")
    fleet.telemetry.headroom("host00")
    assert fleet.telemetry.refresh_count == count + 1


def test_headroom_cache_invalidated_by_reservation_change():
    fleet = Fleet("cascade_lake_2s", hosts=1)
    fleet.telemetry.headroom("host00")
    count = fleet.telemetry.refresh_count
    # Submit/release change the ledger; the manager's change listener
    # must dirty the summary without anyone calling invalidate().
    fleet.host("host00").manager.submit(kv("direct", bandwidth=Gbps(10)))
    after = fleet.telemetry.headroom("host00")
    assert fleet.telemetry.refresh_count == count + 1
    assert after.placements == 1


def test_down_link_marks_host_unavailable():
    from repro.monitor import FailureInjector

    fleet = Fleet("cascade_lake_2s", hosts=2)
    FailureInjector(fleet.host("host00").network).fail_link("pcie-nic0")
    fleet.telemetry.invalidate()
    rooms = {h.host_id: h for h in fleet.telemetry.headrooms()}
    assert rooms["host00"].down_links == 1
    assert not rooms["host00"].available
    assert rooms["host01"].available
