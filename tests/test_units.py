"""Unit-conversion helpers: the 8x bit/byte trap and formatting."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestTime:
    def test_ns_us_ms_chain(self):
        assert units.ns(1000) == pytest.approx(units.us(1))
        assert units.us(1000) == pytest.approx(units.ms(1))
        assert units.ms(1000) == pytest.approx(units.seconds(1))

    def test_roundtrip_to_ns(self):
        assert units.to_ns(units.ns(130)) == pytest.approx(130)

    def test_roundtrip_to_us(self):
        assert units.to_us(units.us(2)) == pytest.approx(2)

    def test_roundtrip_to_ms(self):
        assert units.to_ms(units.ms(7.5)) == pytest.approx(7.5)


class TestBandwidth:
    def test_gbps_is_bits(self):
        # 200 Gbps = 25 GB/s
        assert units.Gbps(200) == pytest.approx(25e9)

    def test_GBps_is_bytes(self):
        assert units.GBps(25) == pytest.approx(25e9)

    def test_gbps_GBps_factor_of_8(self):
        assert units.GBps(1) == pytest.approx(units.Gbps(8))

    def test_to_Gbps_roundtrip(self):
        assert units.to_Gbps(units.Gbps(256)) == pytest.approx(256)

    def test_to_GBps_roundtrip(self):
        assert units.to_GBps(units.GBps(23.3)) == pytest.approx(23.3)

    def test_mbps_kbps(self):
        assert units.Mbps(1000) == pytest.approx(units.Gbps(1))
        assert units.Kbps(1000) == pytest.approx(units.Mbps(1))

    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_gbps_roundtrip_property(self, value):
        assert units.to_Gbps(units.Gbps(value)) == pytest.approx(value)


class TestSizes:
    def test_kib_mib_gib(self):
        assert units.kib(1) == 1024
        assert units.mib(1) == 1024 ** 2
        assert units.gib(1) == 1024 ** 3


class TestFormatting:
    def test_format_time_ns(self):
        assert units.format_time(units.ns(130)) == "130.0ns"

    def test_format_time_us(self):
        assert units.format_time(units.us(2)) == "2.0us"

    def test_format_time_ms(self):
        assert "ms" in units.format_time(units.ms(5))

    def test_format_time_seconds(self):
        assert units.format_time(2.0) == "2.000s"

    def test_format_time_negative(self):
        assert units.format_time(-units.us(3)).startswith("-")

    def test_format_bandwidth(self):
        assert units.format_bandwidth(units.Gbps(200)) == "200.0Gbps"

    def test_format_bytes_scales(self):
        assert units.format_bytes(512) == "512B"
        assert "KiB" in units.format_bytes(units.kib(2))
        assert "MiB" in units.format_bytes(units.mib(3))
        assert "GiB" in units.format_bytes(units.gib(4))
