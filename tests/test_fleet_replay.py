"""Trace replay against the fleet: determinism, clocks, and policy gaps.

Three layers of the replay contract:

* **replay mechanics** — arrivals become intents, completions release on
  time, JCT ≥ duration with equality iff the task never waited, retries
  follow the deterministic backoff schedule;
* **cross-clock equivalence** — the event-driven and lockstep clocks
  produce *bit-identical* outcome reports (``outcome_json`` string
  equality) on the same trace;
* **the headline experiment** — on byte-identical synthesized load,
  best-fit's rejection rate beats first-fit's decisively, which is the
  paper's fleet-scale argument for headroom-aware placement.
"""

import json

import pytest

from repro.errors import WorkloadError
from repro.fleet import Fleet
from repro.units import Gbps
from repro.workloads.cluster_traces import (
    ClusterTask,
    ClusterTrace,
    PolicyComparison,
    ReplayConfig,
    SynthTraceConfig,
    compare_policies,
    replay_trace,
    synthesize_trace,
)
from repro.workloads.cluster_traces.replay import REPORT_VERSION, task_intent

from .test_cluster_traces import FIXTURE


def fresh_fleet(**kwargs):
    kwargs.setdefault("hosts", 4)
    kwargs.setdefault("policy", "best-fit")
    kwargs.setdefault("max_attempts", 8)
    return Fleet("cascade_lake_2s", **kwargs)


def replay(trace, config=None, **fleet_kwargs):
    fleet = fresh_fleet(**fleet_kwargs)
    try:
        return replay_trace(fleet, trace, config)
    finally:
        fleet.shutdown()


def tiny_trace(n=8, bandwidth=Gbps(10), spacing=0.1, duration=0.3):
    return ClusterTrace(
        tasks=[
            ClusterTask(f"task{i:02d}", f"job{i % 3}", f"ten{i % 2}",
                        arrival=i * spacing, duration=duration,
                        bandwidth=bandwidth)
            for i in range(n)
        ],
        name="tiny",
    )


# -- replay mechanics --------------------------------------------------------


def test_uncontended_replay_admits_everything_with_no_wait():
    report = replay(tiny_trace())
    assert report.submitted == 8
    assert report.admitted == 8
    assert report.rejected == 0
    assert report.retries == 0
    assert report.released == 8
    assert report.slo_attainment == 1.0
    # No contention: JCT == duration exactly, wait == 0.
    assert report.jcts == pytest.approx([0.3] * 8)
    assert report.waits == pytest.approx([0.0] * 8)


def test_jct_never_below_duration_under_contention():
    trace = synthesize_trace(SynthTraceConfig(seed=9, tasks=300,
                                              tenants=24, horizon=2.5))
    report = replay(trace, hosts=2)
    by_id = {t.task_id: t for t in trace}
    assert report.admitted > 0
    assert len(report.jcts) == report.admitted
    durations = sorted(t.duration for t in by_id.values())
    assert min(report.jcts) >= durations[0] - 1e-12
    for wait in report.waits:
        assert wait >= -1e-12


def test_retry_lands_tasks_a_no_retry_run_loses():
    trace = synthesize_trace(SynthTraceConfig(seed=9, tasks=300,
                                              tenants=24, horizon=2.5))
    with_retry = replay(trace, ReplayConfig(retry=True), hosts=2)
    without = replay(trace, ReplayConfig(retry=False), hosts=2)
    assert with_retry.retries > 0
    assert without.retries == 0
    # Every first-attempt bounce is final without retry.
    assert without.rejected == without.first_attempt_rejections
    assert with_retry.rejected < without.rejected
    # Retried admissions are the ones with nonzero wait.
    assert any(w > 0 for w in with_retry.waits)


def test_task_intent_endpoints_are_stable_and_in_vocabulary():
    sources = ["nic0", "nic1", "gpu0"]
    sinks = ["dimm0-0", "dimm1-0"]
    task = ClusterTask("j/t1", "j", "ten", arrival=0.0, duration=1.0,
                       bandwidth=Gbps(20), bidirectional=True)
    intent = task_intent(task, sources, sinks)
    assert intent == task_intent(task, sources, sinks)  # pure function
    assert intent.intent_id == "j/t1"
    assert intent.tenant_id == "ten"
    assert intent.bidirectional


def test_report_json_is_canonical_and_versioned():
    report = replay(tiny_trace())
    payload = json.loads(report.to_json())
    assert payload["schema"] == REPORT_VERSION
    assert payload["counts"]["admitted"] == 8
    assert payload["fleet"]["clock"] == "event"
    assert len(payload["trace"]["digest"]) == 64
    # outcome_json drops only the clock name.
    outcome = json.loads(report.outcome_json())
    assert "clock" not in outcome["fleet"]
    assert outcome["counts"] == payload["counts"]


def test_utilization_samples_cover_hosts_times_samples():
    config = ReplayConfig(samples=10)
    report = replay(tiny_trace(), config, hosts=3)
    assert len(report.utilization_samples) == 10 * 3
    assert all(0.0 <= u <= 1.0 for u in report.utilization_samples)


def test_replay_config_validation():
    with pytest.raises(WorkloadError, match="slo_stretch"):
        ReplayConfig(slo_stretch=0.5)
    with pytest.raises(WorkloadError, match="retry_backoff_fraction"):
        ReplayConfig(retry_backoff_fraction=0.0)
    with pytest.raises(WorkloadError, match="retry_backoff_growth"):
        ReplayConfig(retry_backoff_growth=0.9)
    with pytest.raises(WorkloadError, match="samples"):
        ReplayConfig(samples=-1)


# -- cross-clock equivalence -------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11])
def test_event_and_lockstep_replays_are_bit_identical(seed):
    trace = synthesize_trace(SynthTraceConfig(seed=seed, tasks=250,
                                              tenants=20, horizon=2.0))
    event = replay(trace, clock="event")
    lockstep = replay(trace, clock="lockstep")
    assert event.clock == "event"
    assert lockstep.clock == "lockstep"
    assert event.outcome_json() == lockstep.outcome_json()


def test_same_trace_same_report_byte_identical():
    trace = synthesize_trace(SynthTraceConfig(seed=4, tasks=200,
                                              tenants=16, horizon=2.0))
    assert replay(trace).to_json() == replay(trace).to_json()


# -- the fixture round trip --------------------------------------------------


def test_fixture_round_trips_ingest_normalize_replay():
    from repro.workloads.cluster_traces import IngestConfig, load_trace

    trace = load_trace(FIXTURE, IngestConfig(time_scale=0.05))
    report = replay(trace, hosts=4)
    assert report.submitted == len(trace) == 33
    assert report.admitted + report.rejected == report.submitted
    assert report.released == report.admitted  # all completions land
    # The digest ties the report to this exact normalized trace.
    import hashlib
    expected = hashlib.sha256(trace.to_json().encode()).hexdigest()
    assert report.trace_digest == expected


# -- the policy comparison ---------------------------------------------------


def test_best_fit_beats_first_fit_on_identical_load():
    """The headline fleet experiment, in-suite: headroom-aware packing
    admits decisively more of a contended trace than blind first-fit."""
    trace = synthesize_trace(SynthTraceConfig(seed=0, tasks=800,
                                              tenants=48, horizon=6.0))
    comparison = compare_policies(trace, ("first-fit", "best-fit"),
                                  hosts=8, max_attempts=2)
    first = comparison.reports["first-fit"]
    best = comparison.reports["best-fit"]
    assert first.trace_digest == best.trace_digest  # byte-identical load
    assert best.rejection_rate < first.rejection_rate / 2
    assert best.slo_attainment > first.slo_attainment
    table = comparison.describe()
    assert "first-fit" in table and "best-fit" in table


def test_comparison_rejects_mismatched_digests():
    a = replay(tiny_trace())
    b = replay(synthesize_trace(SynthTraceConfig(seed=1, tasks=20,
                                                 horizon=1.0)))
    with pytest.raises(WorkloadError, match="byte-identical"):
        PolicyComparison(trace_name="x", trace_digest=a.trace_digest,
                         reports={"best-fit": b})


def test_comparison_serializes_per_policy_reports():
    trace = tiny_trace()
    comparison = compare_policies(trace, ("first-fit", "spread"), hosts=2)
    payload = json.loads(comparison.to_json())
    assert sorted(payload["policies"]) == ["first-fit", "spread"]
    assert payload["trace"]["digest"] == comparison.trace_digest


# -- replay under failures (schema v2) --------------------------------------


def fault_schedule(hosts=4, seed=5, faults=4, horizon=2.0, domains=2):
    from repro.fleet import (
        FleetFaultConfig,
        FleetHealth,
        generate_fault_schedule,
    )

    health = FleetHealth([f"host{i:02d}" for i in range(hosts)],
                         domains=domains)
    return generate_fault_schedule(
        FleetFaultConfig(seed=seed, faults=faults, horizon=horizon), health)


def test_v2_report_carries_failure_counters():
    report = replay(tiny_trace())
    assert REPORT_VERSION.endswith("/v2")
    payload = json.loads(report.to_json())
    assert payload["counts"]["retries_exhausted"] == 0
    assert payload["counts"]["sessions_shed"] == 0
    assert payload["availability"] == 1.0
    assert payload["faults"] is None  # no schedule injected
    assert report.availability == 1.0


def test_faulted_replay_populates_fault_summary():
    trace = synthesize_trace(SynthTraceConfig(seed=4, tasks=200,
                                              tenants=12, horizon=1.0))
    schedule = fault_schedule(horizon=trace.horizon)
    fleet = fresh_fleet(failure_domains=2)
    try:
        report = replay_trace(fleet, trace, ReplayConfig(samples=4),
                              faults=schedule)
    finally:
        fleet.shutdown()
    assert report.fault_summary is not None
    assert report.fault_summary["schedule_events"] == len(schedule)
    assert report.fault_summary["injector"]["crashes"] >= 1
    assert 0.0 <= report.availability <= 1.0
    assert report.sessions_shed == report.fault_summary["recovery"]["shed"]
    payload = json.loads(report.to_json())
    assert payload["faults"]["schedule_seed"] == schedule.seed
    assert "availability" in report.describe()


@pytest.mark.parametrize("seed", range(4))
def test_faulted_replays_are_bit_identical_across_clocks(seed):
    trace = synthesize_trace(SynthTraceConfig(seed=seed, tasks=150,
                                              tenants=8, horizon=1.0))
    schedule = fault_schedule(seed=seed, horizon=trace.horizon)
    outcomes = []
    for clock in ("event", "lockstep"):
        fleet = fresh_fleet(clock=clock, failure_domains=2)
        try:
            report = replay_trace(fleet, trace, ReplayConfig(samples=4),
                                  faults=schedule)
        finally:
            fleet.shutdown()
        outcomes.append(report.outcome_json())
    assert outcomes[0] == outcomes[1]


def test_comparison_table_grows_failure_columns():
    trace = synthesize_trace(SynthTraceConfig(seed=2, tasks=120,
                                              tenants=8, horizon=1.0))
    schedule = fault_schedule(seed=2, horizon=trace.horizon)
    comparison = compare_policies(
        trace, ("first-fit", "best-fit"), hosts=4, max_attempts=8,
        config=ReplayConfig(samples=4), faults=schedule,
        failure_domains=2,
    )
    table = comparison.describe()
    assert "avail" in table and "shed" in table
    for report in comparison.reports.values():
        assert report.fault_summary is not None
