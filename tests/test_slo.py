"""``repro.slo``: histograms, burn rates, probes, and the closed loop.

The subsystem's three contracts, pinned here:

* **mergeability** — fixed-ladder histograms fold identically however
  samples are partitioned across processes (hypothesis property);
* **determinism** — the latency-regression scenario's full signature
  (alerts, migrations, ledgers, histograms) is bit-identical between
  the serial and parallel backends across 20 seeds, and across both
  fleet-clock disciplines;
* **the closed loop** — a seeded silent capacity degradation fires the
  fast-window burn-rate alert naming the offender, the fleet migrates
  its sessions away, and attainment recovers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core import pipe
from repro.errors import SloError
from repro.host import Host
from repro.slo import (
    BUCKET_COUNT,
    BurnRateTracker,
    FleetSloMonitor,
    LatencyHistogram,
    LatencyRegressionConfig,
    SloConfig,
    SloObjective,
    bucket_index,
    bucket_upper,
    merge_histograms,
    normalize_slo,
    run_latency_regression,
)
from repro.topology import cascade_lake_2s
from repro.units import Gbps, us

EQUIVALENCE_SEEDS = range(20)


def small_config(seed=0, **kwargs):
    kwargs.setdefault("hosts", 4)
    kwargs.setdefault("horizon", 0.08)
    kwargs.setdefault("arrival_rate", 1500.0)
    return LatencyRegressionConfig(seed=seed, **kwargs)


# -- histograms --------------------------------------------------------------


class TestHistogram:
    def test_bucket_contract(self):
        # Every positive finite value sits at or under its bucket's
        # upper edge; degenerate inputs clamp instead of raising.
        for value in (1e-10, 1e-9, 3.7e-6, 0.25, 17.0, 1e6):
            assert value <= bucket_upper(bucket_index(value))
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(float("inf")) == BUCKET_COUNT - 1

    def test_percentile_is_conservative(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(us(10))
        hist.record(us(5000))
        assert hist.total == 100
        assert hist.percentile(50) <= us(20)
        assert hist.percentile(100) >= us(5000)

    def test_count_above_excludes_bound_bucket(self):
        hist = LatencyHistogram()
        hist.record(us(100), n=10)
        hist.record(us(100) * 1000, n=3)
        assert hist.count_above(us(100)) == 3

    def test_empty_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(99)

    def test_merge_is_addition(self):
        a, b, whole = (LatencyHistogram() for _ in range(3))
        for v in (us(1), us(10), us(100)):
            a.record(v)
            whole.record(v)
        for v in (us(10), us(1000)):
            b.record(v)
            whole.record(v)
        a.merge(b)
        assert a == whole
        assert a.signature() == whole.signature()

    @settings(max_examples=100, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-9, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            max_size=60),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=4),
    )
    def test_sharded_fold_equals_single_process(self, samples, cuts):
        """The parallel-backend property: histograms folded shard-by-
        shard merge to exactly the single-process histogram, for every
        partition of the sample stream."""
        whole = LatencyHistogram()
        for v in samples:
            whole.record(v)
        bounds = sorted({min(c, len(samples)) for c in cuts})
        shards = []
        last = 0
        for cut in bounds + [len(samples)]:
            shard = LatencyHistogram()
            for v in samples[last:cut]:
                shard.record(v)
            shards.append({("t", "p"): shard})
            last = cut
        merged = merge_histograms(shards)
        if samples:
            assert merged[("t", "p")] == whole
        else:
            assert ("t", "p") not in merged or merged[("t", "p")] == whole


# -- objectives and burn rates -----------------------------------------------


class TestObjective:
    def test_windows_follow_the_sre_recipe(self):
        objective = SloObjective("o", us(200), period=14.4)
        fast, slow = objective.windows()
        assert fast.long == pytest.approx(0.02)
        assert fast.short == pytest.approx(0.02 / 12)
        assert fast.threshold == 36.0
        assert slow.long == pytest.approx(0.12)
        assert slow.threshold == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective("", us(100))
        with pytest.raises(ValueError):
            SloObjective("o", 0.0)
        with pytest.raises(ValueError):
            SloObjective("o", us(100), percentile=100.0)
        with pytest.raises(ValueError):
            SloObjective("o", us(100), period=0.0)

    def test_scope_matching(self):
        scoped = SloObjective("o", us(100), tenant="tA",
                              path="nic:0->dimm:0")
        assert scoped.matches("tA", "nic:0->dimm:0")
        assert not scoped.matches("tB", "nic:0->dimm:0")
        assert not scoped.matches("tA", "gpu:0->dimm:0")


class TestBurnRate:
    def objective(self):
        # period=14.4 -> fast window 20ms (short ~1.7ms), slow 120ms.
        return SloObjective("o", us(100), period=14.4)

    def test_empty_window_is_evidence_of_nothing(self):
        tracker = BurnRateTracker(self.objective())
        assert tracker.burn_rate(1.0, 0.02) is None
        assert tracker.check(1.0) == []

    def test_all_bad_stream_fires_fast(self):
        tracker = BurnRateTracker(self.objective())
        for i in range(20):
            tracker.record(i * 0.001, good=0, bad=5)
        fired = tracker.check(0.019)
        names = [w.name for w, _, _ in fired]
        assert "fast" in names
        for window, burn_long, burn_short in fired:
            # 100% bad on a 1% budget burns at 100x.
            assert burn_long == pytest.approx(100.0)
            assert burn_short == pytest.approx(100.0)

    def test_conjunction_requires_short_window_too(self):
        # Bad history, but the short confirmation window has recovered:
        # no alert (this is what makes alerts reset quickly).
        tracker = BurnRateTracker(self.objective())
        for i in range(18):
            tracker.record(i * 0.001, good=0, bad=5)
        for i in range(18, 20):
            tracker.record(i * 0.001, good=5, bad=0)
        fired = tracker.check(0.019)
        # The long fast window still burns hot, but the short
        # confirmation window reads healthy: the fast page stays quiet.
        assert tracker.burn_rate(0.019, 0.02) > 36.0
        assert not any(w.name == "fast" for w, _, _ in fired)

    def test_cooldown_suppresses_refire(self):
        tracker = BurnRateTracker(self.objective())
        for i in range(20):
            tracker.record(i * 0.001, good=0, bad=5)
        assert any(w.name == "fast" for w, _, _ in tracker.check(0.019))
        tracker.record(0.0195, good=0, bad=5)
        assert not any(w.name == "fast"
                       for w, _, _ in tracker.check(0.0198))

    def test_negative_counts_rejected(self):
        tracker = BurnRateTracker(self.objective())
        with pytest.raises(ValueError):
            tracker.record(0.0, good=-1, bad=0)


# -- config plumbing ---------------------------------------------------------


class TestConfig:
    def test_validation(self):
        with pytest.raises(SloError):
            SloConfig(probe_period=0.0)
        with pytest.raises(SloError):
            SloConfig(sample_stride=0)
        with pytest.raises(SloError):
            SloConfig(message_size=-1.0)
        with pytest.raises(SloError):
            SloConfig(objectives=(SloObjective("dup", us(1)),
                                  SloObjective("dup", us(2))))

    def test_normalize(self):
        assert normalize_slo(None) is None
        assert normalize_slo(False) is None
        assert normalize_slo(True).objectives[0].name == "p99-latency"
        config = SloConfig.default()
        assert normalize_slo(config) is config
        objective = SloObjective("mine", us(50))
        assert normalize_slo(objective).objectives == (objective,)
        with pytest.raises(SloError):
            normalize_slo(42)


# -- the fleet monitor -------------------------------------------------------


class TestFleetSloMonitor:
    def feed(self, monitor, t0, host, count, value, period=0.001):
        monitor.ingest((t0 + i * period, host, "tA", "nic:0->dimm:0",
                        value) for i in range(count))

    def test_arrival_order_does_not_matter(self):
        objective = SloObjective("o", us(100))
        samples = [(i * 0.001, f"host{i % 2}", "tA", "p", us(10 + i))
                   for i in range(40)]
        forward, backward = (FleetSloMonitor([objective])
                             for _ in range(2))
        forward.ingest(samples)
        backward.ingest(reversed(samples))
        forward.evaluate(0.05)
        backward.evaluate(0.05)
        assert forward.signature() == backward.signature()

    def test_alert_names_the_burning_host(self):
        monitor = FleetSloMonitor([SloObjective("o", us(100),
                                                period=14.4)])
        self.feed(monitor, 0.0, "good-host", 30, us(10))
        self.feed(monitor, 0.0, "bad-host", 30, us(10_000))
        alerts = monitor.evaluate(0.03)
        assert alerts
        assert {a.host_id for a in alerts} == {"bad-host"}
        assert monitor.alerts == alerts

    def test_latency_anomalies_surface(self):
        monitor = FleetSloMonitor([SloObjective("o", us(100))])
        self.feed(monitor, 0.0, "h", 10, us(10))
        self.feed(monitor, 0.01, "h", 10, us(50_000))
        monitor.evaluate(0.03)
        assert monitor.anomalies
        assert all(a.metric.startswith("latency.")
                   for a in monitor.anomalies)

    def test_attainment_and_achieved(self):
        objective = SloObjective("o", us(100))
        monitor = FleetSloMonitor([objective])
        assert monitor.attainment(objective) is None
        assert monitor.achieved(objective) is None
        self.feed(monitor, 0.0, "h", 99, us(10))
        self.feed(monitor, 0.1, "h", 1, us(100_000))
        monitor.evaluate(0.2)
        assert monitor.attainment(objective) == pytest.approx(0.99)
        assert monitor.achieved(objective) <= us(100)

    def test_host_clear_needs_positive_evidence(self):
        objective = SloObjective("o", us(100), period=14.4)
        monitor = FleetSloMonitor([objective])
        # Never sampled: nothing to clear on.
        assert not monitor.host_clear("ghost", 0.01)
        # Currently burning: not clear.
        self.feed(monitor, 0.0, "h", 30, us(10_000))
        monitor.evaluate(0.03)
        assert not monitor.host_clear("h", 0.03)
        # Healthy samples inside the fast window: clear.
        self.feed(monitor, 0.1, "h", 30, us(10))
        monitor.evaluate(0.13)
        assert monitor.host_clear("h", 0.13)
        # Silence (evacuated host, empty window): NOT clear.
        assert not monitor.host_clear("h", 1.0)


# -- host-local probe and sink -----------------------------------------------


class TestHostProbe:
    def test_probe_samples_and_histograms(self):
        host = Host(cascade_lake_2s(),
                    slo=SloConfig(probe_period=0.001))
        try:
            host.submit(pipe("i0", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50)))
            host.run_until(0.02)
            delta = host.slo_probe.take_delta()
            assert delta
            times = [t for t, _, _, _ in delta]
            assert times == sorted(times)
            assert host.slo_probe.take_delta() == []  # drained
            assert host.slo_probe.histograms()
        finally:
            host.shutdown()

    def test_probe_grid_is_exact(self):
        """Probe fires sit on the exact epoch + k*period grid — no
        floating-point drift — so a tick coinciding with a fleet
        advance boundary runs under every clock discipline."""
        host = Host(cascade_lake_2s(),
                    slo=SloConfig(probe_period=0.002))
        try:
            host.submit(pipe("i0", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50)))
            host.run_until(0.1)
            times = {t for t, _, _, _ in host.slo_probe.take_delta()}
            assert 20 * 0.002 in times  # == 0.04 bit-exactly
            assert all(t == k * 0.002 for k, t in
                       enumerate(sorted(times), start=1))
        finally:
            host.shutdown()

    def test_local_alert_feeds_recovery(self):
        # An unmeetable bound: every sample burns budget, the fast
        # window fires locally, and the recovery controller reacts.
        config = SloConfig(
            objectives=(SloObjective("tight", 1e-9, period=14.4),),
            probe_period=0.001)
        host = Host(cascade_lake_2s(), resilience=True, slo=config)
        try:
            host.submit(pipe("i0", "tA", src="nic0", dst="dimm0-0",
                             bandwidth=Gbps(50)))
            host.run_until(0.1)
            latency_actions = host.recovery.actions_of("latency")
            assert latency_actions
            assert "tight" in latency_actions[0].detail
        finally:
            host.shutdown()

    def test_double_start_rejected_and_stop_idempotent(self):
        host = Host(cascade_lake_2s(), slo=True)
        try:
            with pytest.raises(SloError):
                host.slo_probe.start()
            host.slo_probe.stop()
            host.slo_probe.stop()
        finally:
            host.shutdown()


# -- the closed loop ---------------------------------------------------------


class TestClosedLoop:
    def test_regression_alerts_then_migrates_then_recovers(self):
        report = run_latency_regression(small_config(seed=0))
        config = report.config
        # The alert fired, after the degrade, naming the target host.
        assert report.alerts
        assert report.first_alert_time > config.degrade_at
        assert all(a.host_id == report.target_host
                   for a in report.alerts)
        # The fleet moved sessions off the offender.
        committed = [m for m in report.slo_migrations if m[4]]
        assert committed
        assert all(m[2] == report.target_host
                   for m in report.slo_migrations)
        assert report.first_migration_time > report.first_alert_time
        # Attainment collapsed during the regression and recovered.
        assert report.attainment_before == pytest.approx(1.0)
        assert report.attainment_during < report.attainment_before
        assert report.attainment_after > report.attainment_during
        assert report.samples > 0

    def test_no_degradation_no_alerts(self):
        report = run_latency_regression(
            small_config(seed=0, degrade_factor=1.0))
        assert report.alerts == ()
        assert report.slo_migrations == ()
        assert report.attainment_before == pytest.approx(1.0)

    def test_bad_config_rejected(self):
        with pytest.raises(SloError):
            LatencyRegressionConfig(degrade_at=1.0, horizon=0.5)
        with pytest.raises(SloError):
            LatencyRegressionConfig(degrade_at=0.05, restore_at=0.01)


# -- cross-backend / cross-clock determinism ---------------------------------


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_parallel_regression_matches_serial_exactly(seed):
    """Histograms, burn-rate alerts, migrations, and ledgers are
    bit-identical when host simulations shard across workers."""
    serial = run_latency_regression(small_config(seed))
    parallel = run_latency_regression(small_config(seed), parallel=2)
    assert serial.signature() == parallel.signature()


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_lockstep_regression_matches_event_exactly(seed):
    """The exact probe grid keeps both clock disciplines bit-equal even
    when a probe tick coincides with a control instant."""
    event = run_latency_regression(small_config(seed), clock="event")
    lockstep = run_latency_regression(small_config(seed),
                                      clock="lockstep")
    assert event.signature() == lockstep.signature()


# -- CLI ---------------------------------------------------------------------


class TestCli:
    def test_fleet_slo(self, capsys):
        code = cli_main(["fleet", "slo", "--horizon", "0.08",
                         "--arrival-rate", "1500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "latency regression on" in out
        assert "alerts:" in out
        assert "slo migrations:" in out
        assert "attainment:" in out

    def test_fleet_slo_parallel_lockstep(self, capsys):
        code = cli_main(["fleet", "slo", "--horizon", "0.08",
                         "--arrival-rate", "1500", "--parallel", "2",
                         "--clock", "lockstep"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo migrations:" in out

    def test_fleet_slo_rejects_bad_args(self, capsys):
        code = cli_main(["fleet", "slo", "--degrade-at", "9.0"])
        err = capsys.readouterr().err
        assert code == 2
        assert "degrade_at" in err

    def test_fleet_replay_slo(self, capsys):
        code = cli_main(["fleet", "replay", "--tasks", "200",
                         "--horizon", "1.5", "--slo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo: 1 objectives" in out
        assert "p99-latency" in out

    def test_fleet_replay_slo_compare_rejected(self, capsys):
        code = cli_main(["fleet", "replay", "--tasks", "50", "--slo",
                         "--compare"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--compare" in err
