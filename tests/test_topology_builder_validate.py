"""TopologyBuilder conventions and structural validation."""

import pytest

from repro.errors import InvalidTopologyError
from repro.topology import (
    DeviceType,
    LinkClass,
    TopologyBuilder,
    validation_errors,
)
from repro.topology.validate import validate_topology
from repro.units import GBps, Gbps, ns, us


def build_valid():
    b = TopologyBuilder("t")
    s0 = b.add_socket(0)
    dimm = b.add_dimm(0)
    rc = b.add_root_complex(0)
    nic = b.add_nic(0)
    b.connect(s0, dimm, LinkClass.INTRA_SOCKET, GBps(131), ns(85))
    b.connect(s0, rc, LinkClass.INTRA_SOCKET, GBps(150), ns(50))
    b.connect(rc, nic, LinkClass.PCIE_DOWNSTREAM, Gbps(256), ns(70))
    ext = b.add_external()
    b.connect(nic, ext, LinkClass.INTER_HOST, Gbps(200), us(1.2))
    return b


class TestBuilder:
    def test_build_valid(self):
        topo = build_valid().build()
        assert len(topo) == 5

    def test_auto_ids_unique(self):
        b = TopologyBuilder()
        first = b.add_nic(0)
        second = b.add_nic(0)
        assert first != second

    def test_socket_default_id(self):
        b = TopologyBuilder()
        assert b.add_socket(1) == "socket1"

    def test_attrs_stored(self):
        b = build_valid()
        gpu = b.add_device(DeviceType.GPU, socket=0, model="A100")
        rc = "pcie-root-complex0"
        b.connect(rc, gpu, LinkClass.PCIE_DOWNSTREAM, Gbps(256), ns(70))
        topo = b.build()
        assert topo.device(gpu).attrs["model"] == "A100"

    def test_build_without_validation_allows_orphan(self):
        b = TopologyBuilder()
        b.add_socket(0)
        topo = b.build(validate=False)
        assert len(topo) == 1


class TestValidation:
    def test_empty_topology_invalid(self):
        b = TopologyBuilder()
        with pytest.raises(InvalidTopologyError):
            b.build()

    def test_orphan_device_invalid(self):
        b = build_valid()
        b.add_gpu(0)  # never connected
        with pytest.raises(InvalidTopologyError, match="no links"):
            b.build()

    def test_wrong_link_class_invalid(self):
        b = build_valid()
        gpu = b.add_gpu(0)
        # inter-socket class between a socket and a GPU is nonsense
        b.connect("socket0", gpu, LinkClass.INTER_SOCKET, GBps(23), ns(140))
        problems = validation_errors(b.build(validate=False))
        assert any("may not join" in p for p in problems)

    def test_inter_socket_same_socket_invalid(self):
        b = TopologyBuilder()
        b.add_socket(0)
        b.add_socket(0, device_id="socket0b")
        b.connect("socket0", "socket0b", LinkClass.INTER_SOCKET,
                  GBps(23), ns(140))
        problems = validation_errors(b.build(validate=False))
        assert any("same socket" in p for p in problems)

    def test_external_without_interhost_link_invalid(self):
        b = TopologyBuilder()
        s0 = b.add_socket(0)
        dimm = b.add_dimm(0)
        b.connect(s0, dimm, LinkClass.INTRA_SOCKET, GBps(131), ns(85))
        ext = b.add_external()
        # connect external incorrectly so it's not orphaned but also not
        # via an inter-host link: there is no legal class, so leave it
        # orphaned and expect both problems to be reported.
        problems = validation_errors(b.build(validate=False))
        assert any("inter-host" in p for p in problems)

    def test_disconnected_invalid(self):
        b = TopologyBuilder()
        s0 = b.add_socket(0)
        d0 = b.add_dimm(0)
        b.connect(s0, d0, LinkClass.INTRA_SOCKET, GBps(131), ns(85))
        s1 = b.add_socket(1)
        d1 = b.add_dimm(1)
        b.connect(s1, d1, LinkClass.INTRA_SOCKET, GBps(131), ns(85))
        problems = validation_errors(b.build(validate=False))
        assert any("not connected" in p for p in problems)

    def test_validate_topology_ok(self):
        validate_topology(build_valid().build(validate=False))
