"""Topology serialization: dict/JSON round trips and structural diff."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    PRESETS,
    load_preset,
    topology_diff,
    topology_from_dict,
    topology_from_json,
    topology_to_dict,
    topology_to_json,
    validate_topology,
)
from repro.units import Gbps, ns


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_roundtrip_every_preset(name):
    original = load_preset(name)
    rebuilt = topology_from_json(topology_to_json(original))
    assert topology_diff(original, rebuilt) == []
    validate_topology(rebuilt)
    assert rebuilt.name == original.name


def test_roundtrip_preserves_failure_state():
    topo = load_preset("minimal")
    topo.link("pcie-nic0").degraded_capacity = Gbps(10)
    topo.link("pcie-nic0").extra_latency = ns(500)
    topo.link("eth0").up = False
    rebuilt = topology_from_dict(topology_to_dict(topo))
    link = rebuilt.link("pcie-nic0")
    assert link.degraded_capacity == pytest.approx(Gbps(10))
    assert link.extra_latency == pytest.approx(ns(500))
    assert not rebuilt.link("eth0").up


def test_attrs_preserved():
    topo = load_preset("minimal")
    payload = topology_to_dict(topo)
    payload["devices"][0]["attrs"] = {"model": "test"}
    rebuilt = topology_from_dict(payload)
    device_id = payload["devices"][0]["device_id"]
    assert rebuilt.device(device_id).attrs == {"model": "test"}


def test_wrong_version_rejected():
    payload = topology_to_dict(load_preset("minimal"))
    payload["format_version"] = 999
    with pytest.raises(TopologyError, match="version"):
        topology_from_dict(payload)


def test_malformed_payload_rejected():
    payload = topology_to_dict(load_preset("minimal"))
    del payload["links"][0]["capacity"]
    with pytest.raises(TopologyError, match="malformed"):
        topology_from_dict(payload)


def test_invalid_json_rejected():
    with pytest.raises(TopologyError, match="invalid"):
        topology_from_json("{nope")


class TestDiff:
    def test_identical_is_empty(self):
        a = load_preset("cascade_lake_2s")
        assert topology_diff(a, a.copy()) == []

    def test_parameter_change_reported(self):
        a = load_preset("minimal")
        b = a.copy()
        b.link("pcie-nic0").up = False
        changes = topology_diff(a, b)
        assert changes == ["~ link pcie-nic0.up: True -> False"]

    def test_removed_link_reported(self):
        a = load_preset("minimal")
        b = a.copy()
        b.remove_link("eth0")
        assert "- link eth0" in topology_diff(a, b)

    def test_added_device_reported(self):
        from repro.topology import Device, DeviceType

        a = load_preset("minimal")
        b = a.copy()
        b.add_device(Device("gpu9", DeviceType.GPU, socket=0))
        assert "+ device gpu9" in topology_diff(a, b)


@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(sorted(PRESETS)))
def test_double_roundtrip_stable_property(name):
    once = topology_to_json(load_preset(name))
    twice = topology_to_json(topology_from_json(once))
    assert once == twice
