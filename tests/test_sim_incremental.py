"""Incremental solver: equivalence, batching, coalescing, facade."""

import math
import random

import pytest

from repro import Host
from repro.sim import Engine, FabricNetwork, IncrementalMaxMinSolver
from repro.sim.bandwidth import (
    Constraint,
    FlowDemand,
    link_utilizations,
    max_min_fair_rates,
)
from repro.topology import cascade_lake_2s, minimal_host, shortest_path
from repro.units import Gbps


def path_of(net, src, dst):
    return shortest_path(net.topology, src, dst)


def assert_rates_close(incremental, reference, context=""):
    assert set(incremental) == set(reference), context
    for fid, want in reference.items():
        got = incremental[fid]
        assert abs(got - want) <= 1e-6 * max(1.0, abs(want)), (
            f"{context}: flow {fid}: incremental={got!r} scratch={want!r}"
        )


# ---------------------------------------------------------------------------
# Property test: incremental == from-scratch over random mutation sequences.
# ---------------------------------------------------------------------------


class _MirrorDriver:
    """Applies one random mutation stream to the incremental solver while
    mirroring the problem in plain dicts for the stateless reference."""

    LINKS = [f"l{i}|{d}" for i in range(12) for d in ("fwd", "rev")]
    CAP_IDS = ["cap0", "cap1", "cap2"]

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.solver = IncrementalMaxMinSolver()
        self.capacities = {}
        self.flows = {}       # insertion-ordered, mirrors solver order
        self.virtual = {}
        self.next_flow = 0
        for link_id in self.LINKS:
            cap = Gbps(self.rng.uniform(10, 400))
            self.capacities[link_id] = cap
            self.solver.set_capacity(link_id, cap)

    def add_flow(self):
        fid = f"f{self.next_flow}"
        self.next_flow += 1
        links = tuple(self.rng.choice(self.LINKS)
                      for _ in range(self.rng.randint(1, 4)))
        demand = (math.inf if self.rng.random() < 0.25
                  else Gbps(self.rng.uniform(0.5, 200)))
        weight = self.rng.choice([1.0, 1.0, 2.0, 0.5])
        flow = FlowDemand(fid, links, demand=demand, weight=weight)
        self.flows[fid] = flow
        self.solver.set_flow(flow)

    def remove_flow(self):
        if not self.flows:
            return
        fid = self.rng.choice(list(self.flows))
        del self.flows[fid]
        self.solver.remove_flow(fid)

    def reshape_flow(self):
        """Replace an existing flow (same id, possibly new links)."""
        if not self.flows:
            return
        fid = self.rng.choice(list(self.flows))
        links = tuple(self.rng.choice(self.LINKS)
                      for _ in range(self.rng.randint(1, 4)))
        flow = FlowDemand(fid, links,
                          demand=Gbps(self.rng.uniform(0.5, 200)),
                          weight=self.rng.choice([1.0, 2.0, 0.5]))
        self.flows[fid] = flow
        self.solver.set_flow(flow)

    def retune_flow(self):
        if not self.flows:
            return
        fid = self.rng.choice(list(self.flows))
        demand = Gbps(self.rng.uniform(0.5, 200))
        current = self.flows[fid]
        self.flows[fid] = FlowDemand(fid, current.links, demand=demand,
                                     weight=current.weight)
        self.solver.set_flow_params(fid, demand=demand)

    def resize_link(self):
        link_id = self.rng.choice(self.LINKS)
        cap = Gbps(self.rng.uniform(10, 400))
        self.capacities[link_id] = cap
        self.solver.set_capacity(link_id, cap)

    def set_cap(self):
        cid = self.rng.choice(self.CAP_IDS)
        pool = list(self.flows) or [f"f{self.next_flow}"]  # future flow ok
        members = frozenset(self.rng.sample(pool,
                                            self.rng.randint(1, len(pool))))
        constraint = Constraint(cid, Gbps(self.rng.uniform(1, 100)), members)
        self.virtual[cid] = constraint
        self.solver.set_constraint(constraint)

    def clear_cap(self):
        if not self.virtual:
            return
        cid = self.rng.choice(list(self.virtual))
        del self.virtual[cid]
        self.solver.remove_constraint(cid)

    def mutate(self):
        op = self.rng.choices(
            [self.add_flow, self.remove_flow, self.reshape_flow,
             self.retune_flow, self.resize_link, self.set_cap,
             self.clear_cap],
            weights=[5, 2, 2, 3, 2, 1, 1],
        )[0]
        op()

    def check(self, context):
        reference = max_min_fair_rates(
            list(self.flows.values()), self.capacities,
            list(self.virtual.values()),
        )
        assert_rates_close(self.solver.solve(), reference, context)


@pytest.mark.parametrize("seed", range(220))
def test_incremental_matches_from_scratch(seed):
    driver = _MirrorDriver(seed)
    for _ in range(driver.rng.randint(3, 8)):
        driver.add_flow()
    driver.check(f"seed={seed} initial")
    for step in range(driver.rng.randint(8, 25)):
        driver.mutate()
        if driver.rng.random() < 0.4:
            driver.check(f"seed={seed} step={step}")
    driver.check(f"seed={seed} final")
    # The whole point: at least one solve after warm-up reused cached work.
    stats = driver.solver.stats
    assert stats.full_solves == 1
    assert stats.incremental_solves + stats.noop_solves >= 1


def test_incremental_solver_reuses_untouched_components():
    solver = IncrementalMaxMinSolver()
    for g in range(4):
        solver.set_capacity(f"g{g}|fwd", Gbps(100))
        for i in range(3):
            solver.set_flow(FlowDemand(f"g{g}-f{i}", (f"g{g}|fwd",),
                                       demand=Gbps(80)))
    solver.solve()
    solver.stats.reset()
    solver.set_flow_params("g0-f0", demand=Gbps(10))
    solver.solve()
    assert solver.stats.incremental_solves == 1
    assert solver.stats.component_solves == 1
    assert solver.stats.flows_resolved == 3    # only group 0
    assert solver.stats.flows_reused == 9      # groups 1..3 cached
    # And a clean solve is free.
    solver.solve()
    assert solver.stats.noop_solves == 1


def test_wrapper_delegates_to_solve_once():
    flows = [FlowDemand("a", ("x|fwd",), demand=Gbps(10)),
             FlowDemand("b", ("x|fwd", "y|fwd"))]
    capacities = {"x|fwd": Gbps(16), "y|fwd": Gbps(4)}
    assert max_min_fair_rates(flows, capacities) == (
        IncrementalMaxMinSolver.solve_once(flows, capacities)
    )


# ---------------------------------------------------------------------------
# Batching: k mutations inside network.batch() -> exactly one solve.
# ---------------------------------------------------------------------------


class TestBatching:
    def test_batch_of_adds_solves_once(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        before_solves = net.solver_stats.solve_calls
        before_recomputes = net.recompute_count
        with net.batch():
            for _ in range(7):
                net.start_transfer("t", p)
        assert net.solver_stats.solve_calls == before_solves + 1
        assert net.recompute_count == before_recomputes + 1
        assert len(net.active_flows()) == 7

    def test_batch_mixed_mutations_solve_once(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        flows = [net.start_transfer("t", p) for _ in range(3)]
        before = net.recompute_count
        with net.batch():
            net.cancel_flow(flows[0].flow_id)
            net.set_tenant_link_cap("t", p.links[0], Gbps(5))
            net.set_tenant_weight("t", 2.0)
            net.start_transfer("u", p)
        assert net.recompute_count == before + 1

    def test_batch_is_nestable(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        before = net.recompute_count
        with net.batch():
            net.start_transfer("t", p)
            with net.batch():
                net.start_transfer("t", p)
            # inner exit must not solve while the outer batch is open
            assert net.recompute_count == before
        assert net.recompute_count == before + 1

    def test_empty_batch_costs_nothing(self, minimal_net):
        net = minimal_net
        before = net.recompute_count
        with net.batch():
            pass
        assert net.recompute_count == before

    def test_batched_rates_match_unbatched(self):
        def run(batched):
            net = FabricNetwork(minimal_host(), Engine())
            p = shortest_path(net.topology, "nic0", "dimm0-0")
            if batched:
                with net.batch():
                    for i in range(5):
                        net.start_transfer("t", p, demand=Gbps(10 * (i + 1)),
                                           flow_id=f"f{i}")
            else:
                for i in range(5):
                    net.start_transfer("t", p, demand=Gbps(10 * (i + 1)),
                                       flow_id=f"f{i}")
            return {f.flow_id: f.current_rate for f in net.active_flows()}

        assert run(batched=True) == run(batched=False)


# ---------------------------------------------------------------------------
# Coalescing: N same-instant events -> one engine-timestamp-deferred solve.
# ---------------------------------------------------------------------------


class TestCoalescing:
    def _coalescing_net(self):
        engine = Engine()
        return FabricNetwork(minimal_host(), engine,
                             coalesce_recompute=True), engine

    def test_same_instant_events_cost_one_solve(self):
        net, engine = self._coalescing_net()
        p = path_of(net, "nic0", "dimm0-0")
        for _ in range(6):
            engine.schedule_at(0.1, lambda: net.start_transfer("t", p))
        engine.run_until(0.2)
        assert len(net.active_flows()) == 6
        assert net.recompute_count == 1

    def test_rate_query_flushes_pending_solve(self):
        net, engine = self._coalescing_net()
        p = path_of(net, "nic0", "dimm0-0")
        flow = net.start_transfer("t", p)
        # The solve is deferred, but observing a rate must not see stale 0s.
        assert net.link_rate(p.links[0]) > 0
        assert flow.current_rate > 0
        assert net.recompute_count == 1
        engine.run_until(0.1)
        assert net.recompute_count == 1  # the queued event was cancelled

    def test_coalesced_rates_match_eager(self):
        def run(coalesce):
            engine = Engine()
            net = FabricNetwork(minimal_host(), engine,
                                coalesce_recompute=coalesce)
            p = shortest_path(net.topology, "nic0", "dimm0-0")
            for i in range(4):
                engine.schedule_at(
                    0.1, lambda i=i: net.start_transfer(
                        "t", p, demand=Gbps(20 * (i + 1)), flow_id=f"f{i}")
                )
            engine.run_until(0.2)
            return {f.flow_id: f.current_rate for f in net.active_flows()}

        assert run(coalesce=True) == run(coalesce=False)


# ---------------------------------------------------------------------------
# The arbiter path: periodic enforcement reuses unchanged components.
# ---------------------------------------------------------------------------


def test_managed_run_never_resolves_from_scratch():
    host = Host(cascade_lake_2s(), decision_latency=0.0)
    host.register_tenant("hog")
    from repro import pipe
    host.submit(pipe("kv", "kv-tenant", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(50), bidirectional=True))
    p = path_of(host.network, "nic0", "dimm0-0")
    host.network.start_transfer("hog", p)
    host.run_until(0.05)
    stats = host.network.solver_stats
    assert stats.solve_calls > 2
    assert stats.full_solves <= 1  # only the very first solve is joint


def test_arbiter_steady_state_is_cheap():
    """Arbiter periods that re-apply an unchanged schedule cost no work."""
    from repro import pipe

    host = Host(cascade_lake_2s(), decision_latency=0.0,
                arbiter_period=0.001)
    host.register_tenant("hog")
    host.submit(pipe("kv", "kv-tenant", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(50), bidirectional=True))
    p = path_of(host.network, "nic0", "dimm0-0")
    host.network.start_transfer("hog", p)
    host.run_until(0.01)           # let enforcement reach steady state
    stats = host.network.solver_stats
    resolved_before = stats.flows_resolved
    full_before = stats.full_solves
    host.run_until(0.03)           # 20 more arbiter periods, no churn
    # Re-applying the unchanged schedule recomputes no flow rate at all:
    # idempotent cap writes never dirty a component.
    assert stats.flows_resolved == resolved_before
    assert stats.full_solves == full_before


# ---------------------------------------------------------------------------
# Satellites: clamp parameter, directed_capacities, Host facade.
# ---------------------------------------------------------------------------


class TestLinkUtilizationsClamp:
    def test_clamped_by_default(self):
        flows = [FlowDemand("a", ("x|fwd",), demand=Gbps(10))]
        rates = {"a": Gbps(15)}   # e.g. measured counters past a stale cap
        caps = {"x|fwd": Gbps(10)}
        assert link_utilizations(flows, rates, caps)["x|fwd"] == 1.0

    def test_unclamped_shows_oversubscription(self):
        flows = [FlowDemand("a", ("x|fwd",), demand=Gbps(10))]
        rates = {"a": Gbps(15)}
        caps = {"x|fwd": Gbps(10)}
        util = link_utilizations(flows, rates, caps, clamp=False)
        assert util["x|fwd"] == pytest.approx(1.5)

    def test_monitor_collector_is_unclamped(self, minimal_net):
        from repro.monitor import HostMonitor

        monitor = HostMonitor(minimal_net)
        assert monitor.collector.clamp_utilization is False


class TestDirectedCapacities:
    def test_both_directions_of_every_link(self):
        topology = minimal_host()
        directed = topology.directed_capacities()
        links = topology.links()
        assert len(directed) == 2 * len(links)
        for link in links:
            assert directed[f"{link.link_id}|fwd"] == link.effective_capacity
            assert directed[f"{link.link_id}|rev"] == link.effective_capacity

    def test_advertised_ignores_degradation(self):
        topology = minimal_host()
        link = topology.links()[0]
        link.degraded_capacity = link.capacity / 2
        directed = topology.directed_capacities()
        spec = topology.directed_capacities(advertised=True)
        assert directed[f"{link.link_id}|fwd"] == link.capacity / 2
        assert spec[f"{link.link_id}|fwd"] == link.capacity

    def test_matches_network_solver_view(self):
        net = FabricNetwork(minimal_host(), Engine())
        p = shortest_path(net.topology, "nic0", "dimm0-0")
        net.start_transfer("t", p)
        expected = max_min_fair_rates(
            [FlowDemand("t", net._directed_links[
                net.active_flows()[0].flow_id])],
            net.topology.directed_capacities(),
        )
        assert net.active_flows()[0].current_rate == pytest.approx(
            expected["t"]
        )


class TestHostFacade:
    def test_bundles_engine_network_manager(self):
        host = Host(minimal_host())
        assert host.network.engine is host.engine
        assert host.network.topology is host.topology
        assert host.manager.network is host.network
        assert host.is_managed

    def test_run_until_advances_time(self):
        host = Host(minimal_host())
        host.run_until(0.25)
        assert host.now == pytest.approx(0.25)

    def test_submit_and_release(self):
        from repro import pipe

        host = Host(minimal_host(), decision_latency=0.0)
        placement = host.submit(pipe("p", "t", src="nic0", dst="dimm0-0",
                                     bandwidth=Gbps(10)))
        assert placement in host.placements()
        host.release("p")
        assert host.placements() == []

    def test_unmanaged_host_has_no_manager(self):
        host = Host(minimal_host(), managed=False)
        assert not host.is_managed
        with pytest.raises(RuntimeError):
            _ = host.manager
        # the bare fabric still works
        p = path_of(host.network, "nic0", "dimm0-0")
        host.network.start_transfer("t", p, size=1e9)
        host.run()
        assert host.network.active_flows() == []

    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            Host(minimal_host(), 0.5)  # positional config rejected

    def test_shutdown_lifts_caps(self):
        from repro import pipe

        host = Host(minimal_host(), decision_latency=0.0)
        host.submit(pipe("p", "t", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(10)))
        host.run_until(0.01)
        host.shutdown()
        assert host.network.active_flows() == []
