"""Scalar/array water-filling equivalence and the interned problem state.

The vectorized core in ``repro.sim.arrays`` must produce the same rates as
the scalar reference within floating-point accumulation order (1e-6
relative).  This suite enforces that with a seeded property sweep over
randomly generated problems — mixed elastic/finite demands, virtual
constraints, zero-capacity links, repeated link crossings — plus
solver-level forced-path equivalence over whole mutation sequences, path
selection around the crossover, and the stats counters that report which
core ran.
"""

import math
import random

import pytest

from repro.sim import DEFAULT_ARRAY_CROSSOVER, HAVE_NUMPY, IncrementalMaxMinSolver
from repro.sim.arrays import make_interned_problem, progressive_fill_array
from repro.sim.bandwidth import (
    Constraint,
    FlowDemand,
    build_problem,
    progressive_fill,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized core requires numpy"
)

N_SEEDS = 220


def random_problem(rng, n_flows=None):
    """A random solvable problem: flows, capacities, virtual constraints."""
    n_cons = rng.randint(2, 12)
    cons = [f"c{i}" for i in range(n_cons)]
    capacities = {}
    for cid in cons:
        # ~1 in 8 links has zero capacity (hard-down link).
        capacities[cid] = 0.0 if rng.random() < 0.125 else rng.uniform(5, 500)
    n_flows = n_flows if n_flows is not None else rng.randint(1, 40)
    flows = []
    for i in range(n_flows):
        hops = rng.randint(1, min(4, n_cons))
        links = tuple(rng.choice(cons) for _ in range(hops))  # repeats allowed
        roll = rng.random()
        if roll < 0.4:
            demand = math.inf                      # elastic
        elif roll < 0.5:
            demand = 0.0                           # parked flow
        else:
            demand = rng.uniform(0.5, 200)         # finite
        flows.append(FlowDemand(f"f{i}", links, demand=demand,
                                weight=rng.uniform(0.25, 4.0)))
    virtuals = []
    for v in range(rng.randint(0, 3)):
        bound = [f.flow_id for f in flows if rng.random() < 0.3]
        if bound:
            virtuals.append(Constraint(
                constraint_id=f"v{v}", capacity=rng.uniform(0, 150),
                member_flows=frozenset(bound),
            ))
    return flows, capacities, virtuals


def assert_rates_close(got, want, context=""):
    assert len(got) == len(want), context
    for i, (g, w) in enumerate(zip(got, want)):
        assert abs(g - w) <= 1e-6 * max(1.0, abs(w)), (
            f"{context}: flow index {i}: array={g!r} scalar={w!r}"
        )


# ---------------------------------------------------------------------------
# Core-level equivalence: progressive_fill vs progressive_fill_array.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_fill_cores_agree(seed):
    rng = random.Random(seed)
    flows, capacities, virtuals = random_problem(rng)
    members, caps = build_problem(flows, capacities, virtuals)
    scalar = progressive_fill(flows, members, caps)
    vector = progressive_fill_array(flows, members, caps)
    assert_rates_close(vector, scalar, context=f"seed {seed}")


def test_fill_cores_agree_large_instance():
    rng = random.Random(4242)
    flows, capacities, virtuals = random_problem(rng, n_flows=800)
    members, caps = build_problem(flows, capacities, virtuals)
    scalar = progressive_fill(flows, members, caps)
    vector = progressive_fill_array(flows, members, caps)
    assert_rates_close(vector, scalar, context="large instance")


def test_array_core_elastic_unconstrained_raises():
    """Both cores reject an elastic flow crossing no constraint."""
    flows = [FlowDemand("f0", (), demand=math.inf)]
    with pytest.raises(ValueError):
        progressive_fill(flows, {}, {})
    with pytest.raises(ValueError):
        progressive_fill_array(flows, {}, {})


def test_array_core_empty_problem():
    assert progressive_fill_array([], {}, {}) == []


def test_array_core_multiplicity():
    """A flow crossing a link twice consumes double capacity on it."""
    flows = [FlowDemand("f0", ("c0", "c0"), demand=math.inf)]
    members, caps = build_problem(flows, {"c0": 100.0})
    assert progressive_fill_array(flows, members, caps) == pytest.approx([50.0])


# ---------------------------------------------------------------------------
# Solver-level equivalence: forced scalar vs forced array over mutations.
# ---------------------------------------------------------------------------


def _apply_mutations(solver, rng_seed, rounds=30):
    """One deterministic mutation stream against *solver*."""
    rng = random.Random(rng_seed)
    links = [f"l{i}" for i in range(8)]
    for link in links:
        solver.set_capacity(link, 0.0 if rng.random() < 0.1
                            else rng.uniform(10, 400))
    live = []
    snapshots = []
    for step in range(rounds):
        action = rng.random()
        if action < 0.45 or not live:
            fid = f"f{step}"
            hops = tuple(rng.choice(links) for _ in range(rng.randint(1, 3)))
            demand = math.inf if rng.random() < 0.4 else rng.uniform(1, 120)
            solver.set_flow(FlowDemand(fid, hops, demand=demand,
                                       weight=rng.uniform(0.5, 3)))
            live.append(fid)
        elif action < 0.6:
            solver.remove_flow(live.pop(rng.randrange(len(live))))
        elif action < 0.75:
            fid = rng.choice(live)
            solver.set_flow_params(fid, demand=rng.uniform(1, 120))
        elif action < 0.9:
            bound = frozenset(fid for fid in live if rng.random() < 0.5)
            if bound:
                solver.set_constraint(Constraint(
                    constraint_id="vcap", capacity=rng.uniform(5, 100),
                    member_flows=bound,
                ))
        else:
            solver.remove_constraint("vcap")
        if rng.random() < 0.5:
            snapshots.append(dict(solver.solve()))
    snapshots.append(dict(solver.solve()))
    return snapshots


@pytest.mark.parametrize("seed", range(40))
def test_solver_paths_agree_over_mutation_stream(seed):
    """Forced-scalar and forced-array solvers see identical mutation
    streams and must emit identical rate snapshots throughout."""
    scalar = IncrementalMaxMinSolver(array_crossover=10**9)
    vector = IncrementalMaxMinSolver(array_crossover=0)
    scalar_snaps = _apply_mutations(scalar, seed)
    vector_snaps = _apply_mutations(vector, seed)
    assert scalar.stats.array_fills == 0
    assert vector.stats.scalar_fills == 0
    assert vector.stats.array_fills > 0
    assert len(scalar_snaps) == len(vector_snaps)
    for step, (s, v) in enumerate(zip(scalar_snaps, vector_snaps)):
        assert set(s) == set(v), f"seed {seed} snapshot {step}"
        for fid, want in s.items():
            assert abs(v[fid] - want) <= 1e-6 * max(1.0, abs(want)), (
                f"seed {seed} snapshot {step} flow {fid}: "
                f"array={v[fid]!r} scalar={want!r}"
            )


# ---------------------------------------------------------------------------
# Path selection, stats counters, and interned-state behavior.
# ---------------------------------------------------------------------------


def _loaded(n_flows, crossover=None):
    solver = IncrementalMaxMinSolver(array_crossover=crossover)
    solver.set_capacity("c0", 100.0)
    solver.set_capacity("c1", 200.0)
    for i in range(n_flows):
        solver.set_flow(FlowDemand(f"f{i}", ("c0", "c1")[i % 2:i % 2 + 1],
                                   demand=math.inf))
    return solver


def test_default_crossover_picks_scalar_below_and_array_above():
    small = _loaded(DEFAULT_ARRAY_CROSSOVER - 1)
    small.solve()
    assert small.stats.scalar_fills == 1
    assert small.stats.array_fills == 0

    large = _loaded(DEFAULT_ARRAY_CROSSOVER)
    large.solve()
    assert large.stats.array_fills == 1
    assert large.stats.scalar_fills == 0


def test_incremental_component_path_pick_is_per_component():
    """One big component vectorizes while a small one stays scalar."""
    solver = IncrementalMaxMinSolver(array_crossover=8)
    solver.set_capacity("big", 100.0)
    solver.set_capacity("small", 50.0)
    for i in range(10):
        solver.set_flow(FlowDemand(f"b{i}", ("big",), demand=math.inf))
    for i in range(2):
        solver.set_flow(FlowDemand(f"s{i}", ("small",), demand=math.inf))
    solver.solve()
    solver.stats.reset()
    # Touch one flow in each component.
    solver.set_flow_params("b0", demand=50.0)
    solver.set_flow_params("s0", demand=10.0)
    rates = solver.solve()
    assert solver.stats.array_fills == 1
    assert solver.stats.scalar_fills == 1
    assert rates["s1"] == pytest.approx(40.0)


def test_rates_survive_path_switch():
    """Rates solved on one path are reused verbatim by the other epoch."""
    solver = IncrementalMaxMinSolver(array_crossover=4)
    solver.set_capacity("a", 100.0)
    solver.set_capacity("b", 60.0)
    for i in range(6):
        solver.set_flow(FlowDemand(f"a{i}", ("a",), demand=math.inf))
    solver.set_flow(FlowDemand("lone", ("b",), demand=math.inf))
    first = solver.solve()          # array for "a" component, array/scalar mix
    solver.set_flow_params("lone", demand=10.0)   # dirty only the small one
    second = solver.solve()
    for fid in (f"a{i}" for i in range(6)):
        assert second[fid] == first[fid]


def test_constraint_usage_matches_python_accumulation():
    solver = IncrementalMaxMinSolver(array_crossover=0)
    solver.set_capacity("x", 100.0)
    solver.set_capacity("y", 80.0)
    solver.set_flow(FlowDemand("f0", ("x", "y"), demand=math.inf))
    solver.set_flow(FlowDemand("f1", ("x",), demand=math.inf))
    solver.set_constraint(Constraint("vc", 30.0,
                                     member_flows=frozenset({"f1"})))
    rates = solver.solve()
    usage = solver.constraint_usage()
    assert usage["x"] == pytest.approx(rates["f0"] + rates["f1"])
    assert usage["y"] == pytest.approx(rates["f0"])
    assert usage["vc"] == pytest.approx(rates["f1"])
    assert rates["f1"] == pytest.approx(30.0)  # capped by the virtual


def test_interned_problem_slot_reuse():
    """Removed flows free their slots; re-adding reuses them."""
    interned = make_interned_problem()
    interned.set_capacity("c", 10.0)
    for round_no in range(5):
        for i in range(40):
            interned.set_flow(f"f{i}", ("c",), math.inf, 1.0)
        for i in range(40):
            interned.remove_flow(f"f{i}")
    # Vector capacity stayed bounded by the live high-water mark, not the
    # total number of set_flow calls.
    assert len(interned.weights) < 200


def test_zero_capacity_constraint_parks_flows_on_both_paths():
    for crossover in (0, 10**9):
        solver = IncrementalMaxMinSolver(array_crossover=crossover)
        solver.set_capacity("dead", 0.0)
        solver.set_capacity("live", 100.0)
        solver.set_flow(FlowDemand("f0", ("dead", "live"), demand=math.inf))
        solver.set_flow(FlowDemand("f1", ("live",), demand=math.inf))
        rates = solver.solve()
        assert rates["f0"] == 0.0
        assert rates["f1"] == pytest.approx(100.0)
