"""Path enumeration, selection, and transit rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoPathError
from repro.topology import (
    cascade_lake_2s,
    dgx_like,
    enumerate_paths,
    k_shortest_paths,
    make_path,
    shortest_path,
    widest_path,
)


@pytest.fixture(scope="module")
def cascade():
    return cascade_lake_2s()


@pytest.fixture(scope="module")
def dgx():
    return dgx_like()


class TestMakePath:
    def test_latency_and_bottleneck(self, cascade):
        p = make_path(cascade, ("nic0", "pcisw0", "rc0-0"),
                      ("pcie-nic0", "pcie-up0"))
        nic_link = cascade.link("pcie-nic0")
        up_link = cascade.link("pcie-up0")
        assert p.base_latency == pytest.approx(
            nic_link.base_latency + up_link.base_latency
        )
        assert p.bottleneck_capacity == pytest.approx(
            min(nic_link.capacity, up_link.capacity)
        )

    def test_trivial_path(self, cascade):
        p = make_path(cascade, ("nic0",), ())
        assert p.hop_count == 0
        assert p.bottleneck_capacity == float("inf")

    def test_shape_mismatch_rejected(self, cascade):
        with pytest.raises(ValueError):
            make_path(cascade, ("nic0", "pcisw0"), ())

    def test_wrong_link_rejected(self, cascade):
        with pytest.raises(ValueError):
            make_path(cascade, ("nic0", "pcisw0"), ("pcie-up0",))

    def test_uses_helpers(self, cascade):
        p = shortest_path(cascade, "nic0", "dimm0-0")
        assert p.uses_device("socket0")
        assert p.uses_link("pcie-nic0")
        assert not p.uses_link("eth0")


class TestEnumeration:
    def test_no_duplicate_paths(self, dgx):
        paths = enumerate_paths(dgx, "gpu0", "dimm1-0")
        keys = [p.links for p in paths]
        assert len(keys) == len(set(keys))

    def test_endpoint_devices_never_transit(self, dgx):
        for p in enumerate_paths(dgx, "gpu0", "dimm1-0", max_paths=32):
            for device_id in p.devices[1:-1]:
                dtype = dgx.device(device_id).device_type.value
                assert dtype not in ("gpu", "nvme_ssd", "dimm", "external")

    def test_nic_transit_only_next_to_external(self, dgx):
        # gpu0 -> external legitimately transits nic0/nic1
        paths = enumerate_paths(dgx, "gpu0", "external", max_paths=32)
        assert paths, "expected at least one path to external"
        for p in paths:
            for i, device_id in enumerate(p.devices[1:-1], start=1):
                if dgx.device(device_id).device_type.value == "nic":
                    neighbors = {p.devices[i - 1], p.devices[i + 1]}
                    assert "external" in neighbors

    def test_same_device_trivial(self, cascade):
        paths = enumerate_paths(cascade, "nic0", "nic0")
        assert len(paths) == 1 and paths[0].hop_count == 0


class TestSelection:
    def test_shortest_is_minimal_latency(self, dgx):
        best = shortest_path(dgx, "gpu0", "dimm0-0")
        for p in enumerate_paths(dgx, "gpu0", "dimm0-0"):
            assert best.base_latency <= p.base_latency + 1e-15

    def test_widest_is_maximal_bottleneck(self, dgx):
        widest = widest_path(dgx, "gpu0", "dimm0-0")
        for p in enumerate_paths(dgx, "gpu0", "dimm0-0", prefer="capacity"):
            assert widest.bottleneck_capacity >= p.bottleneck_capacity - 1e-6

    def test_k_shortest_ordering(self, dgx):
        paths = k_shortest_paths(dgx, "gpu0", "dimm1-0", k=4)
        latencies = [p.base_latency for p in paths]
        assert latencies == sorted(latencies)
        assert len(paths) <= 4

    def test_no_path_raises(self, cascade):
        cascade2 = cascade.copy()
        cascade2.link("pcie-nic0").up = False
        with pytest.raises(NoPathError):
            shortest_path(cascade2, "nic0", "dimm0-0")

    def test_down_parallel_link_skipped(self):
        topo = cascade_lake_2s()
        # two UPI links; kill one, path must use the other
        topo.link("upi-socket0-socket1-0").up = False
        p = shortest_path(topo, "dimm0-0", "dimm1-0")
        assert "upi-socket0-socket1-1" in p.links

    def test_degraded_link_avoided_by_widest(self):
        topo = cascade_lake_2s()
        topo.link("upi-socket0-socket1-0").degraded_capacity = 1e9
        p = widest_path(topo, "dimm0-0", "dimm1-0")
        assert "upi-socket0-socket1-0" not in p.links


@settings(max_examples=25, deadline=None)
@given(pair=st.sampled_from([
    ("nic0", "dimm0-0"), ("nic0", "gpu0"), ("gpu0", "nvme0"),
    ("nic1", "dimm1-0"), ("gpu1", "dimm0-0"), ("nvme1", "external"),
]))
def test_paths_are_simple_and_connected_property(pair):
    topo = cascade_lake_2s()
    src, dst = pair
    for p in enumerate_paths(topo, src, dst, max_paths=16):
        # simple: no repeated devices
        assert len(set(p.devices)) == len(p.devices)
        # connected: each link joins consecutive devices
        for i, link_id in enumerate(p.links):
            link = topo.link(link_id)
            assert {p.devices[i], p.devices[i + 1]} == {link.src, link.dst}
        assert p.src == src and p.dst == dst
