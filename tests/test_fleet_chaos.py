"""Fleet chaos campaigns: the oracle stays green, clocks agree bit-exact."""

import json

import pytest

from repro.errors import FleetError
from repro.fleet import (
    FleetChaosConfig,
    FleetFaultConfig,
    run_fleet_campaign,
)

#: Seeds for the wide oracle-green property sweep (ISSUE: >= 50 seeds).
ORACLE_SEEDS = list(range(50))
#: Seeds for the cross-clock bit-identical equivalence sweep (>= 20).
EQUIVALENCE_SEEDS = list(range(20))


def small_config(seed, clock="event", **overrides):
    """A 16-host campaign kept small enough for a seed sweep."""
    defaults = dict(
        seed=seed, hosts=16, clock=clock, horizon=0.2,
        arrival_rate=800.0, tenants=8, faults=6, deep_audits=False,
    )
    defaults.update(overrides)
    return FleetChaosConfig(**defaults)


def test_config_validation():
    with pytest.raises(FleetError, match=">= 2 hosts"):
        FleetChaosConfig(hosts=1)
    with pytest.raises(FleetError, match="horizon"):
        FleetChaosConfig(horizon=0.0)


def test_campaign_report_shape():
    report = run_fleet_campaign(small_config(0))
    assert report.passed
    assert report.submitted == report.admitted + report.rejected
    assert report.audits > 0
    assert report.fault_counters["crashes"] >= 1
    assert "PASS" in report.describe()
    outcome = json.loads(report.outcome_json)
    assert outcome["seed"] == 0
    assert "clock" not in outcome  # the equivalence key is clock-free
    assert outcome["recovery"]["pending_replacements"] == 0


@pytest.mark.parametrize("seed", ORACLE_SEEDS)
def test_oracle_green_across_seeds(seed):
    """The fleet invariant oracle holds on every audited interleaving."""
    report = run_fleet_campaign(small_config(seed))
    assert report.passed, "\n".join(report.violations[:10])


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_event_and_lockstep_clocks_agree_bit_exact(seed):
    """Same seed, same storm: both clock disciplines reach the same
    admissions, evacuations, sheds, and final placements, bit-identical."""
    event = run_fleet_campaign(small_config(seed, clock="event"))
    lockstep = run_fleet_campaign(small_config(seed, clock="lockstep"))
    assert event.passed and lockstep.passed
    assert event.outcome_json == lockstep.outcome_json


def test_no_session_lost_when_headroom_suffices():
    """With the concurrent-downtime cap low enough that the surviving
    hosts always hold the displaced load, nothing is ever shed."""
    for seed in range(8):
        config = small_config(
            seed, arrival_rate=400.0,
            fault_config=FleetFaultConfig(seed=seed, faults=6,
                                          horizon=0.2,
                                          max_down_fraction=0.25),
        )
        report = run_fleet_campaign(config)
        assert report.passed
        assert report.sessions_lost == 0, (
            f"seed {seed} shed {report.sessions_lost} sessions despite "
            f"ample aggregate headroom")


def test_deep_audits_also_green():
    """The full per-host fabric oracle inside every per-fault audit."""
    report = run_fleet_campaign(small_config(0, hosts=8,
                                             deep_audits=True))
    assert report.passed, "\n".join(report.violations[:10])
