"""Chaos campaigns and the invariant oracle."""

from __future__ import annotations

import pytest

from repro import (
    Engine,
    FabricNetwork,
    Gbps,
    Host,
    cascade_lake_2s,
    check_invariants,
    pipe,
    run_campaign,
)
from repro.monitor import FailureInjector
from repro.resilience import (
    ChaosConfig,
    RecoveryConfig,
    diff_snapshots,
    snapshot_fabric,
)
from repro.topology import minimal_host, shortest_path


def _report_fingerprint(report):
    return (
        report.events,
        [str(v) for v in report.violations],
        report.restore_diffs,
        report.unrestored_degradations,
        report.checks,
        report.replacements,
        report.degradations,
        report.restores,
        report.quarantines,
        report.shed,
        report.admitted_after_retry,
        report.duration,
    )


class TestCampaign:
    def test_fifty_fault_campaign_passes_and_is_deterministic(self):
        # The acceptance bar: 50 faults on the default preset, zero
        # invariant violations, every degradation restored, bit-exact
        # fabric restore — and the same seed twice gives the same report.
        config = ChaosConfig(seed=7, faults=50)
        first = run_campaign(config=config)
        assert first.passed, first.describe()
        assert first.checks >= 100  # one audit per inject + per repair
        second = run_campaign(config=config)
        assert _report_fingerprint(first) == _report_fingerprint(second)

    def test_different_seed_different_storm_still_passes(self):
        a = run_campaign(config=ChaosConfig(seed=1, faults=12))
        b = run_campaign(config=ChaosConfig(seed=2, faults=12))
        assert a.passed, a.describe()
        assert b.passed, b.describe()
        assert a.events != b.events

    def test_all_failure_kinds_injected(self):
        report = run_campaign(config=ChaosConfig(seed=0, faults=8))
        kinds = {e.failure_kind for e in report.events}
        assert kinds == {"link_degrade", "link_down", "link_flap",
                         "switch_degrade"}

    def test_report_describe_mentions_verdict(self):
        report = run_campaign(config=ChaosConfig(seed=5, faults=6))
        text = report.describe()
        assert "PASSED" in text or "FAILED" in text
        assert f"seed={report.seed}" in text


class TestInvariantChecker:
    def test_clean_fabric_has_no_violations(self):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        assert check_invariants(host.network, manager=host.manager) == []
        host.shutdown()

    def test_stranded_placement_flagged_without_controller(self):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        FailureInjector(host.network).fail_link("pcie-nic0")
        violations = check_invariants(host.network, manager=host.manager)
        assert any(v.name == "stranded-placement" for v in violations)
        host.shutdown()

    def test_stranded_placement_cleared_by_recovery(self):
        config = RecoveryConfig(monitor=False, retry=False,
                                tick_period=0.001)
        host = Host(cascade_lake_2s(), resilience=config,
                    coalesce_recompute=True, decision_latency=0.0)
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        FailureInjector(host.network).fail_link("pcie-nic0")
        host.run_until(host.now + 0.005)
        assert check_invariants(host.network, manager=host.manager,
                                controller=host.recovery) == []
        host.shutdown()

    def test_ledger_inconsistency_flagged(self):
        host = Host(cascade_lake_2s(), coalesce_recompute=True)
        host.submit(pipe("x", "tA", src="nic0", dst="dimm0-0",
                         bandwidth=Gbps(50)))
        host.manager.ledger.release("x")  # corrupt: placement survives
        violations = check_invariants(host.network, manager=host.manager)
        assert any(v.name == "ledger-consistency" for v in violations)
        host.shutdown()

    def test_down_link_starves_flows_not_violates(self):
        topology = minimal_host()
        network = FabricNetwork(topology, Engine(),
                                coalesce_recompute=True)
        path = shortest_path(topology, "nic0", "dimm0-0")
        network.start_transfer("tA", path, demand=Gbps(10))
        network.set_link_up("pcie-nic0", False)
        # The fluid solver zeroes the flow; conservation and the
        # down-link invariant both hold.
        assert check_invariants(network) == []


class TestSnapshots:
    def test_snapshot_roundtrip_exact(self):
        network = FabricNetwork(minimal_host(), Engine())
        baseline = snapshot_fabric(network)
        injector = FailureInjector(network)
        f1 = injector.degrade_link("pcie-nic0", capacity_factor=0.5)
        f2 = injector.fail_link("membus0-0")
        assert diff_snapshots(baseline, snapshot_fabric(network))
        injector.clear(f2)
        injector.clear(f1)
        assert diff_snapshots(baseline, snapshot_fabric(network)) == []

    def test_diff_names_field_and_link(self):
        network = FabricNetwork(minimal_host(), Engine())
        baseline = snapshot_fabric(network)
        FailureInjector(network).degrade_link("eth0", capacity_factor=0.5)
        diffs = diff_snapshots(baseline, snapshot_fabric(network))
        assert any("eth0.degraded_capacity" in d for d in diffs)
        assert any("eth0.extra_latency" in d for d in diffs)


class TestChaosConfigKnobs:
    def test_small_workload_and_faults(self):
        report = run_campaign(config=ChaosConfig(
            seed=11, faults=4, workload_intents=2,
        ))
        assert report.passed, report.describe()
        assert report.faults == 4
