"""Device and Link element semantics."""

import pytest

from repro.topology.elements import (
    Device,
    DeviceType,
    ENDPOINT_TYPES,
    FABRIC_TYPES,
    Link,
    LinkClass,
)
from repro.units import Gbps, ns


def make_link(**overrides):
    defaults = dict(
        link_id="l0", src="a", dst="b",
        link_class=LinkClass.PCIE_DOWNSTREAM,
        capacity=Gbps(256), base_latency=ns(70),
    )
    defaults.update(overrides)
    return Link(**defaults)


class TestDevice:
    def test_endpoint_classification(self):
        nic = Device("nic0", DeviceType.NIC, socket=0)
        assert nic.is_endpoint and not nic.is_fabric

    def test_fabric_classification(self):
        sw = Device("sw0", DeviceType.PCIE_SWITCH, socket=0)
        assert sw.is_fabric and not sw.is_endpoint

    def test_endpoint_and_fabric_sets_disjoint(self):
        assert not (ENDPOINT_TYPES & FABRIC_TYPES)

    def test_str_mentions_type(self):
        d = Device("gpu1", DeviceType.GPU, socket=1)
        assert "gpu1" in str(d) and "gpu" in str(d)

    def test_frozen(self):
        d = Device("x", DeviceType.NIC)
        with pytest.raises(AttributeError):
            d.device_id = "y"


class TestLink:
    def test_effective_capacity_healthy(self):
        link = make_link()
        assert link.effective_capacity == link.capacity
        assert link.healthy

    def test_effective_capacity_degraded(self):
        link = make_link(degraded_capacity=Gbps(10))
        assert link.effective_capacity == pytest.approx(Gbps(10))
        assert not link.healthy

    def test_degraded_never_exceeds_capacity(self):
        link = make_link(degraded_capacity=Gbps(999))
        assert link.effective_capacity == link.capacity

    def test_down_link_zero_capacity(self):
        link = make_link(up=False)
        assert link.effective_capacity == 0.0
        assert not link.healthy

    def test_extra_latency_unhealthy(self):
        link = make_link(extra_latency=ns(500))
        assert not link.healthy
        assert link.effective_latency == pytest.approx(ns(570))

    def test_other_end(self):
        link = make_link()
        assert link.other_end("a") == "b"
        assert link.other_end("b") == "a"

    def test_other_end_invalid(self):
        with pytest.raises(ValueError):
            make_link().other_end("c")

    def test_endpoints(self):
        assert make_link().endpoints() == ("a", "b")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_link(capacity=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_link(base_latency=-1e-9)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            make_link(src="a", dst="a")
