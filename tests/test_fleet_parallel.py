"""Process-parallel fleet execution: equivalence, sharding, failure modes.

The parallel backend's contract is the same bargain the event clock
struck: a pure *optimization*, never a semantic change.  Sharding host
simulations across worker processes must produce bit-identical outcomes
— placements, rejections, reservation ledgers, chaos campaign reports,
replay SLO numbers — for the same seed, because every control-plane
decision still executes in the parent in the identical order and every
worker-side mutation is routed through the deterministic message
protocol.  The suite asserts that equivalence across ≥20 seeds (churn
and chaos-with-faults), plus the failure modes the protocol must
surface: a dead worker raises a clear ``FleetError`` instead of
hanging, and remote admission errors arrive as their original types.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pipe
from repro.errors import (
    AdmissionError,
    FleetError,
    HostNetError,
    UnknownHostError,
)
from repro.fleet import Fleet, FleetChurnConfig, run_churn, shard_hosts
from repro.fleet.chaos import FleetChaosConfig, run_fleet_campaign
from repro.fleet.protocol import decode_error, encode_error
from repro.units import Gbps
from repro.workloads.cluster_traces import (
    ReplayConfig,
    SynthTraceConfig,
    replay_trace,
    synthesize_trace,
)

from .test_fleet_replay import fault_schedule

EQUIVALENCE_SEEDS = range(20)


def kv(intent_id, tenant="tA", bandwidth=Gbps(50), src="nic0",
       dst="dimm0-0"):
    return pipe(intent_id, tenant, src=src, dst=dst, bandwidth=bandwidth)


def churn_signature(seed, parallel=None, clock="event"):
    fleet = Fleet("cascade_lake_2s", hosts=4, policy="best-fit",
                  max_attempts=3, clock=clock, parallel=parallel)
    config = FleetChurnConfig(seed=seed, horizon=0.08,
                              arrival_rate=1500.0)
    report = run_churn(fleet, config)
    signature = (
        report.placements,
        report.admitted,
        report.rejected,
        report.released,
        sorted(fleet.ledger_signatures().items()),
    )
    fleet.shutdown()
    return signature


# -- serial/parallel equivalence ---------------------------------------------


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_parallel_churn_matches_serial_exactly(seed):
    assert churn_signature(seed) == churn_signature(seed, parallel=2)


def test_parallel_churn_is_self_deterministic():
    assert (churn_signature(97, parallel=2)
            == churn_signature(97, parallel=2))


def test_parallel_matches_serial_across_worker_counts():
    reference = churn_signature(13)
    for workers in (1, 3, 4):
        assert churn_signature(13, parallel=workers) == reference


def test_parallel_lockstep_matches_serial_lockstep():
    assert (churn_signature(7, clock="lockstep")
            == churn_signature(7, parallel=2, clock="lockstep"))


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_parallel_chaos_campaign_matches_serial_exactly(seed):
    def outcome(parallel):
        return run_fleet_campaign(FleetChaosConfig(
            seed=seed, hosts=8, clock="event", horizon=0.12,
            arrival_rate=700.0, tenants=6, faults=4,
            deep_audits=False, parallel=parallel,
        )).outcome_json

    serial = outcome(None)
    parallel = outcome(2)
    assert json.loads(serial)["violations"] == []
    assert serial == parallel


def test_parallel_replay_with_faults_matches_serial():
    trace = synthesize_trace(SynthTraceConfig(seed=3, tasks=150,
                                              tenants=8, horizon=1.0))
    schedule = fault_schedule(seed=3, horizon=trace.horizon)
    outcomes = []
    for parallel in (None, 2):
        fleet = Fleet("cascade_lake_2s", hosts=4, policy="best-fit",
                      max_attempts=8, failure_domains=2,
                      parallel=parallel)
        try:
            report = replay_trace(fleet, trace, ReplayConfig(samples=4),
                                  faults=schedule)
        finally:
            fleet.shutdown()
        outcomes.append(report.outcome_json())
    assert outcomes[0] == outcomes[1]


# -- the shard function -------------------------------------------------------


host_id_sets = st.sets(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1, max_size=32,
)


@settings(max_examples=100, deadline=None)
@given(ids=host_id_sets, workers=st.integers(min_value=1, max_value=8))
def test_shard_hosts_is_a_stable_balanced_partition(ids, workers):
    shards = shard_hosts(sorted(ids), workers)
    # A partition: every host exactly once.
    flat = [h for shard in shards for h in shard]
    assert sorted(flat) == sorted(ids)
    # Balanced to ±1.
    sizes = [len(s) for s in shards if s]
    if sizes:
        assert max(sizes) - min(sizes) <= 1
    # Pure function of the *set*: input order never changes the shards.
    assert shard_hosts(sorted(ids, reverse=True), workers) == shards


def test_shard_hosts_rejects_nonsense():
    with pytest.raises(FleetError):
        shard_hosts(["a", "b"], 0)
    with pytest.raises(FleetError):
        shard_hosts(["a", "a"], 2)


def test_more_workers_than_hosts_collapses_to_host_count():
    fleet = Fleet("cascade_lake_2s", hosts=2, parallel=8)
    try:
        assert fleet.parallel == 2
    finally:
        fleet.shutdown()


# -- the wire protocol --------------------------------------------------------


def test_encoded_errors_round_trip_type_message_and_attrs():
    original = AdmissionError("intent-1", "no feasible path")
    decoded = decode_error(*encode_error(original))
    assert type(decoded) is AdmissionError
    assert str(decoded) == str(original)
    assert decoded.intent_id == "intent-1"


def test_unknown_error_names_decode_to_fleet_error():
    decoded = decode_error("NoSuchErrorClass", "boom", {})
    assert isinstance(decoded, FleetError)
    assert "boom" in str(decoded)


def test_remote_admission_errors_surface_as_their_original_type():
    fleet = Fleet("cascade_lake_2s", hosts=2, parallel=2)
    try:
        fleet.submit(kv("a", bandwidth=Gbps(100)))
        with pytest.raises(HostNetError):
            # Direct facade call against one worker-held host: the
            # worker's AdmissionError crosses the pipe and re-raises.
            for host_id in fleet.host_ids():
                fleet.manager_submit(host_id, kv(
                    "too-big", bandwidth=Gbps(100_000)))
    finally:
        fleet.shutdown()


# -- failure modes ------------------------------------------------------------


def test_dead_worker_raises_clear_error_not_hang():
    fleet = Fleet("cascade_lake_2s", hosts=4, parallel=2)
    try:
        fleet.advance_to(0.002)
        fleet._backend._procs[0].terminate()
        fleet._backend._procs[0].join(timeout=10.0)
        with pytest.raises(FleetError, match="fleet worker 0"):
            for _ in range(4):  # ops route to both workers
                fleet.advance_to(fleet.now + 0.002)
                fleet.telemetry.headrooms()
    finally:
        fleet.shutdown()


def test_parallel_rejects_per_host_resilience():
    with pytest.raises(FleetError, match="resilience"):
        Fleet("cascade_lake_2s", hosts=2, parallel=2,
              resilience="auto")


@pytest.mark.parametrize("bogus", [0, -1, 1.5, True])
def test_parallel_rejects_non_positive_worker_counts(bogus):
    with pytest.raises(FleetError, match="parallel"):
        Fleet("cascade_lake_2s", hosts=2, parallel=bogus)


def test_direct_host_access_is_fenced_off_in_parallel_mode():
    fleet = Fleet("cascade_lake_2s", hosts=2, parallel=2)
    try:
        with pytest.raises(FleetError, match="unavailable"):
            fleet.host("host00")
        with pytest.raises(FleetError, match="unavailable"):
            fleet.hosts()
        with pytest.raises(UnknownHostError):
            fleet.require_host("no-such-host")
        assert fleet.host_ids() == ["host00", "host01"]
    finally:
        fleet.shutdown()


def test_shutdown_is_idempotent_and_post_shutdown_ops_fail_cleanly():
    fleet = Fleet("cascade_lake_2s", hosts=2, parallel=2)
    fleet.shutdown()
    fleet.shutdown()  # second call is a no-op, not an error


# -- worker trace merge -------------------------------------------------------


def test_worker_traces_merge_into_parent_export(tmp_path):
    from repro.trace import TRACER, TraceConfig, stop_tracing
    from repro.trace.export import chrome_trace_events

    TRACER.configure(TraceConfig())
    try:
        fleet = Fleet("cascade_lake_2s", hosts=2, parallel=2,
                      trace=True)
        try:
            fleet.submit(kv("traced", bandwidth=Gbps(40)))
            fleet.advance_to(0.01)
            workers = fleet.worker_traces()
        finally:
            fleet.shutdown()
    finally:
        stop_tracing()
    assert sorted(workers) == [0, 1]
    assert any(records for records in workers.values())
    events = chrome_trace_events(TRACER, workers=workers)
    pids = {e["pid"] for e in events}
    assert {1, 2, 3} <= pids  # parent + one track per worker
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"worker-0", "worker-1"} <= names
