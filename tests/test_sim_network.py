"""FabricNetwork: flow lifecycle, fairness, accounting, failures."""


import pytest

from repro.errors import FlowError, UnknownLinkError
from repro.sim import FabricNetwork, FlowState
from repro.topology import shortest_path
from repro.units import Gbps


def path_of(net, src, dst):
    return shortest_path(net.topology, src, dst)


class TestLifecycle:
    def test_start_and_complete(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        done = []
        flow = net.start_transfer("t", p, size=1e9,
                                  on_complete=lambda f: done.append(f))
        assert flow.state is FlowState.ACTIVE
        net.engine.run()
        assert flow.state is FlowState.COMPLETED
        assert done == [flow]
        assert flow.bytes_sent == pytest.approx(1e9)
        assert not net.has_flow(flow.flow_id)

    def test_completion_time_matches_rate(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        flow = net.start_transfer("t", p, size=Gbps(256))  # 1s at line rate
        net.engine.run()
        assert flow.duration == pytest.approx(1.0, rel=1e-6)

    def test_cancel(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        flow = net.start_transfer("t", p)
        net.engine.run_until(0.5)
        cancelled = net.cancel_flow(flow.flow_id)
        assert cancelled.state is FlowState.CANCELLED
        assert cancelled.bytes_sent > 0
        assert not net.has_flow(flow.flow_id)

    def test_duplicate_id_rejected(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        net.start_transfer("t", p, flow_id="dup")
        with pytest.raises(FlowError):
            net.start_transfer("t", p, flow_id="dup")

    def test_cancel_unknown_rejected(self, minimal_net):
        with pytest.raises(FlowError):
            minimal_net.cancel_flow("ghost")

    def test_unknown_link_in_path_rejected(self, minimal_net, cascade_net):
        foreign = path_of(cascade_net, "nic0", "dimm1-0")
        with pytest.raises(UnknownLinkError):
            minimal_net.start_transfer("t", foreign)

    def test_flow_listeners(self, minimal_net):
        net = minimal_net
        events = []
        net.on_flow_start(lambda f: events.append(("start", f.flow_id)))
        net.on_flow_complete(lambda f: events.append(("done", f.flow_id)))
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p, size=1e6)
        net.engine.run()
        assert events == [("start", f.flow_id), ("done", f.flow_id)]


class TestFairness:
    def test_two_tenants_share_bottleneck(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f1 = net.start_transfer("a", p)
        f2 = net.start_transfer("b", p)
        assert f1.current_rate == pytest.approx(f2.current_rate)
        assert f1.current_rate + f2.current_rate == \
            pytest.approx(Gbps(256), rel=1e-6)

    def test_full_duplex_directions_independent(self, minimal_net):
        net = minimal_net
        fwd = net.start_transfer("a", path_of(net, "nic0", "dimm0-0"))
        rev = net.start_transfer("b", path_of(net, "dimm0-0", "nic0"))
        assert fwd.current_rate == pytest.approx(Gbps(256), rel=1e-6)
        assert rev.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_tenant_weight_shifts_share(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f1 = net.start_transfer("heavy", p)
        f2 = net.start_transfer("light", p)
        net.set_tenant_weight("heavy", 3.0)
        assert f1.current_rate == pytest.approx(3 * f2.current_rate, rel=1e-6)

    def test_demand_limited_flow(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p, demand=Gbps(10))
        assert f.current_rate == pytest.approx(Gbps(10))

    def test_rates_rebalance_on_completion(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        small = net.start_transfer("a", p, size=1e6)
        big = net.start_transfer("b", p)
        assert big.current_rate == pytest.approx(Gbps(256) / 2, rel=1e-6)
        net.engine.run_until(1.0)
        assert small.state is FlowState.COMPLETED
        assert big.current_rate == pytest.approx(Gbps(256), rel=1e-6)


class TestCapsAndWeights:
    def test_tenant_link_cap(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(32))
        assert f.current_rate == pytest.approx(Gbps(32), rel=1e-6)
        net.clear_tenant_link_cap("t", "pcie-nic0")
        assert f.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_cap_applies_to_tenant_aggregate(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f1 = net.start_transfer("t", p)
        f2 = net.start_transfer("t", p)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(32))
        assert f1.current_rate + f2.current_rate == \
            pytest.approx(Gbps(32), rel=1e-6)

    def test_clear_tenant_caps(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(8))
        net.set_tenant_link_cap("t", "pcie-up0", Gbps(8)) \
            if net.topology.has_link("pcie-up0") else None
        net.clear_tenant_caps("t")
        assert f.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_flow_rate_cap(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p)
        net.set_flow_rate_cap(f.flow_id, Gbps(16))
        assert f.current_rate == pytest.approx(Gbps(16), rel=1e-6)

    def test_set_flow_demand(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p, demand=Gbps(10))
        net.set_flow_demand(f.flow_id, Gbps(40))
        assert f.current_rate == pytest.approx(Gbps(40), rel=1e-6)

    def test_invalid_cap_rejected(self, minimal_net):
        net = minimal_net
        with pytest.raises(ValueError):
            net.set_tenant_link_cap("t", "pcie-nic0", -1.0)
        with pytest.raises(UnknownLinkError):
            net.set_tenant_link_cap("t", "ghost", 1.0)


class TestAccounting:
    def test_link_bytes_integrates_rate(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        net.start_transfer("t", p, demand=Gbps(80))
        net.engine.run_until(1.0)
        assert net.link_bytes("pcie-nic0") == pytest.approx(Gbps(80),
                                                            rel=1e-6)

    def test_per_direction_bytes(self, minimal_net):
        net = minimal_net
        net.start_transfer("t", path_of(net, "nic0", "dimm0-0"),
                           demand=Gbps(80))
        net.engine.run_until(1.0)
        fwd = net.link_bytes("pcie-nic0", "fwd")
        rev = net.link_bytes("pcie-nic0", "rev")
        assert fwd + rev == pytest.approx(net.link_bytes("pcie-nic0"))
        # only one direction carries traffic
        assert min(fwd, rev) == 0.0
        assert max(fwd, rev) == pytest.approx(Gbps(80), rel=1e-6)

    def test_tenant_attribution(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        net.start_transfer("a", p, demand=Gbps(40))
        net.start_transfer("b", p, demand=Gbps(40))
        net.engine.run_until(0.5)
        a = net.tenant_link_bytes("a", "pcie-nic0")
        b = net.tenant_link_bytes("b", "pcie-nic0")
        assert a == pytest.approx(b)
        assert a + b == pytest.approx(net.link_bytes("pcie-nic0"))

    def test_bytes_conserved_on_completion(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        net.start_transfer("t", p, size=5e9)
        net.engine.run()
        for link_id in p.links:
            assert net.link_bytes(link_id) == pytest.approx(5e9, rel=1e-9)

    def test_utilization(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        net.start_transfer("t", p, demand=Gbps(128))
        assert net.link_utilization("pcie-nic0") == pytest.approx(0.5,
                                                                  rel=1e-6)


class TestFailures:
    def test_degraded_link_shrinks_rates(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p)
        net.degrade_link("pcie-nic0", Gbps(64))
        assert f.current_rate == pytest.approx(Gbps(64), rel=1e-6)
        net.degrade_link("pcie-nic0", None)
        assert f.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_down_link_stalls_flow(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        f = net.start_transfer("t", p, size=1e9)
        net.set_link_up("pcie-nic0", False)
        assert f.current_rate == 0.0
        net.engine.run_until(1.0)
        assert f.state is FlowState.ACTIVE  # stalled, not completed
        net.set_link_up("pcie-nic0", True)
        net.engine.run()
        assert f.state is FlowState.COMPLETED

    def test_latency_queries(self, minimal_net):
        net = minimal_net
        p = path_of(net, "nic0", "dimm0-0")
        idle = net.path_latency(p)
        net.start_transfer("x", p)
        loaded = net.path_latency(p)
        assert loaded > idle
        assert net.round_trip_latency(p) >= 2 * idle
