"""The normalized cluster-trace schema, ingestion, and synthesizer.

The trust story the subsystem sells is "byte-identical load": two
policies or two clock disciplines are only comparable because they were
fed the same normalized trace, decidable by string equality of the
canonical JSON.  These tests pin the schema round-trip, the Alibaba-style
CSV/JSON ingestion (including its filtering and dedup rules), and the
synthesizer's seeded determinism.
"""

import json
import os

import pytest

from repro.errors import WorkloadError
from repro.units import Gbps
from repro.workloads.cluster_traces import (
    ClusterTask,
    ClusterTrace,
    IngestConfig,
    SynthTraceConfig,
    ingest_csv,
    ingest_json,
    load_trace,
    synthesize_trace,
)
from repro.workloads.cluster_traces.ingest import ColumnMap
from repro.workloads.cluster_traces.schema import (
    SCHEMA_VERSION,
    rebase_and_scale,
    trace_summary,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "alibaba_batch_task_sample.csv")


def small_trace():
    return ClusterTrace(
        tasks=[
            ClusterTask("b", "j1", "t0", arrival=1.0, duration=2.0,
                        bandwidth=Gbps(10)),
            ClusterTask("a", "j1", "t0", arrival=1.0, duration=1.0,
                        bandwidth=Gbps(20), cpu=2.0, memory=0.5,
                        bidirectional=True),
            ClusterTask("c", "j2", "t1", arrival=0.5, duration=4.0,
                        bandwidth=Gbps(40)),
        ],
        name="tiny",
    )


# -- schema -----------------------------------------------------------------


def test_tasks_sort_by_arrival_then_id():
    trace = small_trace()
    assert [t.task_id for t in trace] == ["c", "a", "b"]


def test_task_validation():
    with pytest.raises(WorkloadError, match="arrival"):
        ClusterTask("x", "j", "t", arrival=-1.0, duration=1.0,
                    bandwidth=Gbps(1))
    with pytest.raises(WorkloadError, match="duration"):
        ClusterTask("x", "j", "t", arrival=0.0, duration=0.0,
                    bandwidth=Gbps(1))
    with pytest.raises(WorkloadError, match="bandwidth"):
        ClusterTask("x", "j", "t", arrival=0.0, duration=1.0,
                    bandwidth=0.0)


def test_duplicate_task_ids_rejected():
    task = ClusterTask("a", "j", "t", arrival=0.0, duration=1.0,
                       bandwidth=Gbps(1))
    with pytest.raises(WorkloadError, match="duplicate"):
        ClusterTrace(tasks=[task, task])


def test_trace_shape_accessors():
    trace = small_trace()
    assert trace.horizon == pytest.approx(4.5)  # c: 0.5 + 4.0
    assert trace.tenants() == ["t0", "t1"]
    assert trace.jobs() == ["j1", "j2"]
    assert trace.concurrent_at(1.5) == 3
    assert trace.concurrent_at(4.0) == 1
    summary = trace_summary(trace)
    assert summary["tasks"] == 3
    assert summary["mean_duration"] == pytest.approx(7.0 / 3.0)


def test_json_round_trip_is_canonical_and_lossless():
    trace = small_trace()
    text = trace.to_json()
    again = ClusterTrace.from_json(text)
    assert again.to_json() == text  # canonical: fixed point
    assert again.name == "tiny"
    assert again.tasks == trace.tasks  # cpu/mem/bidirectional survive


def test_from_json_rejects_unknown_schema():
    payload = json.loads(small_trace().to_json())
    payload["schema"] = "repro.cluster-trace/v999"
    with pytest.raises(WorkloadError, match="v999"):
        ClusterTrace.from_json(json.dumps(payload))
    with pytest.raises(WorkloadError, match="schema"):
        ClusterTrace.from_json("[1,2,3]")
    with pytest.raises(WorkloadError, match="not a cluster trace"):
        ClusterTrace.from_json("{nope")


def test_rebase_and_scale_preserves_load_shape():
    trace = small_trace()
    scaled = ClusterTrace(rebase_and_scale(list(trace), time_scale=0.5),
                          name="scaled")
    assert min(t.arrival for t in scaled) == 0.0
    # Horizon rebases (base = 0.5) then scales: (4.5 - 0.5) * 0.5.
    assert scaled.horizon == pytest.approx(2.0)
    # Concurrency profile is identical at scaled times: original time t
    # maps to (t - base) * time_scale with base = 0.5.
    assert scaled.concurrent_at(0.5) == trace.concurrent_at(1.5)
    with pytest.raises(WorkloadError, match="time_scale"):
        rebase_and_scale(list(trace), time_scale=0.0)


# -- ingestion ---------------------------------------------------------------


def test_fixture_ingests_with_expected_filtering():
    trace = load_trace(FIXTURE)
    # 36 data rows: one Failed and one Running filtered by status, one
    # zero-duration row skipped, one (job, task) repeat deduped with #1.
    assert len(trace) == 33
    assert "j_2762/task_M1#1" in {t.task_id for t in trace}
    assert min(t.arrival for t in trace) == 0.0  # rebased
    for task in trace:
        assert Gbps(5) <= task.bandwidth <= Gbps(200)  # clamped
        assert task.duration > 0
    # Tenants synthesized from job-id hash (no user column): stable names.
    assert all(t.tenant_id.startswith("u") for t in trace)


def test_fixture_ingest_is_deterministic():
    assert load_trace(FIXTURE).to_json() == load_trace(FIXTURE).to_json()


def test_ingest_time_scale_compresses():
    full = load_trace(FIXTURE)
    compressed = load_trace(FIXTURE, IngestConfig(time_scale=0.05))
    assert compressed.horizon == pytest.approx(0.05 * full.horizon)
    assert len(compressed) == len(full)


def test_ingest_csv_requires_columns():
    with pytest.raises(WorkloadError, match="required columns"):
        ingest_csv("foo,bar\n1,2\n")
    with pytest.raises(WorkloadError, match="empty CSV"):
        ingest_csv("")


def test_ingest_csv_rejects_non_numeric_fields():
    text = ("task_name,job_name,start_time,end_time,plan_cpu,plan_mem\n"
            "t1,j1,abc,20,100,1\n")
    with pytest.raises(WorkloadError, match="not numeric"):
        ingest_csv(text)


def test_ingest_csv_all_rows_filtered_raises():
    text = ("task_name,job_name,status,start_time,end_time\n"
            "t1,j1,Failed,0,10\n")
    with pytest.raises(WorkloadError, match="no usable rows"):
        ingest_csv(text)


def test_ingest_json_rows_and_schema_passthrough():
    rows = [
        {"task_name": "t1", "job_name": "j1", "start_time": 0,
         "end_time": 10, "plan_cpu": 200, "plan_mem": 1.0},
        {"task_name": "t2", "job_name": "j1", "start_time": 5,
         "end_time": 30, "plan_cpu": 400, "plan_mem": 2.0},
    ]
    trace = ingest_json(json.dumps(rows))
    assert len(trace) == 2
    assert trace.tasks[0].cpu == pytest.approx(2.0)  # centi-cores / 100
    # Our own schema object passes through verbatim (already normalized).
    again = ingest_json(trace.to_json())
    assert again.to_json() == trace.to_json()
    with pytest.raises(WorkloadError, match="not JSON"):
        ingest_json("{nope")
    with pytest.raises(WorkloadError, match="expected a schema object"):
        ingest_json('"just a string"')


def test_ingest_custom_column_map():
    text = ("tid,jid,begin,finish,owner\n"
            "a,j1,0,5,alice\n"
            "b,j1,1,9,alice\n")
    config = IngestConfig(columns=ColumnMap(
        task="tid", job="jid", start="begin", end="finish", user="owner"))
    trace = ingest_csv(text, config)
    assert len(trace) == 2
    assert trace.tenants() == ["alice"]


def test_bandwidth_projection_clamps():
    config = IngestConfig()
    assert config.project_bandwidth(0.0, 0.0) == config.min_bandwidth
    assert config.project_bandwidth(1000.0, 0.0) == config.max_bandwidth


def test_load_trace_unknown_format():
    with pytest.raises(WorkloadError, match="unknown trace format"):
        load_trace(FIXTURE, fmt="parquet")


# -- synthesizer -------------------------------------------------------------


def test_synth_is_byte_deterministic():
    config = SynthTraceConfig(seed=7, tasks=400, tenants=32, horizon=4.0)
    assert (synthesize_trace(config).to_json()
            == synthesize_trace(config).to_json())


def test_synth_seeds_diverge():
    a = synthesize_trace(SynthTraceConfig(seed=1, tasks=200, horizon=4.0))
    b = synthesize_trace(SynthTraceConfig(seed=2, tasks=200, horizon=4.0))
    assert a.to_json() != b.to_json()


def test_synth_honors_config_shape():
    config = SynthTraceConfig(seed=3, tasks=500, tenants=16, horizon=5.0)
    trace = synthesize_trace(config)
    assert len(trace) == 500
    assert len(trace.tenants()) <= 16
    for task in trace:
        assert 0.0 <= task.arrival
        assert task.duration > 0
        lo = min(config.small_bandwidth[0], config.large_bandwidth[0])
        hi = max(config.small_bandwidth[1], config.large_bandwidth[1])
        assert lo <= task.bandwidth <= hi
    # Emitted version tag matches the schema the readers enforce.
    assert json.loads(trace.to_json())["schema"] == SCHEMA_VERSION


def test_synth_round_trips_through_schema():
    trace = synthesize_trace(SynthTraceConfig(seed=5, tasks=150,
                                              horizon=3.0))
    assert ClusterTrace.from_json(trace.to_json()).to_json() \
        == trace.to_json()
