"""Directional caps, counters, and rates: the full-duplex enforcement API."""

import pytest

from repro.topology import shortest_path
from repro.units import Gbps


def paths(net):
    fwdish = shortest_path(net.topology, "nic0", "dimm0-0")
    revish = shortest_path(net.topology, "dimm0-0", "nic0")
    return fwdish, revish


def direction_of(net, path, link_id):
    """The fwd/rev tag this path uses when crossing link_id."""
    link = net.topology.link(link_id)
    index = path.links.index(link_id)
    return "fwd" if path.devices[index] == link.src else "rev"


class TestDirectionalCaps:
    def test_cap_binds_only_its_direction(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        inbound = net.start_transfer("t", into)
        outbound = net.start_transfer("t", outof)
        d = direction_of(net, into, "pcie-nic0")
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(16), direction=d)
        assert inbound.current_rate == pytest.approx(Gbps(16), rel=1e-6)
        assert outbound.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_aggregate_cap_binds_both(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        inbound = net.start_transfer("t", into)
        outbound = net.start_transfer("t", outof)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(16))
        assert inbound.current_rate + outbound.current_rate == \
            pytest.approx(Gbps(16), rel=1e-6)

    def test_directional_and_aggregate_coexist(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        inbound = net.start_transfer("t", into)
        outbound = net.start_transfer("t", outof)
        d = direction_of(net, into, "pcie-nic0")
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(8), direction=d)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(12))  # aggregate
        assert inbound.current_rate <= Gbps(8) * (1 + 1e-6)
        assert inbound.current_rate + outbound.current_rate <= \
            Gbps(12) * (1 + 1e-6)

    def test_clear_directional_cap(self, minimal_net):
        net = minimal_net
        into, _ = paths(net)
        flow = net.start_transfer("t", into)
        d = direction_of(net, into, "pcie-nic0")
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(8), direction=d)
        assert flow.current_rate == pytest.approx(Gbps(8), rel=1e-6)
        net.clear_tenant_link_cap("t", "pcie-nic0", direction=d)
        assert flow.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_clear_tenant_caps_clears_all_directions(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        inbound = net.start_transfer("t", into)
        outbound = net.start_transfer("t", outof)
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(4), direction="fwd")
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(4), direction="rev")
        net.clear_tenant_caps("t")
        assert inbound.current_rate == pytest.approx(Gbps(256), rel=1e-6)
        assert outbound.current_rate == pytest.approx(Gbps(256), rel=1e-6)

    def test_invalid_direction_rejected(self, minimal_net):
        with pytest.raises(ValueError):
            minimal_net.set_tenant_link_cap("t", "pcie-nic0", Gbps(1),
                                            direction="sideways")

    def test_cap_query_by_direction(self, minimal_net):
        net = minimal_net
        net.set_tenant_link_cap("t", "pcie-nic0", Gbps(8), direction="fwd")
        assert net.tenant_link_cap("t", "pcie-nic0", "fwd") == \
            pytest.approx(Gbps(8))
        assert net.tenant_link_cap("t", "pcie-nic0", "rev") is None
        assert net.tenant_link_cap("t", "pcie-nic0") is None


class TestDirectionalQueries:
    def test_tenant_link_rate_by_direction(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        net.start_transfer("t", into, demand=Gbps(10))
        net.start_transfer("t", outof, demand=Gbps(20))
        d_in = direction_of(net, into, "pcie-nic0")
        d_out = "rev" if d_in == "fwd" else "fwd"
        assert net.tenant_link_rate("t", "pcie-nic0", d_in) == \
            pytest.approx(Gbps(10), rel=1e-6)
        assert net.tenant_link_rate("t", "pcie-nic0", d_out) == \
            pytest.approx(Gbps(20), rel=1e-6)
        assert net.tenant_link_rate("t", "pcie-nic0") == \
            pytest.approx(Gbps(30), rel=1e-6)

    def test_link_rate_by_direction(self, minimal_net):
        net = minimal_net
        into, outof = paths(net)
        net.start_transfer("a", into, demand=Gbps(10))
        net.start_transfer("b", outof, demand=Gbps(20))
        total = net.link_rate("pcie-nic0")
        fwd = net.link_rate("pcie-nic0", "fwd")
        rev = net.link_rate("pcie-nic0", "rev")
        assert fwd + rev == pytest.approx(total)
        assert {round(fwd / Gbps(10)), round(rev / Gbps(10))} == {1, 2}
