"""Edge cases across the resource-management pipeline."""

import pytest

from repro.core import (
    HostNetworkManager,
    compute_caps,
    hose,
    interpret,
    migrate_tenant,
    pipe,
)
from repro.sim import Engine, FabricNetwork
from repro.topology import epyc_like_1s, minimal_host
from repro.units import Gbps


class TestHoseEdges:
    def test_hose_on_single_socket_host(self):
        """EPYC-like host: hose anchors resolve without a second socket."""
        topology = epyc_like_1s()
        compiled = interpret(topology, hose("h", "t", "gpu0", Gbps(20)))
        assert compiled.candidates
        dsts = {p.dst for c in compiled.candidates for p in c.paths}
        assert any(d.startswith("dimm0") for d in dsts)
        assert "external" in dsts

    def test_hose_from_nic_excludes_self_as_anchor(self):
        topology = minimal_host()
        compiled = interpret(topology, hose("h", "t", "nic0", Gbps(20)))
        for candidate in compiled.candidates:
            for path in candidate.paths:
                assert path.dst != "nic0"

    def test_hose_virtual_view(self):
        network = FabricNetwork(minimal_host(), Engine())
        manager = HostNetworkManager(network, decision_latency=0.0)
        manager.submit(hose("h", "t", "nic0", Gbps(20)))
        view = manager.tenant_view("t")
        # the hose reserves both directions; visible capacity is the
        # busier direction's reservation
        assert view.allocated_capacity("pcie-nic0") == \
            pytest.approx(Gbps(20))

    def test_hose_migrates_between_shapes(self):
        source_net = FabricNetwork(minimal_host(), Engine())
        destination_net = FabricNetwork(epyc_like_1s(), Engine())
        source = HostNetworkManager(source_net, decision_latency=0.0)
        destination = HostNetworkManager(destination_net,
                                         decision_latency=0.0)
        source.submit(hose("h", "t", "nic0", Gbps(20)))
        result = migrate_tenant(source, destination, "t")
        assert result.complete
        assert destination.intents_of("t")[0].kind.value == "hose"


class TestComputeCapsAblationFlags:
    FLOORS = {"owner": 40.0}

    def test_lending_flag_off_reserves_hard(self):
        caps = compute_caps(
            capacity=100.0, floors=self.FLOORS,
            usages={"owner": 0.0, "worker": 90.0}, best_effort={"worker"},
            work_conserving=True, lend_parked_floors=False,
        )
        assert caps["worker"] <= 60.0 + 2.0

    def test_lending_flag_on_lends(self):
        caps = compute_caps(
            capacity=100.0, floors=self.FLOORS,
            usages={"owner": 0.0, "worker": 90.0}, best_effort={"worker"},
            work_conserving=True, lend_parked_floors=True,
        )
        assert caps["worker"] > 80.0

    def test_equal_split_ignores_demand(self):
        caps = compute_caps(
            capacity=100.0, floors=self.FLOORS,
            usages={"owner": 40.0, "hungry": 55.0, "mouse": 2.0},
            best_effort={"hungry", "mouse"},
            work_conserving=True, demand_aware=False,
        )
        assert caps["hungry"] == pytest.approx(caps["mouse"])

    def test_demand_aware_follows_demand(self):
        caps = compute_caps(
            capacity=100.0, floors=self.FLOORS,
            usages={"owner": 40.0, "hungry": 55.0, "mouse": 2.0},
            best_effort={"hungry", "mouse"},
            work_conserving=True, demand_aware=True,
        )
        assert caps["hungry"] > 2 * caps["mouse"]

    def test_floors_inviolable_in_every_variant(self):
        for lending in (True, False):
            for aware in (True, False):
                caps = compute_caps(
                    capacity=100.0, floors=self.FLOORS,
                    usages={"owner": 40.0, "worker": 60.0},
                    best_effort={"worker"}, work_conserving=True,
                    lend_parked_floors=lending, demand_aware=aware,
                )
                assert caps["owner"] >= 40.0, (lending, aware)


class TestManagerMisc:
    def test_register_twice_is_idempotent(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        manager.register_tenant("t")
        manager.register_tenant("t")
        assert "t" in manager.tenants

    def test_shutdown_then_resubmission_fails_cleanly(self, cascade_net):
        manager = HostNetworkManager(cascade_net, decision_latency=0.0)
        manager.submit(pipe("p", "t", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(10)))
        manager.shutdown()
        # floors are still booked in the ledger; a duplicate id is refused
        from repro.errors import AdmissionError

        with pytest.raises(AdmissionError):
            manager.submit(pipe("p", "t", src="nic0", dst="dimm0-0",
                                bandwidth=Gbps(10)))

    def test_intent_exactly_filling_headroom(self, minimal_net):
        manager = HostNetworkManager(minimal_net, headroom=1.0,
                                     decision_latency=0.0)
        # exactly the bottleneck capacity fits at headroom 1.0
        placement = manager.submit(
            pipe("p", "t", src="nic0", dst="dimm0-0",
                 bandwidth=Gbps(256))
        )
        assert placement is not None
