"""Latency-observability overhead: the <=2% sampled-probe contract.

DESIGN.md §16 and ISSUE satellite: continuous latency probing must be
cheap enough to leave on — the paper's cited line-rate histogram work
("Waiting at the front door") leans on *sampling* to bound overhead, and
``SloConfig``'s ``probe_period``/``sample_stride`` knobs are that bound.
This file holds the line in CI:

* ``test_slo_enabled_overhead`` — the floor assert.  The 16-host seeded
  churn run with a sampled probe config (period 20 ms, stride 8) must
  stay within **2%** of the identical run without SLO.  Measurement
  design matters more than the number here: whole-run wall-clock A/B on
  a busy CI box swings ±3-4%, far above the contract, so the harness
  (a) drives two *long-lived* fleets through the same pre-generated
  event stream in small interleaved time slices, so CPU-frequency and
  allocator epochs hit both sides equally (fleet construction and
  teardown allocation storms stay outside the timed region),
  (b) accumulates ``time.process_time`` (background steals don't
  count), and (c) takes the minimum overhead over three independent
  trials (noise only ever inflates a trial).
* ``test_slo_disabled_is_free`` — the ~0% disabled claim, asserted
  structurally: a fleet built without ``slo=`` arms no probes, builds
  no monitor, and its advance path reduces to one ``is not None`` test
  per boundary, so the disabled run *is* the baseline the enabled gate
  compares against.
* timed benchmarks for the regression-gate artifact
  (``compare_benchmarks.py`` at 20% tolerance): the SLO-enabled churn
  run and the end-to-end seeded latency-regression scenario
  (detection -> alert -> cross-host migration), so the closed loop's
  absolute cost stays on the perf trajectory.

The gate's probe bound is deliberately loose (5 ms): alerts firing
would drag closed-loop *remediation* work (quarantine, migration) into
what must measure pure observability cost.
"""

import gc
import time

from repro.fleet import Fleet, FleetChurnConfig, run_churn
from repro.fleet.workload import generate_events
from repro.slo import LatencyRegressionConfig, SloConfig, run_latency_regression
from repro.units import us

HOSTS = 16
MAX_ATTEMPTS = 4
#: Same shape as bench_fleet_placement.py's CHURN run.
CHURN = FleetChurnConfig(seed=0, horizon=0.12, arrival_rate=4000.0,
                         mean_holding=0.05)
#: The sampled operating point the <=2% contract is quoted at.  The
#: bound is far above observed latencies so no alerts fire (see module
#: docstring); the knob ladder down to dense probing is in
#: EXPERIMENTS.md E19.
GATE_SLO = SloConfig.default(bound=us(5000), probe_period=0.02,
                             sample_stride=8)
OVERHEAD_LIMIT = 0.02
SCENARIO = LatencyRegressionConfig(seed=0, hosts=4, horizon=0.08,
                                   arrival_rate=1500.0)


def _build(slo):
    return Fleet("cascade_lake_2s", hosts=HOSTS, policy="best-fit",
                 clock="event", max_attempts=MAX_ATTEMPTS, slo=slo)


def _churn_with_slo(slo):
    fleet = _build(slo)
    try:
        report = run_churn(fleet, CHURN)
        assert report.submitted > 300  # the workload actually ran
        if slo is not None:
            assert fleet.slo.histogram().total > 0  # probes actually ran
        return report.rejection_rate
    finally:
        fleet.shutdown()


def _sliced_overhead(slices=40):
    """One trial: interleaved-slice CPU-time overhead of GATE_SLO."""
    base, enabled = _build(None), _build(GATE_SLO)
    try:
        events = generate_events(CHURN, base)
        size = (len(events) + slices - 1) // slices
        chunks = [events[i * size:(i + 1) * size] for i in range(slices)]
        gc.collect()
        t_base = t_enabled = 0.0
        for chunk in chunks:
            t0 = time.process_time()
            _drive_chunk(base, chunk)
            t_base += time.process_time() - t0
            t0 = time.process_time()
            _drive_chunk(enabled, chunk)
            t_enabled += time.process_time() - t0
        assert enabled.slo.histogram().total > 0  # probes actually ran
        assert not enabled.slo.alerts  # pure observability cost
        return t_enabled / t_base - 1.0
    finally:
        base.shutdown()
        enabled.shutdown()


def _drive_chunk(fleet, chunk):
    for t, _seq, kind, payload in chunk:
        fleet.advance_to(t)
        if kind == "arrive":
            fleet.try_submit(payload)
        elif fleet.scheduler.has_intent(payload):
            fleet.release(payload)


def test_slo_enabled_overhead():
    """CI-enforced contract: sampled-probe overhead <= 2% on churn."""
    _sliced_overhead(slices=4)  # warm both paths outside the trials
    overheads = [_sliced_overhead() for _ in range(3)]
    best = min(overheads)
    assert best <= OVERHEAD_LIMIT, (
        f"SLO-enabled churn is {best * 100:.2f}% slower than the "
        f"identical run without slo= (trials: "
        f"{[f'{o * 100:.2f}%' for o in overheads]}); the sampled probe "
        f"config (period={GATE_SLO.probe_period}s, "
        f"stride={GATE_SLO.sample_stride}) must stay within "
        f"{OVERHEAD_LIMIT * 100:.0f}%"
    )


def test_slo_disabled_is_free():
    """Without ``slo=`` nothing is armed: no monitor, no probes, no
    per-boundary work beyond one None test — the disabled run is
    literally the enabled gate's baseline."""
    fleet = _build(None)
    try:
        assert fleet.slo is None
        for _host_id, host in fleet.hosts():
            assert host.slo_probe is None
    finally:
        fleet.shutdown()


def test_slo_enabled_churn_16_hosts(benchmark):
    """Absolute cost of the SLO-enabled churn run (for the 20% gate)."""
    benchmark.extra_info["probe_period"] = GATE_SLO.probe_period
    benchmark.extra_info["sample_stride"] = GATE_SLO.sample_stride
    rate = benchmark.pedantic(_churn_with_slo, args=(GATE_SLO,),
                              rounds=2, iterations=1)
    baseline = _churn_with_slo(None)
    assert rate == baseline, (
        f"arming slo= changed the churn outcome: rejection rate "
        f"{rate:.4%} vs {baseline:.4%} without probes — observability "
        f"must not perturb placement"
    )


def test_latency_regression_scenario(benchmark):
    """End-to-end closed loop: seeded degrade -> burn-rate alert ->
    cross-host migration (EXPERIMENTS.md E19's timed run)."""
    report = benchmark.pedantic(run_latency_regression, args=(SCENARIO,),
                                rounds=2, iterations=1)
    assert report.alerts, "the seeded regression must fire alerts"
    assert report.first_migration_time is not None, (
        "latency alerts must close the loop into cross-host migration"
    )
