"""Ablation — which arbiter design choices actually matter?

DESIGN.md commits to three allocation-rule decisions: demand-aware
water-filling of the spare, ElasticSwitch-style lending of parked floors,
and (from intents) SLO utilization ceilings.  This ablation turns the
first two off one at a time on a fixed scenario and reports what each
buys:

* scenario A (work conservation): a guaranteed-but-idle tenant plus one
  best-effort tenant pushing hard — can the fabric stay busy?
* scenario B (demand awareness): a guaranteed tenant at its floor plus a
  demanding best-effort tenant — does the spare reach who wants it?
* scenario C (safety): a bursty guaranteed tenant vs a 16-flow aggressor —
  what does lending cost in floor violations?

Expected shape: lending is what keeps scenario A busy (~2x goodput);
demand awareness is what fills scenario B (equal split strands ~45%);
scenario C shows lending's price — a bounded violation window — which the
SLO ceiling and fast arbitration keep small.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.core import DynamicArbiter
from repro.sim.rng import make_rng
from repro.topology import shortest_path
from repro.units import Gbps, ms, to_Gbps

VARIANTS = [
    ("full", dict(lend_parked_floors=True, demand_aware=True)),
    ("no-lending", dict(lend_parked_floors=False, demand_aware=True)),
    ("equal-split", dict(lend_parked_floors=True, demand_aware=False)),
    ("neither", dict(lend_parked_floors=False, demand_aware=False)),
]

FLOOR = Gbps(100)


def build(variant_kwargs):
    network = fresh_network()
    arbiter = DynamicArbiter(network, period=ms(0.5), decision_latency=0.0,
                             work_conserving=True, **variant_kwargs)
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    for link_id in path.links:
        arbiter.add_floor("owner", link_id, FLOOR)
    arbiter.register_best_effort("worker")
    arbiter.start()
    return network, arbiter, path


def scenario_idle_owner(variant_kwargs):
    """Owner idle; worker elastic: achieved worker rate (work conservation)."""
    network, _arbiter, path = build(variant_kwargs)
    worker = network.start_transfer("worker", path)
    network.engine.run_until(0.05)
    return to_Gbps(worker.current_rate)

def scenario_active_owner(variant_kwargs):
    """Owner at floor; worker elastic: worker rate (demand awareness)."""
    network, _arbiter, path = build(variant_kwargs)
    owner = network.start_transfer("owner", path, demand=FLOOR)
    worker = network.start_transfer("worker", path)
    network.engine.run_until(0.05)
    assert owner.current_rate >= FLOOR * 0.98
    return to_Gbps(worker.current_rate)


def scenario_bursty_owner(variant_kwargs):
    """Owner bursts on/off vs a 16-flow worker: violation fraction."""
    network, _arbiter, path = build(variant_kwargs)
    owner = network.start_transfer("owner", path, demand=FLOOR)
    for _ in range(16):
        network.start_transfer("worker", path)
    state = {"active": True}
    rng = make_rng(5)

    def flip():
        state["active"] = not state["active"]
        network.set_flow_demand(owner.flow_id,
                                FLOOR if state["active"] else 0.0)

    network.engine.schedule_every(ms(2), flip, jitter=ms(2), rng=rng)
    samples = violated = 0
    t = 0.0
    while t < 0.25:
        t += ms(0.1)
        network.engine.run_until(t)
        if state["active"]:
            samples += 1
            if owner.current_rate < FLOOR * 0.95:
                violated += 1
    return violated / samples


def run_experiment():
    rows = []
    results = {}
    for name, kwargs in VARIANTS:
        idle_rate = scenario_idle_owner(kwargs)
        active_rate = scenario_active_owner(kwargs)
        violations = scenario_bursty_owner(kwargs)
        results[name] = (idle_rate, active_rate, violations)
        rows.append([name, f"{idle_rate:.0f}", f"{active_rate:.0f}",
                     f"{violations:.1%}"])
    print_table(
        "Ablation: arbiter allocation-rule variants "
        "(floor 100 Gbps on a 256 Gbps path)",
        ["variant", "worker Gbps (owner idle)",
         "worker Gbps (owner at floor)", "floor violations (bursty)"],
        rows,
    )
    return results


def test_bench_ablation_arbiter(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    full = r["full"]
    no_lending = r["no-lending"]
    equal_split = r["equal-split"]
    # lending is what keeps the fabric busy when the owner idles
    assert full[0] > 1.5 * no_lending[0]
    # demand awareness is what fills the spare when the owner is active
    assert full[1] > 1.3 * equal_split[1]
    # lending's price: more violations than hard reservations...
    assert full[2] >= no_lending[2]
    # ...but bounded by the one-round reclaim window at fast arbitration
    assert full[2] < 0.35


if __name__ == "__main__":
    run_experiment()
