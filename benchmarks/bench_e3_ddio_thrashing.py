"""E3 — DDIO cache thrashing converts PCIe load into memory-bus load (§2).

Sweeps the aggregate inbound device-write rate through the LLC I/O ways
and reports hit rate and the extra memory-bus bandwidth thrashing causes,
for DDIO {2, 4, 8 ways, disabled}.  Also shows the end-to-end effect: the
extra memory-bus traffic is injected into the simulated fabric and the
resulting memory-bus utilization measured.

Expected shape: a sharp knee at ``ways x way_size / consume_delay``; more
ways push the knee right; DDIO-off pays the 2x memory-bus tax at every
rate (the Lamda [37] observation).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.devices import DdioCache
from repro.topology import shortest_path
from repro.units import GBps, to_GBps, us

#: Mean delay between DMA landing and the application consuming it.
CONSUME_DELAY = us(100)

SWEEP = [GBps(5), GBps(15), GBps(30), GBps(60), GBps(120)]


def run_fabric_effect(extra_membus_rate):
    """Inject thrashing traffic into the fabric; return membus utilization."""
    network = fresh_network()
    path = shortest_path(network.topology, "socket0", "dimm0-0")
    if extra_membus_rate > 0:
        network.start_transfer("_thrash", path, demand=extra_membus_rate)
    return network.link_utilization("membus0-0")


def run_experiment():
    configs = {
        "ddio-2w": DdioCache(ways=2),
        "ddio-4w": DdioCache(ways=4),
        "ddio-8w": DdioCache(ways=8),
        "ddio-off": DdioCache(enabled=False),
    }
    rows = []
    results = {}
    for name, cache in configs.items():
        for rate in SWEEP:
            report = cache.steady_state(rate, CONSUME_DELAY)
            membus_util = run_fabric_effect(report.membus_extra_rate)
            key = (name, round(to_GBps(rate)))
            results[key] = (report.hit_rate, report.membus_extra_rate,
                            membus_util)
            rows.append([
                name,
                f"{to_GBps(rate):.0f}",
                f"{report.hit_rate:.2f}",
                f"{to_GBps(report.membus_extra_rate):.1f}",
                f"{membus_util:.1%}",
            ])
    print_table(
        "E3: DDIO thrashing vs inbound DMA rate "
        f"(consume delay {CONSUME_DELAY * 1e6:.0f}us)",
        ["config", "io rate (GBps)", "hit rate", "extra membus (GBps)",
         "membus util"],
        rows,
    )
    return results


def test_bench_e3(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # knee: 2-way cache is clean at 5 GBps, thrashing at 120 GBps
    assert r[("ddio-2w", 5)][0] == 1.0
    assert r[("ddio-2w", 120)][0] < 0.5
    # more ways push the knee right
    assert r[("ddio-8w", 60)][0] > r[("ddio-2w", 60)][0]
    # DDIO off pays the full 2x tax at every rate
    assert r[("ddio-off", 5)][1] > 0
    assert r[("ddio-off", 120)][1] >= r[("ddio-2w", 120)][1]
    # thrashing shows up as real memory-bus utilization
    assert r[("ddio-off", 120)][2] > r[("ddio-off", 5)][2]


if __name__ == "__main__":
    run_experiment()
