"""E12 — RDMA NIC connection-cache thrashing (§2, Kong et al. [32]).

Sweeps the number of active RDMA connections through the NIC's on-chip
connection-state cache and reports achievable goodput, per-message latency,
and the extra PCIe traffic of context refetches — then injects that extra
traffic into the simulated fabric to show the second-order effect: the
NIC's *own* cache misses congest the PCIe link for everyone sharing it.

Expected shape: goodput flat while connections fit in cache (1024
entries), then a cliff; miss-induced PCIe traffic grows past the cliff and
measurably raises the victim's path utilization.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.devices import RdmaNicModel
from repro.devices.pcie import effective_pcie_bandwidth
from repro.topology import shortest_path
from repro.units import Gbps, kib, to_Gbps, to_us

CONNECTIONS = [64, 512, 1024, 2048, 8192, 32768]
MESSAGE_SIZE = kib(4)


def run_point(nic, active_connections):
    pcie = effective_pcie_bandwidth(Gbps(256), int(MESSAGE_SIZE))
    goodput = nic.goodput(MESSAGE_SIZE, active_connections, pcie)
    latency = nic.message_latency(active_connections)
    message_rate = goodput / MESSAGE_SIZE
    extra_pcie = nic.extra_pcie_rate(message_rate, active_connections)

    # second-order effect: the refetch traffic congests the shared link
    network = fresh_network()
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    network.start_transfer("nic-refetch", path, demand=extra_pcie + 1.0)
    network.start_transfer("nic-payload", path, demand=goodput)
    victim_latency = network.path_latency(path, 64.0)
    return {
        "goodput": goodput,
        "latency": latency,
        "extra_pcie": extra_pcie,
        "victim_latency": victim_latency,
    }


def run_experiment():
    nic = RdmaNicModel("nic0")
    rows = []
    results = {}
    for connections in CONNECTIONS:
        r = run_point(nic, connections)
        results[connections] = r
        rows.append([
            connections,
            f"{to_Gbps(r['goodput']):.1f}",
            f"{to_us(r['latency']):.2f}",
            f"{to_Gbps(r['extra_pcie']):.1f}",
            f"{to_us(r['victim_latency']):.2f}",
        ])
    print_table(
        f"E12: RDMA NIC vs active connections "
        f"(cache: {nic.connection_cache.entries} entries, 4KiB messages)",
        ["connections", "goodput (Gbps)", "msg latency (us)",
         "miss PCIe (Gbps)", "victim 1-way (us)"],
        rows,
    )
    return results


def test_bench_e12(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    cache = RdmaNicModel("nic0").connection_cache.entries
    # flat region while the working set fits
    assert r[64]["goodput"] == r[cache]["goodput"]
    # the cliff: 32x overflow loses most of the goodput
    assert r[32 * cache]["goodput"] < 0.5 * r[cache]["goodput"]
    # miss traffic appears only past the cliff and grows
    assert r[cache]["extra_pcie"] == 0.0
    assert r[32 * cache]["extra_pcie"] > 0.0
    # latency rises past the cliff
    assert r[32 * cache]["latency"] > 2 * r[cache]["latency"]
    # past the cliff, refetches are a large fraction of all PCIe traffic
    # (bandwidth spent moving page tables instead of payload)
    overflow = r[32 * cache]
    waste = overflow["extra_pcie"] / (overflow["extra_pcie"]
                                      + overflow["goodput"])
    assert waste > 0.3


if __name__ == "__main__":
    run_experiment()
