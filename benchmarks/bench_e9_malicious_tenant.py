"""E9 — a malicious tenant sweeps its attack intensity (§2).

"Tenants may maliciously exhaust intra-host network fabric resources and
impair others."  The attacker opens 1..64 elastic flows across the
victim's NIC->memory path (more flows = bigger max-min share, no single
flow abnormal).  The victim is a KV store with a 50 Gbps pipe guarantee
under hostnet; per policy and intensity we report victim p99 latency and
attacker achieved bandwidth.

Expected shape: unmanaged victim p99 grows with flow count without bound
(fair share shrinks as 1/N); static partition and hostnet pin the victim
p99 flat; hostnet additionally leaves the attacker all non-guaranteed
bandwidth (work conservation), where static strands it.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.baselines import (
    HostnetPolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
)
from repro.core import pipe
from repro.units import Gbps, to_Gbps, to_us
from repro.workloads import KvStoreApp, MaliciousFloodApp

FLOW_COUNTS = [1, 4, 16, 64]
TENANTS = ["kv", "evil"]


from repro.units import us

#: The KV tenant's round-trip latency SLO; the manager compiles it into
#: per-link utilization ceilings so queueing can't eat the tail.
KV_LATENCY_SLO = us(12)


def intent_factory(tenant):
    if tenant == "kv":
        return [pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(50), latency_slo=KV_LATENCY_SLO,
                     bidirectional=True)]
    return []


def run_point(policy, flow_count):
    from repro.topology import shortest_path

    network = fresh_network()
    policy.setup(network, TENANTS)
    kv = KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
                    request_rate=20_000, seed=2)
    kv.start()
    # the victim's bulk ingest stream: 50 Gbps of offered load whose
    # achieved rate shows the 1/N fair-share collapse directly
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    bulk = network.start_transfer("kv", path, demand=Gbps(50))
    attacker = MaliciousFloodApp(network, "evil", src="nic0", dst="dimm0-0",
                                 flow_count=flow_count)
    attacker.start()
    # 20ms warmup covers arrival ramp and the arbiter's first reactions;
    # measurement starts after it (applied identically to every policy).
    network.engine.run_until(0.02)
    kv.stats.latencies.clear()
    network.engine.run_until(0.2)
    p99 = to_us(kv.stats.latency_summary().p99)
    victim_gbps = to_Gbps(bulk.current_rate)
    attack_rate = to_Gbps(attacker.attack_rate())
    policy.teardown(network, TENANTS)
    return p99, victim_gbps, attack_rate


def run_experiment():
    policies = [
        ("unmanaged", UnmanagedPolicy),
        ("static_partition", StaticPartitionPolicy),
        ("hostnet", lambda: HostnetPolicy(intent_factory,
                                          decision_latency=0.0)),
    ]
    rows = []
    results = {}
    for name, make_policy in policies:
        for flow_count in FLOW_COUNTS:
            p99, victim_gbps, attack_rate = run_point(make_policy(),
                                                      flow_count)
            results[(name, flow_count)] = (p99, victim_gbps, attack_rate)
            rows.append([name, flow_count, f"{p99:.1f}",
                         f"{victim_gbps:.1f}", f"{attack_rate:.1f}"])
    print_table(
        "E9: victim vs attacker flow count "
        "(victim floor 50 Gbps under hostnet)",
        ["policy", "attack flows", "kv p99 (us)", "victim bulk (Gbps)",
         "attack rate (Gbps)"],
        rows,
    )
    return results


def test_bench_e9(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # unmanaged: attack intensity collapses victim goodput toward 1/N
    assert r[("unmanaged", 64)][1] < r[("unmanaged", 1)][1] / 4
    assert r[("unmanaged", 64)][1] < 10.0
    # unmanaged tail is inflated vs protected policies at every intensity
    assert r[("unmanaged", 64)][0] > 2 * r[("hostnet", 64)][0]
    # hostnet honours the latency SLO it admitted (20% slack for jitter)
    assert all(r[("hostnet", n)][0] <= KV_LATENCY_SLO * 1e6 * 1.2
               for n in FLOW_COUNTS)
    # hostnet: victim goodput pinned at its floor regardless of intensity
    assert all(r[("hostnet", n)][1] >= 49.0 for n in FLOW_COUNTS)
    # hostnet stays work-conserving: the attacker is never starved below
    # what static partition strands it with
    assert r[("hostnet", 64)][2] >= r[("static_partition", 64)][2] * 0.95


if __name__ == "__main__":
    run_experiment()
