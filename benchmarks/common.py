"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` regenerates one table/figure from EXPERIMENTS.md.  The
helpers here keep output formatting uniform so the benches read like the
paper's tables, and provide the standard victim/aggressor rigs several
experiments share.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sim import Engine, FabricNetwork
from repro.topology import cascade_lake_2s


def fresh_network(preset=cascade_lake_2s) -> FabricNetwork:
    """A new engine + fabric over *preset* (default: Figure 1's host)."""
    return FabricNetwork(preset(), Engine())


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment table in a fixed-width layout."""
    rendered: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
