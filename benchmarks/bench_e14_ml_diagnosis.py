"""E14 — ML diagnosis over multi-modal telemetry (§3.1 Q3).

"Intra-host networks are more heterogeneous, so the collected data will
have more modalities ... using machine learning may be more essential in
order to leverage these high-modality data for diagnosis."

We generate labelled incidents by injecting each failure class (plus
healthy runs) on seeded hosts under background load, extract feature
vectors spanning the counter and heartbeat modalities, train a
nearest-centroid classifier per modality on the first seeds, and test on
held-out seeds.

Expected shape: the combined-modality classifier is at least as accurate
as either single modality, and strictly better than counters alone —
counters cannot see quiet-link failures, heartbeats alone blur failure
classes that differ mainly in counter signatures.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.monitor import FailureInjector, HostMonitor
from repro.monitor.classifier import (
    MODALITY_MASKS,
    FailureClassifier,
    extract_features,
)
from repro.telemetry import CounterSource
from repro.units import us
from repro.workloads import KvStoreApp, NvmeScanApp

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0", "nic1", "gpu1", "dimm1-0"]
WINDOW = 0.1
TRAIN_SEEDS = range(0, 4)
TEST_SEEDS = range(4, 7)

def _congest(network):
    """Not a failure: a tenant legitimately saturating the NIC path.

    Heartbeat RTTs inflate exactly as under a silent degradation — only
    the counter modality (utilization pinned high, no rate drop) can tell
    overload from hardware failure.
    """
    from repro.workloads import MaliciousFloodApp

    MaliciousFloodApp(network, "hog", src="nic0", dst="dimm0-0",
                      flow_count=16).start()


INCIDENTS = {
    "healthy": lambda inj, net: None,
    "congestion": lambda inj, net: _congest(net),
    "link_degrade": lambda inj, net: inj.degrade_link(
        "pcie-up0", capacity_factor=0.1, extra_latency=us(4)),
    "link_down": lambda inj, net: inj.fail_link("pcie-gpu0"),
    "switch_degrade": lambda inj, net: inj.degrade_switch(
        "pcisw0", capacity_factor=0.1, extra_latency=us(4)),
    "link_flap": lambda inj, net: inj.flap_link("pcie-nvme0", period=0.02),
}


def generate_example(label, seed):
    """One labelled incident: inject, observe a window, extract features."""
    network = fresh_network()
    monitor = HostMonitor(
        network, probers=PROBERS, telemetry_period=0.005,
        heartbeat_period=0.005, source=CounterSource.SOFTWARE, seed=seed,
    )
    monitor.start()
    KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
               request_rate=10_000, seed=seed).start()
    NvmeScanApp(network, "scan", nvme="nvme0", dimm="dimm0-0",
                seed=seed).start()
    network.engine.run_until(WINDOW)  # reference window
    monitor.record_baseline()
    INCIDENTS[label](FailureInjector(network), network)
    network.engine.run_until(2 * WINDOW + WINDOW)  # observation window
    features = extract_features(monitor.store, monitor.heartbeats,
                                window=WINDOW,
                                now=network.engine.now)
    return features


def build_dataset(seeds):
    return [
        (label, generate_example(label, seed))
        for label in INCIDENTS
        for seed in seeds
    ]


def run_experiment():
    train = build_dataset(TRAIN_SEEDS)
    test = build_dataset(TEST_SEEDS)
    rows = []
    results = {}
    for modality in MODALITY_MASKS:
        classifier = FailureClassifier(modality=modality)
        classifier.fit(train)
        accuracy = classifier.accuracy(test)
        confusion = classifier.confusion(test)
        worst = [
            f"{truth}->{predicted}"
            for (truth, predicted), count in sorted(confusion.items())
            if truth != predicted
        ]
        results[modality] = (accuracy, confusion)
        rows.append([
            modality,
            f"{accuracy:.0%}",
            ", ".join(worst[:3]) if worst else "none",
        ])
    print_table(
        f"E14: failure-class diagnosis accuracy by telemetry modality "
        f"({len(TRAIN_SEEDS) * len(INCIDENTS)} train / "
        f"{len(TEST_SEEDS) * len(INCIDENTS)} test incidents)",
        ["modality", "accuracy", "misclassifications"],
        rows,
    )
    return results


def test_bench_e14(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    combined_acc = r["combined"][0]
    counters_acc = r["counters"][0]
    heartbeats_acc = r["heartbeats"][0]
    # the multi-modal classifier dominates both single modalities
    assert combined_acc >= counters_acc
    assert combined_acc >= heartbeats_acc
    # and is strictly better than the counter-only view
    assert combined_acc > counters_acc
    # the combined classifier is actually good, not just relatively good
    assert combined_acc >= 0.8

    # congestion vs degradation is the case needing both modalities:
    # heartbeats alone must confuse them at least once
    hb_confusion = r["heartbeats"][1]
    hb_cross = sum(
        count for (truth, predicted), count in hb_confusion.items()
        if truth != predicted
        and {truth, predicted} & {"congestion", "link_degrade",
                                  "switch_degrade"}
    )
    combined_confusion = r["combined"][1]
    combined_cross = sum(
        count for (truth, predicted), count in combined_confusion.items()
        if truth != predicted
    )
    assert combined_cross <= hb_cross


if __name__ == "__main__":
    run_experiment()
