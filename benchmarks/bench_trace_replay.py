"""Trace replay at fleet scale: the cost of scoring a policy on a trace.

Timed hot paths feeding the regression gate (``compare_benchmarks.py``):

* ingesting the bundled Alibaba-format fixture CSV — the parse +
  normalize + rebase path a real trace file takes;
* synthesizing a 2 000-task trace — the seeded generator the CLI and the
  determinism suite lean on;
* replaying that trace against a 64-host fleet under ``best-fit`` on the
  event-driven clock — the subsystem's macro path (heap-ordered
  arrivals/retries/completions/samples driving placement, release, and
  telemetry sampling).  The replay benchmark publishes ``events`` and
  ``events_per_sec`` through ``extra_info`` so throughput is visible in
  the JSON artifact, not just wall-clock.

The suite also enforces a quality floor in-place: the 64-host replay
must actually exercise contention (retries happen, some utilization
samples run hot) while still admitting the large majority of tasks —
a change that silently breaks retry scheduling or telemetry sampling
shows up here as a red build.
"""

import os

from repro.fleet import Fleet
from repro.workloads.cluster_traces import (
    IngestConfig,
    ReplayConfig,
    SynthTraceConfig,
    load_trace,
    replay_trace,
    synthesize_trace,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "..", "tests",
                       "fixtures", "alibaba_batch_task_sample.csv")

HOSTS = 64
MAX_ATTEMPTS = 8

#: ~2k tasks keeps the 64-host replay a few seconds on a CI runner while
#: still driving enough contention for retries and a busy utilization
#: tail (the 10k-task acceptance run lives in the CLI, not the gate).
SYNTH = SynthTraceConfig(seed=0, tasks=2_000, tenants=96, horizon=8.0)

#: The trace is built once: every timed round replays byte-identical
#: load, and synthesis is timed separately below.
TRACE = synthesize_trace(SYNTH)


def test_trace_ingest_fixture_csv(benchmark):
    trace = benchmark(load_trace, FIXTURE,
                      IngestConfig(time_scale=0.05))
    assert len(trace) == 33


def test_trace_synth_2000_tasks(benchmark):
    trace = benchmark.pedantic(synthesize_trace, args=(SYNTH,),
                               rounds=2, iterations=1)
    assert len(trace) == SYNTH.tasks
    assert trace.to_json() == TRACE.to_json()  # seeded: byte-identical


def test_trace_replay_64_hosts_best_fit(benchmark):
    def replay_once():
        fleet = Fleet("cascade_lake_2s", hosts=HOSTS, policy="best-fit",
                      max_attempts=MAX_ATTEMPTS)
        try:
            return replay_trace(fleet, TRACE, ReplayConfig())
        finally:
            fleet.shutdown()

    report = benchmark.pedantic(replay_once, rounds=2, iterations=1)

    # Throughput, visible in the JSON artifact alongside wall-clock.
    events = report.trace_events + report.host_events
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = round(
        events / benchmark.stats.stats.mean)

    # Quality floor: the replay must be contended but not collapsing.
    assert report.submitted == SYNTH.tasks
    assert report.retries > 0, "no retries: the workload is uncontended"
    assert report.rejection_rate < 0.2, (
        f"64 hosts rejecting {report.rejection_rate:.1%} of the gate "
        f"trace — admission or retry scheduling has regressed"
    )
    assert report.released == report.admitted
    assert len(report.utilization_samples) == ReplayConfig().samples * HOSTS
