"""E15 — CXL vs PCIe device-to-memory paths (§2, [49]).

"Compute Express Link (CXL) exposes memory in devices as remote memory in
a NUMA system, and it enables devices to directly access host local memory
through a cache coherence interface.  These features provide a more
flexible memory model and reduce the overhead (e.g., with a latency of
~150ns from device to host memory)."

On the ``cxl_host`` preset we compare a CXL-attached device against a
PCIe-attached GPU for host-memory access, idle and under a PCIe-fabric
storm (RDMA loopback saturating the root-complex path):

Expected shape: CXL's idle device-to-memory latency lands at the paper's
~150 ns (vs ~205 ns over PCIe); under the storm the PCIe path's latency
inflates by an order of magnitude while the CXL path — which bypasses the
PCIe fabric entirely — is untouched.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import print_table

from repro.diagnostics import hostperf, hostping
from repro.sim import Engine, FabricNetwork
from repro.topology import cxl_host
from repro.units import ns, to_Gbps
from repro.workloads import RdmaLoopbackApp

PATHS = {
    "cxl": ("cxl0", "dimm0-0"),
    "pcie": ("gpu0", "dimm0-0"),
}


def measure(network, src, dst):
    ping = hostping(network, src, dst, count=5)
    one_way = ping.summary.p50 / 2.0
    perf = hostperf(network, src, dst, duration=0.01)
    return one_way, perf.achieved_rate


def run_experiment():
    network = FabricNetwork(cxl_host(), Engine())
    rows = []
    results = {}
    idle = {
        name: measure(network, src, dst)
        for name, (src, dst) in PATHS.items()
    }
    # PCIe-fabric storm: GPUDirect loopback saturating the GPU's PCIe
    # attachment (the device the PCIe path under test hangs off).
    storm = RdmaLoopbackApp(network, "storm", nic="nic0", dimm="gpu0",
                            streams=4)
    storm.start()
    loaded = {
        name: measure(network, src, dst)
        for name, (src, dst) in PATHS.items()
    }
    for name in PATHS:
        idle_latency, idle_bw = idle[name]
        storm_latency, _ = loaded[name]
        results[name] = (idle_latency, storm_latency, idle_bw)
        rows.append([
            name,
            f"{idle_latency * 1e9:.0f}",
            f"{storm_latency * 1e9:.0f}",
            f"{storm_latency / idle_latency:.1f}x",
            f"{to_Gbps(idle_bw):.0f}",
        ])
    print_table(
        "E15: device-to-host-memory access, CXL vs PCIe "
        "(idle and under a PCIe-fabric storm)",
        ["attach", "idle 1-way (ns)", "storm 1-way (ns)", "inflation",
         "idle bandwidth (Gbps)"],
        rows,
    )
    return results


def test_bench_e15(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    cxl_idle, cxl_storm, cxl_bw = r["cxl"]
    pcie_idle, pcie_storm, _ = r["pcie"]
    # the paper's ~150ns device-to-memory claim (ours is simulated spec)
    assert ns(120) <= cxl_idle <= ns(180)
    # CXL beats PCIe idle latency
    assert cxl_idle < pcie_idle
    # the storm wrecks the PCIe path but not the CXL path
    assert pcie_storm > 3 * pcie_idle
    assert cxl_storm <= cxl_idle * 1.1


if __name__ == "__main__":
    run_experiment()
