"""E10 — virtualized abstraction and zero-reconfiguration migration (§3.2).

A tenant holding a pipe + hose guarantee bundle is migrated between host
shapes (cascade -> DGX -> EPYC) and onto increasingly loaded destinations.
Reported: migration success, whether the tenant-visible guarantees were
bit-identical after the move, and isolation on the destination (victim
rate under attack right after landing).

Expected shape: migrations succeed with identical tenant-visible
guarantees whenever the destination has capacity (no tenant-side
reconfiguration, across *different* topologies); when the destination is
too full, the migration fails atomically (source left intact).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import print_table

from repro.core import HostNetworkManager, hose, migrate_tenant, pipe
from repro.sim import Engine, FabricNetwork
from repro.topology import (
    cascade_lake_2s,
    dgx_like,
    epyc_like_1s,
    shortest_path,
)
from repro.units import Gbps, to_Gbps

DEST_SHAPES = [("cascade", cascade_lake_2s), ("dgx", dgx_like),
               ("epyc", epyc_like_1s)]


def build_manager(preset, background_load_gbps=0.0):
    network = FabricNetwork(preset(), Engine())
    manager = HostNetworkManager(network, decision_latency=0.0)
    if background_load_gbps:
        manager.submit(pipe("bg", "bg-tenant", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(background_load_gbps)))
    return manager


def source_with_tenant():
    manager = build_manager(cascade_lake_2s)
    manager.submit(pipe("front", "acme", src="nic0", dst="dimm0-0",
                        bandwidth=Gbps(60)))
    manager.submit(hose("feed", "acme", endpoint="gpu0",
                        bandwidth=Gbps(30)))
    return manager


def post_landing_isolation(manager):
    """Victim rate under an 8-flow attack on the destination."""
    network = manager.network
    manager.register_tenant("evil")
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    victim = network.start_transfer("acme", path, demand=Gbps(60))
    for _ in range(8):
        network.start_transfer("evil", path)
    network.engine.run_until(network.engine.now + 0.03)
    return to_Gbps(victim.current_rate)


def run_experiment():
    rows = []
    results = {}
    for dest_name, preset in DEST_SHAPES:
        source = source_with_tenant()
        destination = build_manager(preset)
        outcome = migrate_tenant(source, destination, "acme")
        preserved = (
            outcome.complete
            and outcome.destination_view.guaranteed_bandwidth()
            == outcome.source_view.guaranteed_bandwidth()
        )
        isolation = post_landing_isolation(destination) if outcome.complete \
            else float("nan")
        results[dest_name] = (outcome.complete, preserved, isolation)
        rows.append([f"cascade -> {dest_name}", outcome.complete,
                     preserved, f"{isolation:.1f}"])

    # overloaded destination: migration must fail atomically
    source = source_with_tenant()
    crowded = build_manager(cascade_lake_2s, background_load_gbps=200)
    outcome = migrate_tenant(source, crowded, "acme")
    source_intact = len(source.intents_of("acme")) == 2
    results["crowded"] = (outcome.complete, source_intact, float("nan"))
    rows.append(["cascade -> crowded", outcome.complete,
                 f"source intact: {source_intact}", "-"])

    print_table(
        "E10: tenant migration across host shapes "
        "(guarantees: 60 Gbps pipe + 30 Gbps hose)",
        ["migration", "succeeded", "guarantees preserved",
         "victim Gbps under attack"],
        rows,
    )
    return results


def test_bench_e10(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for dest in ("cascade", "dgx", "epyc"):
        complete, preserved, isolation = r[dest]
        assert complete, f"migration to {dest} failed"
        assert preserved, f"guarantees changed on {dest}"
        assert isolation >= 58.0, f"isolation not enforced on {dest}"
    complete, source_intact, _ = r["crowded"]
    assert not complete
    assert source_intact


if __name__ == "__main__":
    run_experiment()
