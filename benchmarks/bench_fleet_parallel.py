"""Process-parallel fleet execution: the scaling study and its gate.

Timed hot paths feeding the regression gate (``compare_benchmarks.py``):

* the 256-host seeded churn (same config as the serial run in
  ``bench_fleet_placement.py``) sharded across 1, 2, 4, and 8 worker
  processes — the macro cost of the message-passing planner boundary
  (per-op round-trips, min-peek maintenance, dirty-host telemetry
  deltas) at each worker count;
* the 64-host trace replay (same trace as ``bench_trace_replay.py``)
  across the same worker ladder.

Speedup over serial depends on the machine's core count — a 1-worker
shard measures pure protocol overhead, and worker counts beyond
``os.cpu_count()`` only add scheduling noise — so each benchmark
publishes ``cores`` through ``extra_info`` and the scaling expectation
lives in EXPERIMENTS.md E18, not in an assert.  What *is* asserted
in-place is the subsystem's actual contract: every parallel run must
produce the bit-identical rejection rate the serial run produced, at
every worker count.
"""

import os

from repro.fleet import Fleet, FleetChurnConfig, run_churn
from repro.workloads.cluster_traces import (
    ReplayConfig,
    SynthTraceConfig,
    replay_trace,
    synthesize_trace,
)

#: Identical to bench_fleet_placement.py's 256-host run, so the serial
#: baseline for the speedup table is already in the gate artifact.
BIG_HOSTS = 256
BIG_CHURN = FleetChurnConfig(seed=3, horizon=0.05, arrival_rate=8000.0,
                             mean_holding=0.03)

#: Identical to bench_trace_replay.py's 64-host replay.
REPLAY_HOSTS = 64
MAX_ATTEMPTS = 8
SYNTH = SynthTraceConfig(seed=0, tasks=2_000, tenants=96, horizon=8.0)
TRACE = synthesize_trace(SYNTH)

#: serial reference outcomes, computed once and asserted per worker run
_SERIAL = {}


def churn_rejection_rate(parallel=None):
    fleet = Fleet("cascade_lake_2s", hosts=BIG_HOSTS, policy="best-fit",
                  clock="event", max_attempts=4, parallel=parallel)
    try:
        report = run_churn(fleet, BIG_CHURN)
    finally:
        fleet.shutdown()
    assert report.submitted > 300  # the workload actually ran
    return report.rejection_rate


def replay_rejection_rate(parallel=None):
    fleet = Fleet("cascade_lake_2s", hosts=REPLAY_HOSTS,
                  policy="best-fit", max_attempts=MAX_ATTEMPTS,
                  parallel=parallel)
    try:
        report = replay_trace(fleet, TRACE, ReplayConfig())
    finally:
        fleet.shutdown()
    return report.rejection_rate


def _bench(benchmark, fn, workers):
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = os.cpu_count()
    rate = benchmark.pedantic(fn, kwargs={"parallel": workers},
                              rounds=1, iterations=1)
    serial = _SERIAL.setdefault(fn.__name__, fn())
    assert rate == serial, (
        f"{fn.__name__} with {workers} workers produced rejection rate "
        f"{rate:.4%} vs serial {serial:.4%} — the parallel backend has "
        f"diverged from the serial semantics"
    )


def test_parallel_churn_256_hosts_w1(benchmark):
    _bench(benchmark, churn_rejection_rate, 1)


def test_parallel_churn_256_hosts_w2(benchmark):
    _bench(benchmark, churn_rejection_rate, 2)


def test_parallel_churn_256_hosts_w4(benchmark):
    _bench(benchmark, churn_rejection_rate, 4)


def test_parallel_churn_256_hosts_w8(benchmark):
    _bench(benchmark, churn_rejection_rate, 8)


def test_parallel_replay_64_hosts_w1(benchmark):
    _bench(benchmark, replay_rejection_rate, 1)


def test_parallel_replay_64_hosts_w2(benchmark):
    _bench(benchmark, replay_rejection_rate, 2)


def test_parallel_replay_64_hosts_w4(benchmark):
    _bench(benchmark, replay_rejection_rate, 4)


def test_parallel_replay_64_hosts_w8(benchmark):
    _bench(benchmark, replay_rejection_rate, 8)
