"""Fleet placement: the cost and the quality of cluster scheduling.

Two timed hot paths feed the regression gate (``compare_benchmarks.py``):

* one seeded 16-host churn run under the headroom-aware ``best-fit``
  policy — the macro cost of the whole fleet layer (lockstep clock,
  telemetry rollups, bounded probing, admission);
* the scheduler's submit/release fast path and one telemetry refresh —
  the micro costs a fleet pays per placement decision.

The suite also enforces the fleet layer's quality floor in-place: under a
bounded probe budget, headroom-aware placement must reject *fewer*
intents than blind first-fit on the identical seeded workload.  A change
that quietly breaks the telemetry rollup or the policy ranking shows up
here as a red build, not as a silently worse fleet.
"""

from repro.fleet import Fleet, FleetChurnConfig, run_churn
from repro.core import pipe
from repro.units import Gbps

HOSTS = 16
MAX_ATTEMPTS = 4
CHURN = FleetChurnConfig(seed=0, horizon=0.12, arrival_rate=4000.0,
                         mean_holding=0.05)

#: rejection rates observed by the timed runs, reused by the quality test
REJECTION = {}


def churn_rejection_rate(policy):
    fleet = Fleet("cascade_lake_2s", hosts=HOSTS, policy=policy,
                  max_attempts=MAX_ATTEMPTS)
    report = run_churn(fleet, CHURN)
    fleet.shutdown()
    assert report.submitted > 300  # the workload actually ran
    return report.rejection_rate


def test_fleet_churn_16_hosts_best_fit(benchmark):
    REJECTION["best-fit"] = benchmark.pedantic(
        churn_rejection_rate, args=("best-fit",), rounds=2, iterations=1
    )


def test_fleet_churn_16_hosts_first_fit(benchmark):
    REJECTION["first-fit"] = benchmark.pedantic(
        churn_rejection_rate, args=("first-fit",), rounds=2, iterations=1
    )


def test_headroom_aware_beats_first_fit():
    """The acceptance floor: best-fit must beat blind first-fit, with
    margin (not within noise of it), on the identical seeded churn."""
    best = REJECTION["best-fit"]
    first = REJECTION["first-fit"]
    assert best < first, (
        f"headroom-aware placement rejected {best:.1%} vs first-fit "
        f"{first:.1%} — the telemetry signal is not helping"
    )
    assert best < 0.5 * first, (
        f"expected a decisive gap, got best-fit {best:.1%} vs "
        f"first-fit {first:.1%}"
    )


def test_fleet_submit_release_fast_path(benchmark):
    fleet = Fleet("cascade_lake_2s", hosts=8, policy="best-fit",
                  max_attempts=4)
    intents = [
        pipe(f"i{i}", f"t{i % 4}", src="nic0", dst="dimm0-0",
             bandwidth=Gbps(20))
        for i in range(20)
    ]

    def submit_release_20():
        for intent in intents:
            fleet.submit(intent)
        for intent in intents:
            fleet.release(intent.intent_id)

    benchmark(submit_release_20)
    assert fleet.placements() == []


def test_fleet_telemetry_refresh(benchmark):
    fleet = Fleet("cascade_lake_2s", hosts=1)
    for i in range(10):
        fleet.submit(pipe(f"i{i}", "tA", src="nic0", dst="dimm0-0",
                          bandwidth=Gbps(10)))
    summary = benchmark(fleet.telemetry.refresh, "host00")
    assert summary.placements == 10
