"""Fleet placement: the cost and the quality of cluster scheduling.

Timed hot paths feeding the regression gate (``compare_benchmarks.py``):

* seeded 16-host churn runs under the headroom-aware ``best-fit`` policy,
  once on the event-driven fleet clock (the default — only hosts with
  pending work are woken) and once on the lockstep reference discipline —
  the macro cost of the whole fleet layer (clock, push-invalidated
  telemetry, bounded probing, admission);
* a 256-host churn on the event clock — the scale the event discipline
  exists for, where lockstep's O(hosts x quanta) floor starts to bite;
* the scheduler's submit/release fast path and one push-invalidated
  headroom recompute — the micro costs a fleet pays per decision.

The suite also enforces the fleet layer's quality floor in-place: under a
bounded probe budget, headroom-aware placement must reject *fewer*
intents than blind first-fit on the identical seeded workload.  A change
that quietly breaks the telemetry rollup or the policy ranking shows up
here as a red build, not as a silently worse fleet.
"""

from repro.fleet import Fleet, FleetChurnConfig, run_churn
from repro.core import pipe
from repro.units import Gbps

HOSTS = 16
MAX_ATTEMPTS = 4
CHURN = FleetChurnConfig(seed=0, horizon=0.12, arrival_rate=4000.0,
                         mean_holding=0.05)

#: The 256-host run keeps total event count comparable (shorter horizon,
#: higher arrival rate) so it times clock overhead, not workload size.
BIG_HOSTS = 256
BIG_CHURN = FleetChurnConfig(seed=3, horizon=0.05, arrival_rate=8000.0,
                             mean_holding=0.03)

#: rejection rates observed by the timed runs, reused by the quality test
REJECTION = {}


def churn_rejection_rate(policy, clock="event", hosts=HOSTS, churn=CHURN):
    fleet = Fleet("cascade_lake_2s", hosts=hosts, policy=policy,
                  clock=clock, max_attempts=MAX_ATTEMPTS)
    report = run_churn(fleet, churn)
    fleet.shutdown()
    assert report.submitted > 300  # the workload actually ran
    return report.rejection_rate


def test_fleet_churn_16_hosts_best_fit(benchmark):
    REJECTION["best-fit"] = benchmark.pedantic(
        churn_rejection_rate, args=("best-fit",), rounds=2, iterations=1
    )


def test_fleet_churn_16_hosts_first_fit(benchmark):
    REJECTION["first-fit"] = benchmark.pedantic(
        churn_rejection_rate, args=("first-fit",), rounds=2, iterations=1
    )


def test_fleet_churn_16_hosts_lockstep(benchmark):
    """The lockstep reference on the identical workload.  Its rejection
    rate must match the event clock's bit-for-bit — the equivalence the
    seeded suite in tests/test_fleet_clock.py asserts per-ledger."""
    rate = benchmark.pedantic(
        churn_rejection_rate, args=("best-fit", "lockstep"),
        rounds=2, iterations=1,
    )
    assert rate == REJECTION["best-fit"], (
        f"lockstep rejected {rate:.1%} vs event {REJECTION['best-fit']:.1%}"
        " on the same seed — the clocks have diverged"
    )


def test_fleet_churn_256_hosts_event(benchmark):
    benchmark.pedantic(
        churn_rejection_rate,
        args=("best-fit",),
        kwargs={"hosts": BIG_HOSTS, "churn": BIG_CHURN},
        rounds=2, iterations=1,
    )


def test_headroom_aware_beats_first_fit():
    """The acceptance floor: best-fit must beat blind first-fit, with
    margin (not within noise of it), on the identical seeded churn."""
    best = REJECTION["best-fit"]
    first = REJECTION["first-fit"]
    assert best < first, (
        f"headroom-aware placement rejected {best:.1%} vs first-fit "
        f"{first:.1%} — the telemetry signal is not helping"
    )
    assert best < 0.5 * first, (
        f"expected a decisive gap, got best-fit {best:.1%} vs "
        f"first-fit {first:.1%}"
    )


def test_fleet_submit_release_fast_path(benchmark):
    fleet = Fleet("cascade_lake_2s", hosts=8, policy="best-fit",
                  max_attempts=4)
    intents = [
        pipe(f"i{i}", f"t{i % 4}", src="nic0", dst="dimm0-0",
             bandwidth=Gbps(20))
        for i in range(20)
    ]

    def submit_release_20():
        for intent in intents:
            fleet.submit(intent)
        for intent in intents:
            fleet.release(intent.intent_id)

    benchmark(submit_release_20)
    assert fleet.placements() == []


def test_fleet_telemetry_refresh(benchmark):
    """One push-invalidated headroom recompute (invalidate + headroom is
    the API shape now; refresh() is a deprecated alias for it)."""
    fleet = Fleet("cascade_lake_2s", hosts=1)
    for i in range(10):
        fleet.submit(pipe(f"i{i}", "tA", src="nic0", dst="dimm0-0",
                          bandwidth=Gbps(10)))
    telemetry = fleet.telemetry

    def invalidate_and_headroom():
        telemetry.invalidate("host00")
        return telemetry.headroom("host00")

    summary = benchmark(invalidate_and_headroom)
    assert summary.placements == 10
