"""Fleet fault handling: the cost of chaos campaigns and evacuation.

Timed hot paths feeding the regression gate (``compare_benchmarks.py``):

* a seeded 16-host chaos campaign — churn + crashes/degrades/partitions
  + self-healing evacuation + per-fault invariant audits — on the
  event-driven clock, the macro cost of the whole fault layer;
* the same campaign on the lockstep reference discipline, which must
  reach the bit-identical outcome (asserted in-place: a divergence is a
  red build, not a silently forked simulation);
* one crash-evacuation burst in isolation — wake, release, forget,
  re-place for every session on a loaded host — the micro cost the
  recovery controller pays per host failure.
"""

from repro.core import pipe
from repro.fleet import (
    Fleet,
    FleetChaosConfig,
    FleetFaultEvent,
    FleetFaultInjector,
    FleetFaultSchedule,
    FleetRecoveryController,
    run_fleet_campaign,
)
from repro.units import Gbps

CAMPAIGN_HOSTS = 16
CAMPAIGN = dict(hosts=CAMPAIGN_HOSTS, horizon=0.15, arrival_rate=1200.0,
                tenants=8, faults=8, deep_audits=False)

#: outcome strings observed by the timed runs, reused by the equivalence
#: assertion in the lockstep benchmark
OUTCOME = {}


def chaos_outcome(clock):
    report = run_fleet_campaign(FleetChaosConfig(seed=0, clock=clock,
                                                 **CAMPAIGN))
    assert report.passed, "\n".join(report.violations[:5])
    assert report.submitted > 100  # the campaign actually ran
    return report.outcome_json


def test_fleet_chaos_16_hosts_event(benchmark):
    OUTCOME["event"] = benchmark.pedantic(
        chaos_outcome, args=("event",), rounds=2, iterations=1
    )


def test_fleet_chaos_16_hosts_lockstep(benchmark):
    outcome = benchmark.pedantic(
        chaos_outcome, args=("lockstep",), rounds=2, iterations=1
    )
    assert outcome == OUTCOME["event"], (
        "lockstep and event chaos campaigns diverged on the same seed"
    )


def crash_evacuation_burst():
    """Crash one host holding 12 sessions; every one must land alive."""
    fleet = Fleet("cascade_lake_2s", hosts=8, policy="best-fit",
                  max_attempts=4, failure_domains=4)
    recovery = FleetRecoveryController(fleet)
    try:
        for i in range(12):
            fleet.submit(pipe(f"s{i:02d}", f"t{i % 4}", src="nic0",
                              dst="dimm0-0", bandwidth=Gbps(8)))
        schedule = FleetFaultSchedule(seed=0, events=(
            FleetFaultEvent(time=0.001, kind="crash", targets=("host00",),
                            duration=0.01),
        ))
        injector = FleetFaultInjector(fleet, schedule, recovery=recovery)
        injector.advance_to(0.002)
        assert recovery.shed == 0
        return recovery.evacuated
    finally:
        fleet.shutdown()


def test_crash_evacuation_burst(benchmark):
    evacuated = benchmark.pedantic(crash_evacuation_burst, rounds=3,
                                   iterations=1)
    assert evacuated >= 1
