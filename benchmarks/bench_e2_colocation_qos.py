"""E2 — KV store + ML training co-location under four policies (§2).

The paper's motivating co-location: a remote KV store and an ML training
job share a host; the ML job's loopback-heavy data loading congests the
PCIe path the KV store depends on.  Reported per policy: KV p50/p99
latency, ML throughput, and total fabric goodput — plus the run-alone
baselines.

Expected shape: unmanaged and rdt_like leave the KV tail inflated ~10x;
static_partition protects the KV store but halves ML throughput; hostnet
protects the KV store at static-partition quality while ML keeps nearly
its full throughput (work-conserving).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.baselines import (
    HostnetPolicy,
    RdtLikePolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
)
from repro.core import pipe
from repro.units import Gbps, to_Gbps, to_us, us
from repro.workloads import KvStoreApp, MlTrainingApp, RdmaLoopbackApp

TENANTS = ["kv", "ml"]


def intent_factory(tenant):
    if tenant == "kv":
        # the KV store is latency-sensitive: a bandwidth floor alone lets
        # work-conserving arbitration run its links hot, so the intent
        # carries a latency SLO (compiled to utilization ceilings)
        return [pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(50), latency_slo=us(6),
                     bidirectional=True)]
    return []


def run_colocation(policy=None, run_kv=True, run_ml=True):
    network = fresh_network()
    if policy is not None:
        policy.setup(network, TENANTS)
    kv = ml = loop = None
    if run_kv:
        kv = KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
                        request_rate=20_000, seed=1)
        kv.start()
    if run_ml:
        ml = MlTrainingApp(network, "ml", dimm="dimm0-0", gpu="gpu0")
        # GPUDirect-style NIC<->GPU loopback: pure PCIe pressure that a
        # memory-only point solution (RDT) cannot see or throttle.
        loop = RdmaLoopbackApp(network, "ml", nic="nic0", dimm="gpu0",
                               streams=4)
        ml.start()
        loop.start()
    network.engine.run_until(0.3)
    result = {}
    if kv is not None:
        summary = kv.stats.latency_summary()
        result["kv_p50"] = to_us(summary.p50)
        result["kv_p99"] = to_us(summary.p99)
    if ml is not None:
        result["ml_gbps"] = to_Gbps(ml.stats.throughput(network.engine.now))
        result["loop_gbps"] = to_Gbps(loop.achieved_rate())
    if policy is not None:
        policy.teardown(network, TENANTS)
    return result


def run_experiment():
    rows = []
    results = {}

    kv_alone = run_colocation(run_ml=False)
    ml_alone = run_colocation(run_kv=False)
    rows.append(["kv alone", kv_alone["kv_p50"], kv_alone["kv_p99"],
                 "-", "-"])
    rows.append(["ml alone", "-", "-", ml_alone["ml_gbps"],
                 ml_alone["loop_gbps"]])
    results["alone"] = {**kv_alone, **ml_alone}

    policies = [
        UnmanagedPolicy(),
        RdtLikePolicy(),
        StaticPartitionPolicy(),
        HostnetPolicy(intent_factory, decision_latency=0.0),
    ]
    for policy in policies:
        r = run_colocation(policy)
        results[policy.name] = r
        rows.append([policy.name, r["kv_p50"], r["kv_p99"], r["ml_gbps"],
                     r["loop_gbps"]])

    print_table(
        "E2: KV + ML co-location QoS per policy",
        ["scenario", "kv p50 (us)", "kv p99 (us)", "ml batches (Gbps)",
         "ml gpudirect (Gbps)"],
        rows,
    )
    return results


def test_bench_e2(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    alone_p99 = r["alone"]["kv_p99"]
    # interference is real when unmanaged
    assert r["unmanaged"]["kv_p99"] > 3 * alone_p99
    # rdt's point solution does not help a PCIe bottleneck
    assert r["rdt_like"]["kv_p99"] > 3 * alone_p99
    # static partition and hostnet both protect the kv tail
    assert r["static_partition"]["kv_p99"] < 2 * alone_p99
    assert r["hostnet"]["kv_p99"] < 2 * alone_p99
    # ...but hostnet preserves far more ML throughput than static
    assert r["hostnet"]["ml_gbps"] > 1.5 * r["static_partition"]["ml_gbps"]


if __name__ == "__main__":
    run_experiment()
