"""E5 — the storage-and-processing dilemma of monitoring (§3.1 Q2).

Sweeps the telemetry sampling period under both processing modes:

* **local** — samples stay in per-device ring buffers (no fabric cost,
  bounded history);
* **ship** — every cycle's samples cross the fabric to a collection point
  as real system flows.

Reported per configuration: monitoring *fidelity* (mean absolute error of
the sampled utilization against simulator ground truth, sampled during a
bursty workload) and monitoring *overhead* (fabric bandwidth consumed by
shipping, and its share of the victim link).

Expected shape: fidelity improves steeply with faster sampling and then
flattens (the knee); shipping overhead grows linearly with the sampling
rate — the dilemma is the crossing of those curves.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.telemetry import CounterSource, TelemetryCollector
from repro.units import Gbps, ms, to_Gbps
from repro.workloads import MlTrainingApp

PERIODS = [ms(0.5), ms(1), ms(5), ms(20), ms(100)]
RUN_TIME = 0.5


def run_point(period, processing):
    network = fresh_network()
    collector = TelemetryCollector(
        network, source=CounterSource.SOFTWARE, period=period,
        processing=processing,
    )
    collector.start()
    # bursty workload: ML batches start/stop every iteration
    MlTrainingApp(network, "ml", dimm="dimm0-0", gpu="gpu0",
                  concurrency=1).start()

    # measure fidelity: compare sampled vs true utilization of the ML path
    link = "pcie-gpu0"
    errors = []
    t = 0.0
    while t < RUN_TIME:
        t += ms(2)
        network.engine.run_until(t)
        truth = network.link_utilization(link)
        sampled = collector.latest_utilization(link)
        errors.append(abs(truth - sampled))
    mae = sum(errors) / len(errors)
    overhead = collector.overhead_rate()
    return mae, overhead


def run_probe_point(period):
    """Active probing's side of Q2: heartbeat cost vs detection speed."""
    from repro.monitor import FailureInjector, HeartbeatMesh
    from repro.sim.rng import make_rng

    network = fresh_network()
    mesh = HeartbeatMesh(
        network, ["nic0", "gpu0", "nvme0", "dimm0-0", "nic1"],
        period=period, consume_fabric=True, rng=make_rng(3),
    )
    mesh.start()
    network.engine.run_until(0.05)
    mesh.record_baseline()
    injected_at = network.engine.now
    FailureInjector(network).degrade_link("pcie-up0", capacity_factor=0.1,
                                          extra_latency=5e-6)
    detected_at = None
    t = injected_at
    while t < injected_at + 0.2:
        t += period
        network.engine.run_until(t)
        if mesh.anomalous_probes():
            detected_at = t
            break
    overhead = mesh.probe_bytes_sent / network.engine.now
    ttd = (detected_at - injected_at) if detected_at else float("nan")
    return ttd, overhead


def run_experiment():
    rows = []
    results = {}
    for period in PERIODS:
        for processing in ("local", "ship"):
            mae, overhead = run_point(period, processing)
            results[(period, processing)] = (mae, overhead)
            rows.append([
                f"{period * 1e3:.1f}",
                processing,
                f"{mae:.3f}",
                f"{to_Gbps(overhead):.4f}",
            ])
    print_table(
        "E5: monitoring fidelity vs overhead (sampling-period sweep)",
        ["period (ms)", "processing", "util MAE", "ship overhead (Gbps)"],
        rows,
    )

    probe_rows = []
    for period in (ms(1), ms(5), ms(20)):
        ttd, overhead = run_probe_point(period)
        results[("probe", period)] = (ttd, overhead)
        probe_rows.append([
            f"{period * 1e3:.0f}",
            f"{ttd * 1e3:.0f}" if ttd == ttd else "-",
            f"{to_Gbps(overhead) * 1e3:.3f}",
        ])
    print_table(
        "E5b: heartbeat probing — detection speed vs fabric cost "
        "(probes consume real bytes)",
        ["probe period (ms)", "time to detect (ms)",
         "probe overhead (Mbps)"],
        probe_rows,
    )
    return results


def test_bench_e5(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fast_mae = r[(PERIODS[0], "ship")][0]
    slow_mae = r[(PERIODS[-1], "ship")][0]
    assert fast_mae < slow_mae, "faster sampling should improve fidelity"
    # overhead grows with sampling rate
    fast_overhead = r[(PERIODS[0], "ship")][1]
    slow_overhead = r[(PERIODS[-1], "ship")][1]
    assert fast_overhead > 20 * slow_overhead
    # local processing never costs fabric bandwidth
    assert all(r[(p, "local")][1] == 0.0 for p in PERIODS)
    # probing: faster rounds detect faster and cost proportionally more
    fast_ttd, fast_cost = r[("probe", ms(1))]
    slow_ttd, slow_cost = r[("probe", ms(20))]
    assert fast_ttd < slow_ttd
    assert fast_cost > 5 * slow_cost


if __name__ == "__main__":
    run_experiment()
