"""Simulator performance: the cost of simulating a managed host.

Not a paper experiment — this measures the *reproduction's own* hot paths
with real repeated timing (pytest-benchmark's bread and butter), so
regressions in the solver, engine, or router show up in CI:

* max-min solve with 100 flows over the cascade topology;
* discrete-event engine throughput (events/second);
* path enumeration on the DGX-like host;
* one full co-location second (KV + loopback + arbiter) of simulated time.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network

from repro.core import HostNetworkManager, pipe
from repro.sim import Engine, FabricNetwork
from repro.sim.bandwidth import FlowDemand, max_min_fair_rates
from repro.sim.rng import make_rng
from repro.topology import cascade_lake_2s, dgx_like, k_shortest_paths
from repro.units import Gbps
from repro.workloads import KvStoreApp, RdmaLoopbackApp


def _solver_instance(n_flows=100, seed=1):
    topology = cascade_lake_2s()
    link_ids = [l.link_id for l in topology.links()]
    capacities = {}
    for link_id in link_ids:
        cap = topology.link(link_id).capacity
        capacities[f"{link_id}|fwd"] = cap
        capacities[f"{link_id}|rev"] = cap
    rng = make_rng(seed, "perf")
    flows = []
    for i in range(n_flows):
        links = tuple(
            f"{rng.choice(link_ids)}|{rng.choice(['fwd', 'rev'])}"
            for _ in range(rng.randint(2, 5))
        )
        flows.append(FlowDemand(f"f{i}", links,
                                demand=Gbps(rng.uniform(1, 200))))
    return flows, capacities


def test_solver_100_flows(benchmark):
    flows, capacities = _solver_instance()
    rates = benchmark(max_min_fair_rates, flows, capacities)
    assert len(rates) == 100


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                engine.schedule_in(1e-6, tick)

        engine.schedule_in(1e-6, tick)
        engine.run()
        return state["count"]

    count = benchmark(run_10k_events)
    assert count == 10_000


def test_path_enumeration_dgx(benchmark):
    topology = dgx_like()
    paths = benchmark(k_shortest_paths, topology, "gpu0", "dimm1-0", 6)
    assert paths


def test_managed_colocation_second(benchmark):
    def simulate_one_second():
        network = fresh_network()
        manager = HostNetworkManager(network, decision_latency=0.0)
        manager.register_tenant("hog")
        manager.submit(pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(50), bidirectional=True))
        KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
                   request_rate=10_000, seed=1).start()
        RdmaLoopbackApp(network, "hog", nic="nic0", dimm="dimm0-0",
                        streams=4).start()
        network.engine.run_until(1.0)
        manager.shutdown()
        return network.engine.events_processed

    events = benchmark.pedantic(simulate_one_second, rounds=3, iterations=1)
    assert events > 10_000
