"""Simulator performance: the cost of simulating a managed host.

Not a paper experiment — this measures the *reproduction's own* hot paths
with real repeated timing (pytest-benchmark's bread and butter), so
regressions in the solver, engine, or router show up in CI:

* max-min solve with 100 flows over the cascade topology;
* churn on 500 flows: incremental component re-solve vs from-scratch;
* discrete-event engine throughput (events/second);
* path enumeration on the DGX-like host;
* one full co-location second (KV + loopback + arbiter) of simulated time;
* tracing overhead: the ``repro.trace`` disabled fast path must cost
  <= 2% on engine dispatch vs an uninstrumented engine (CI-enforced),
  and enabled tracing is timed for the record.
"""

import gc
import heapq
import time

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network

from repro.core import HostNetworkManager, pipe
from repro.sim import Engine, IncrementalMaxMinSolver
from repro.sim.bandwidth import FlowDemand, max_min_fair_rates
from repro.sim.rng import make_rng
from repro.topology import cascade_lake_2s, dgx_like, k_shortest_paths
from repro.units import Gbps
from repro.workloads import KvStoreApp, RdmaLoopbackApp


def _solver_instance(n_flows=100, seed=1):
    topology = cascade_lake_2s()
    link_ids = [l.link_id for l in topology.links()]
    capacities = topology.directed_capacities()
    rng = make_rng(seed, "perf")
    flows = []
    for i in range(n_flows):
        links = tuple(
            f"{rng.choice(link_ids)}|{rng.choice(['fwd', 'rev'])}"
            for _ in range(rng.randint(2, 5))
        )
        flows.append(FlowDemand(f"f{i}", links,
                                demand=Gbps(rng.uniform(1, 200))))
    return flows, capacities


def test_solver_100_flows(benchmark):
    flows, capacities = _solver_instance()
    rates = benchmark(max_min_fair_rates, flows, capacities)
    assert len(rates) == 100


def _large_instance(n_flows=1000, n_cons=200, seed=11):
    """1k flows over 200 shared constraints: one big connected component,
    the regime the vectorized water-filling core exists for.

    Demands sit well below fair share for many flows (units are arbitrary;
    only ratios matter to the solver), so freezing happens level by level
    across many water-filling rounds — the round count, not the flow
    count alone, is what the scalar core pays for.
    """
    rng = make_rng(seed, "large")
    cons = [f"c{i}" for i in range(n_cons)]
    capacities = {c: rng.uniform(50, 500) for c in cons}
    flows = []
    for i in range(n_flows):
        links = tuple(rng.sample(cons, rng.randint(1, 4)))
        demand = float("inf") if rng.random() < 0.5 else rng.uniform(1, 100)
        flows.append(FlowDemand(f"f{i}", links, demand=demand,
                                weight=rng.uniform(0.5, 4.0)))
    return flows, capacities


def _solve_large(flows, capacities, crossover):
    solver = IncrementalMaxMinSolver(array_crossover=crossover)
    for cid, cap in capacities.items():
        solver.set_capacity(cid, cap)
    for f in flows:
        solver.set_flow(f)
    return solver.solve()


def test_solver_1k_flows_scalar(benchmark):
    flows, capacities = _large_instance()
    rates = benchmark(_solve_large, flows, capacities, 10**9)
    assert len(rates) == len(flows)


def test_solver_1k_flows_array(benchmark):
    flows, capacities = _large_instance()
    rates = benchmark(_solve_large, flows, capacities, 0)
    assert len(rates) == len(flows)


def test_array_fill_speedup_floor():
    """CI-enforced floor: the vectorized core beats the scalar core >= 1.5x
    on the 1k-flow/200-constraint full solve (and agrees with it).

    The array core typically measures 2-2.5x against the *current* scalar
    core on this instance; the floor is set with headroom for noisy CI
    runners.  Against the seed-era scalar solve recorded in
    BENCH_sim_performance.json (129.47 ms), the array path lands around
    ~15-20 ms — the scalar core itself got ~3.5x faster in the same
    change, which is what compresses the core-vs-core ratio here."""
    flows, capacities = _large_instance()
    rounds = 5

    def timed(crossover):
        best = float("inf")
        result = None
        for _ in range(rounds):
            gc.collect()
            start = time.perf_counter()
            result = _solve_large(flows, capacities, crossover)
            best = min(best, time.perf_counter() - start)
        return best, result

    scalar_elapsed, scalar_rates = timed(10**9)
    array_elapsed, array_rates = timed(0)
    for fid, want in scalar_rates.items():
        assert abs(array_rates[fid] - want) < 1e-6 * max(want, 1.0)
    speedup = scalar_elapsed / array_elapsed
    assert speedup >= 1.5, (
        f"array core only {speedup:.1f}x faster than scalar on the 1k-flow "
        f"instance ({array_elapsed * 1e3:.1f}ms vs "
        f"{scalar_elapsed * 1e3:.1f}ms)"
    )


def _churn_instance(groups=50, flows_per_group=10, links_per_group=8, seed=7):
    """500 flows across 50 disjoint link groups.

    Tenants on a managed host cluster on their own device neighbourhoods
    (socket-local NIC<->DIMM paths), so the flow/constraint graph decomposes;
    disjoint groups model that, and are exactly what lets the incremental
    solver skip the other 49 components when one flow churns.
    """
    rng = make_rng(seed, "churn")
    capacities = {}
    flows = []
    for g in range(groups):
        group_links = [f"g{g}-l{j}|fwd" for j in range(links_per_group)]
        for link_id in group_links:
            capacities[link_id] = Gbps(100)
        for i in range(flows_per_group):
            links = tuple(rng.choice(group_links)
                          for _ in range(rng.randint(2, 4)))
            flows.append(FlowDemand(f"g{g}-f{i}", links,
                                    demand=Gbps(rng.uniform(1, 80))))
    return flows, capacities


def _loaded_incremental_solver(flows, capacities):
    solver = IncrementalMaxMinSolver()
    for cid, cap in capacities.items():
        solver.set_capacity(cid, cap)
    for f in flows:
        solver.set_flow(f)
    solver.solve()  # pay the initial full solve outside the timed region
    return solver


def test_churn_500_flows_incremental(benchmark):
    flows, capacities = _churn_instance()
    solver = _loaded_incremental_solver(flows, capacities)
    victim = flows[0]

    def churn_once():
        solver.remove_flow(victim.flow_id)
        solver.solve()
        solver.set_flow(victim)
        return solver.solve()

    rates = benchmark(churn_once)
    assert len(rates) == len(flows)
    assert solver.stats.full_solves == 1  # only the warm-up


def test_churn_500_flows_from_scratch(benchmark):
    flows, capacities = _churn_instance()
    without_victim = flows[1:]

    def churn_once():
        max_min_fair_rates(without_victim, capacities)
        return max_min_fair_rates(flows, capacities)

    rates = benchmark(churn_once)
    assert len(rates) == len(flows)


def test_churn_incremental_speedup():
    """CI-enforced floor: incremental churn beats from-scratch >= 3x."""
    flows, capacities = _churn_instance()
    solver = _loaded_incremental_solver(flows, capacities)
    victim = flows[0]
    without_victim = flows[1:]
    rounds = 30

    start = time.perf_counter()
    for _ in range(rounds):
        solver.remove_flow(victim.flow_id)
        solver.solve()
        solver.set_flow(victim)
        incremental_rates = solver.solve()
    incremental_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        max_min_fair_rates(without_victim, capacities)
        scratch_rates = max_min_fair_rates(flows, capacities)
    scratch_elapsed = time.perf_counter() - start

    for fid, rate in scratch_rates.items():
        assert abs(incremental_rates[fid] - rate) < 1e-6 * max(rate, 1.0)
    speedup = scratch_elapsed / incremental_elapsed
    assert speedup >= 3.0, (
        f"incremental churn only {speedup:.1f}x faster than from-scratch "
        f"({incremental_elapsed * 1e3 / rounds:.3f}ms vs "
        f"{scratch_elapsed * 1e3 / rounds:.3f}ms per churn)"
    )


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                engine.schedule_in(1e-6, tick)

        engine.schedule_in(1e-6, tick)
        engine.run()
        return state["count"]

    count = benchmark(run_10k_events)
    assert count == 10_000


def test_path_enumeration_dgx(benchmark):
    topology = dgx_like()
    paths = benchmark(k_shortest_paths, topology, "gpu0", "dimm1-0", 6)
    assert paths


class _UninstrumentedEngine(Engine):
    """`Engine.step` with the tracing dispatch stripped out.

    The "no-tracer baseline" for the overhead contract: same heappop /
    cancelled-skip / clock-advance / live-event-accounting / dispatch
    sequence, minus the ``TRACER.enabled`` guard.  It keeps the
    ``_cancelled_in_queue`` and ``queued`` bookkeeping so the contract
    measures *tracing* overhead in isolation, not the (separately
    measured, ~0.4%) cost of O(1) ``pending_events()`` accounting.
    """

    def step(self):
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event.queued = False
            self.clock.advance_to(event.time)
            self._events_processed += 1
            event.callback()
            return True
        return False


def _run_event_chain(engine, n_events):
    state = {"count": 0}

    def tick():
        state["count"] += 1
        if state["count"] < n_events:
            engine.schedule_in(1e-6, tick)

    engine.schedule_in(1e-6, tick)
    engine.run()
    assert state["count"] == n_events


def _min_chain_time(engine_factory, n_events, rounds):
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        _run_event_chain(engine_factory(), n_events)
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_disabled_overhead():
    """CI-enforced contract: tracing-disabled overhead <= 2%.

    Interleaved min-of-rounds timing (min is the stable statistic for a
    CPU-bound loop; interleaving decorrelates frequency/GC drift).  The
    instrumented engine with the tracer disabled must stay within 2% of
    the uninstrumented baseline on pure event dispatch — the hottest
    instrumented path in the simulator.
    """
    from repro.trace import TRACER

    assert not TRACER.enabled, "tracer must be disabled for this benchmark"
    n_events, rounds = 40_000, 9
    # Warm both paths (bytecode caches, allocator) outside the timing.
    _run_event_chain(_UninstrumentedEngine(), 1000)
    _run_event_chain(Engine(), 1000)
    baseline = _min_chain_time(_UninstrumentedEngine, n_events, rounds)
    instrumented = _min_chain_time(Engine, n_events, rounds)
    overhead = instrumented / baseline - 1.0
    assert overhead <= 0.02, (
        f"tracing-disabled dispatch is {overhead * 100:.2f}% slower than "
        f"the no-tracer baseline ({instrumented * 1e3:.2f}ms vs "
        f"{baseline * 1e3:.2f}ms for {n_events} events); the disabled "
        f"fast path must stay within 2%"
    )


def test_tracing_enabled_event_throughput(benchmark):
    """Dispatch throughput with tracing ON (for the perf trajectory).

    Not a contract — enabled tracing pays for span + counter recording on
    every event; this keeps its cost visible in BENCH_sim_performance.
    """
    from repro.trace import TRACER, TraceConfig, start_tracing, stop_tracing

    def run_10k_traced():
        start_tracing(TraceConfig(capacity=4096))
        try:
            _run_event_chain(Engine(), 10_000)
        finally:
            stop_tracing()
        return len(TRACER)

    records = benchmark(run_10k_traced)
    assert records == 4096  # ring stayed bounded while recording 20k+


def test_managed_colocation_second(benchmark):
    def simulate_one_second():
        network = fresh_network()
        manager = HostNetworkManager(network, decision_latency=0.0)
        manager.register_tenant("hog")
        manager.submit(pipe("kv-pipe", "kv", src="nic0", dst="dimm0-0",
                            bandwidth=Gbps(50), bidirectional=True))
        KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
                   request_rate=10_000, seed=1).start()
        RdmaLoopbackApp(network, "hog", nic="nic0", dimm="dimm0-0",
                        streams=4).start()
        network.engine.run_until(1.0)
        manager.shutdown()
        return network.engine.events_processed

    events = benchmark.pedantic(simulate_one_second, rounds=3, iterations=1)
    assert events > 10_000
