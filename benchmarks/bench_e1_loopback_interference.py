"""E1 — RDMA loopback exhausts PCIe bandwidth (§2, citing BytePS [31]).

A victim RDMA stream (NIC -> memory) shares nic0's PCIe path with a
loopback aggressor of increasing offered rate.  Reported per intensity:
victim throughput and victim small-op RTT, with the fabric unmanaged vs
managed (victim holds a 100 Gbps pipe guarantee).

Expected shape: unmanaged victim throughput collapses toward the fair
share as the loopback ramps, and its RTT inflates by >10x; managed victim
holds its floor and its RTT stays flat, while the aggressor still gets the
leftover (work conservation).
"""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.core import HostNetworkManager, pipe
from repro.topology import shortest_path
from repro.units import Gbps, to_Gbps, to_us, us
from repro.workloads import RdmaLoopbackApp

INTENSITIES = [0.0, Gbps(50), Gbps(100), Gbps(200), math.inf]

#: The victim's round-trip SLO; compiled into utilization ceilings so the
#: work-conserving fabric cannot run the victim's path to saturation.
VICTIM_SLO = us(6)


def run_point(offered, managed):
    network = fresh_network()
    if managed:
        manager = HostNetworkManager(network, decision_latency=0.0)
        manager.register_tenant("loopback")
        manager.submit(pipe("victim-pipe", "victim", src="nic0",
                            dst="dimm0-0", bandwidth=Gbps(100),
                            latency_slo=VICTIM_SLO,
                            bidirectional=True))
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    victim = network.start_transfer("victim", path, demand=Gbps(100))
    if offered:
        RdmaLoopbackApp(network, "loopback", nic="nic0", dimm="dimm0-0",
                        offered_rate=offered, streams=4).start()
    network.engine.run_until(0.05)
    rtt = network.round_trip_latency(path, 64.0, 64.0)
    return to_Gbps(victim.current_rate), to_us(rtt)


def run_experiment():
    rows = []
    results = {}
    for offered in INTENSITIES:
        label = "elastic" if math.isinf(offered) else f"{to_Gbps(offered):.0f}"
        unmanaged = run_point(offered, managed=False)
        managed = run_point(offered, managed=True)
        results[label] = {"unmanaged": unmanaged, "managed": managed}
        rows.append([
            label, unmanaged[0], unmanaged[1], managed[0], managed[1],
        ])
    print_table(
        "E1: victim vs RDMA loopback intensity "
        "(victim floor: 100 Gbps pipe)",
        ["loopback (Gbps)", "unmanaged victim Gbps", "unmanaged RTT us",
         "managed victim Gbps", "managed RTT us"],
        rows,
    )
    return results


def test_bench_e1(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quiet = results["0"]
    storm = results["elastic"]
    slo_us = VICTIM_SLO * 1e6
    # unmanaged: collapses below 80% of demand and RTT blows past the SLO
    assert storm["unmanaged"][0] < 80.0
    assert storm["unmanaged"][1] > 5 * quiet["unmanaged"][1]
    assert storm["unmanaged"][1] > 2 * slo_us
    # managed: floor held within 2% and the RTT SLO honoured
    assert storm["managed"][0] >= 98.0
    assert storm["managed"][1] <= slo_us
    assert quiet["managed"][1] <= slo_us


if __name__ == "__main__":
    run_experiment()
