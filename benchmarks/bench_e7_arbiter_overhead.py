"""E7 — how fast must the arbiter be? (§3.2 Q3)

The paper asks whether resource management can run at microsecond
timescales.  We sweep the arbiter's *decision latency* (sense -> enforce
delay) against the staleness-sensitive pattern: a **bursty guaranteed
victim** (on/off every 2 ms) sharing its path with a constant 16-flow
best-effort aggressor.  While the victim is idle, work conservation hands
the aggressor nearly the whole link; each time the victim bursts back,
the *stale* aggressor cap squeezes it below its floor until the arbiter's
next decision lands — a window whose width is the decision latency.

Reported per decision latency: fraction of victim-active samples below
the floor, the victim's mean active rate, and the arbiter adjustment
count.

Expected shape: violations ~0 at microsecond latencies, degrading
smoothly once the decision latency approaches the burst timescale —
millisecond-scale arbitration is too slow for microsecond fabrics.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.core import HostNetworkManager, pipe
from repro.topology import shortest_path
from repro.units import Gbps, ms, to_Gbps, us
from repro.workloads import MaliciousFloodApp

LATENCIES = [0.0, us(10), us(100), ms(1), ms(5)]
CHURN_PERIOD = ms(2)
RUN_TIME = 0.25
FLOOR = Gbps(100)


def run_point(decision_latency):
    network = fresh_network()
    manager = HostNetworkManager(network, decision_latency=decision_latency,
                                 arbiter_period=ms(0.5))
    manager.register_tenant("churner")
    manager.submit(pipe("victim-pipe", "victim", src="nic0", dst="dimm0-0",
                        bandwidth=FLOOR))
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    victim = network.start_transfer("victim", path, demand=FLOOR)
    MaliciousFloodApp(network, "churner", src="nic0", dst="dimm0-0",
                      flow_count=16).start()

    # the victim bursts: demand flaps 0 <-> FLOOR every CHURN_PERIOD
    state = {"active": True}

    def flip():
        state["active"] = not state["active"]
        network.set_flow_demand(victim.flow_id,
                                FLOOR if state["active"] else 0.0)

    # jittered bursts: breaks phase-locking between the burst cycle and
    # the arbiter's (period + decision latency) pipeline
    from repro.sim.rng import make_rng

    network.engine.schedule_every(CHURN_PERIOD, flip,
                                  jitter=CHURN_PERIOD, rng=make_rng(13))

    samples = 0
    violated = 0
    rate_sum = 0.0
    t = 0.0
    while t < RUN_TIME:
        t += ms(0.1)
        network.engine.run_until(t)
        if not state["active"]:
            continue
        samples += 1
        rate_sum += victim.current_rate
        if victim.current_rate < FLOOR * 0.95:
            violated += 1
    result = {
        "violation_fraction": violated / samples,
        "mean_rate_gbps": to_Gbps(rate_sum / samples),
        "adjustments": manager.arbiter.adjustments,
    }
    manager.shutdown()
    return result


def run_experiment():
    rows = []
    results = {}
    for latency in LATENCIES:
        r = run_point(latency)
        results[latency] = r
        rows.append([
            f"{latency * 1e6:.0f}",
            f"{r['violation_fraction']:.1%}",
            f"{r['mean_rate_gbps']:.1f}",
            r["adjustments"],
        ])
    print_table(
        "E7: victim floor (100 Gbps) vs arbiter decision latency "
        f"(churn every {CHURN_PERIOD * 1e3:.0f}ms)",
        ["decision latency (us)", "floor violations", "victim mean Gbps",
         "adjustments"],
        rows,
    )
    return results


def test_bench_e7(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # at microsecond latencies the only dips are the inherent one-round
    # reclaim windows of floor lending (bounded by the arbiter period)
    assert r[us(10)]["violation_fraction"] <= 0.25
    assert r[us(10)]["violation_fraction"] <= \
        1.5 * max(r[0.0]["violation_fraction"], 0.01)
    # millisecond-scale enforcement multiplies the dip time severalfold
    assert r[ms(5)]["violation_fraction"] > \
        2 * r[us(10)]["violation_fraction"]
    # and the victim's mean rate erodes with latency
    assert r[ms(5)]["mean_rate_gbps"] < 0.8 * r[0.0]["mean_rate_gbps"]


if __name__ == "__main__":
    run_experiment()
