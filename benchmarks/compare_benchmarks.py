"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CURRENT.json \
        [--tolerance 0.20]

Benchmarks are matched by test name.  A benchmark regresses when its
current mean exceeds the baseline mean by more than the tolerance
(default 20%, chosen to ride out shared-runner noise while still
catching the order-of-magnitude slips this suite guards against — a
solver path silently falling back to scalar, an accidental O(n^2)
re-partition).  Benchmarks present only in the current run are reported
as informational (new benchmarks need a refreshed baseline, not a red
build); benchmarks that disappeared fail the comparison, since a
deleted benchmark is exactly how a regression would hide.

Exit status: 0 when clean, 1 on any regression or missing benchmark.

The committed baseline is stored *compacted* — raw per-sample timing
arrays (``stats.data``) and ``machine_info`` dropped, summary stats
kept — which shrinks it an order of magnitude without losing anything
the gate reads.  Both the compact and the full pytest-benchmark layout
load identically here.  Recompact a freshly regenerated baseline with::

    python benchmarks/compare_benchmarks.py --compact BENCH.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    """Benchmark name -> mean seconds; reads full or compacted JSON."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def compact(path: str, out: str | None = None) -> int:
    """Rewrite a pytest-benchmark JSON keeping only summary stats.

    Drops the raw per-sample ``stats.data`` arrays and ``machine_info``
    (the bulk of the file); everything the gate and a human reader use —
    names, groups, params, extra_info, min/max/mean/stddev/percentiles —
    survives.  Returns the number of benchmarks written.
    """
    with open(path) as handle:
        data = json.load(handle)
    data.pop("machine_info", None)
    for bench in data.get("benchmarks", []):
        bench.get("stats", {}).pop("data", None)
    with open(out or path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(data.get("benchmarks", []))


def format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def compare(baseline: dict[str, float], current: dict[str, float],
            tolerance: float) -> int:
    failures = 0
    for name in sorted(baseline):
        if name not in current:
            print(f"MISSING  {name}: in baseline but not in current run")
            failures += 1
            continue
        old, new = baseline[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            failures += 1
        elif ratio < 1.0 - tolerance:
            verdict = "improved"
        print(f"{verdict:<9} {name}: {format_seconds(old)} -> "
              f"{format_seconds(new)} ({ratio:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW      {name}: {format_seconds(current[name])} "
              "(no baseline; refresh BENCH_sim_performance.json)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON "
                                         "(or the file to --compact)")
    parser.add_argument("current", nargs="?", default=None,
                        help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional mean increase "
                             "(default: 0.20)")
    parser.add_argument("--compact", action="store_true",
                        help="instead of comparing, rewrite BASELINE "
                             "in place (or to CURRENT when given) with "
                             "raw sample arrays dropped")
    args = parser.parse_args(argv)

    if args.compact:
        count = compact(args.baseline, args.current)
        print(f"compacted {count} benchmark(s) into "
              f"{args.current or args.baseline}")
        return 0
    if args.current is None:
        parser.error("CURRENT is required unless --compact is given")

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"error: no benchmarks found in {args.baseline}",
              file=sys.stderr)
        return 1
    failures = compare(baseline, current, args.tolerance)
    if failures:
        print(f"\n{failures} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
