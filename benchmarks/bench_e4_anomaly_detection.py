"""E4 — detecting and localizing silent fabric failures (§3.1).

For each injectable failure class, two monitoring configurations race:

* **counters-only** — telemetry + streaming detectors over link counters
  (today's PCM-style observability);
* **heartbeats+rootcause** — the paper's proposal: an intra-host Pingmesh
  plus topology-aware tomography.

Reported: detection rate, median time-to-detect, and top-2 localization
accuracy over several trials per failure class.

Expected shape: counters alone detect hard congestion shifts but cannot
*localize*, and miss silent degradations on quiet links entirely; the
heartbeat mesh detects every class within a few probe periods and
localizes to the failed element.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.monitor import (
    AnomalyKind,
    FailureInjector,
    HostMonitor,
    localization_correct,
)
from repro.stats import percentile
from repro.telemetry import CounterSource
from repro.units import us
from repro.workloads import KvStoreApp

PROBERS = ["nic0", "gpu0", "nvme0", "dimm0-0", "nic1", "gpu1", "dimm1-0"]
CHECK_PERIOD = 0.005
DEADLINE = 0.2

FAILURE_CASES = [
    ("link_degrade", lambda inj: inj.degrade_link(
        "pcie-up0", capacity_factor=0.1, extra_latency=us(4))),
    ("link_down", lambda inj: inj.fail_link("pcie-gpu0")),
    ("switch_degrade", lambda inj: inj.degrade_switch(
        "pcisw0", capacity_factor=0.1, extra_latency=us(4))),
    ("link_flap", lambda inj: inj.flap_link("pcie-nvme0", period=0.02)),
]


def run_false_positive_trial(use_heartbeats, seed):
    """A healthy trial: any 'detection' within the deadline is a false
    positive."""
    ttd, _ = run_trial(lambda inj: _NoFailure(), use_heartbeats, seed)
    return ttd is not None


class _NoFailure:
    """Stand-in ground truth for healthy runs."""

    affected_links = ()
    target = "(none)"


def run_trial(case_inject, use_heartbeats, seed):
    network = fresh_network()
    monitor = HostMonitor(
        network, probers=PROBERS, telemetry_period=CHECK_PERIOD,
        heartbeat_period=CHECK_PERIOD, source=CounterSource.SOFTWARE,
        seed=seed,
    )
    monitor.start()
    KvStoreApp(network, "kv", nic="nic0", dimm="dimm0-0",
               request_rate=10_000, seed=seed).start()
    network.engine.run_until(0.06)
    monitor.record_baseline()
    monitor.check()  # drain warm-up samples

    injected_at = network.engine.now
    failure = case_inject(FailureInjector(network))

    detected_at = None
    localized = False
    t = injected_at
    while t < injected_at + DEADLINE:
        t += CHECK_PERIOD
        network.engine.run_until(t)
        report = monitor.check()
        if use_heartbeats:
            if report.bad_probes:
                detected_at = t
                targets = set(failure.affected_links) | {failure.target}
                localized = any(
                    localization_correct(report.suspects, target, top_k=2)
                    for target in targets
                )
                break
        else:
            counter_anomalies = [
                a for a in report.anomalies
                if a.kind in (AnomalyKind.THRESHOLD_EXCEEDED,
                              AnomalyKind.DEVIATION,
                              AnomalyKind.LEVEL_SHIFT)
            ]
            if counter_anomalies:
                detected_at = t
                localized = any(
                    a.metric.split(".")[-1] in failure.affected_links
                    for a in counter_anomalies
                )
                break
    return detected_at - injected_at if detected_at else None, localized


def run_experiment(trials=3):
    rows = []
    results = {}
    for case_name, inject in FAILURE_CASES:
        for mode, use_hb in (("counters", False), ("heartbeats", True)):
            times, localizations = [], []
            for trial in range(trials):
                ttd, localized = run_trial(inject, use_hb, seed=trial)
                if ttd is not None:
                    times.append(ttd)
                    localizations.append(localized)
            rate = len(times) / trials
            ttd_ms = percentile(times, 50) * 1e3 if times else float("nan")
            loc = (sum(localizations) / len(localizations)
                   if localizations else 0.0)
            results[(case_name, mode)] = (rate, ttd_ms, loc)
            rows.append([case_name, mode, f"{rate:.0%}",
                         f"{ttd_ms:.1f}" if times else "-",
                         f"{loc:.0%}"])
    # healthy trials: the heartbeat path must not cry wolf
    for mode, use_hb in (("counters", False), ("heartbeats", True)):
        false_positives = sum(
            run_false_positive_trial(use_hb, seed=100 + trial)
            for trial in range(trials)
        )
        fp_rate = false_positives / trials
        results[("healthy", mode)] = (fp_rate, float("nan"), 0.0)
        rows.append(["healthy (FP rate)", mode, f"{fp_rate:.0%}", "-", "-"])
    print_table(
        "E4: failure detection & localization "
        f"({trials} trials/case, deadline {DEADLINE * 1e3:.0f}ms)",
        ["failure", "monitor", "detected", "median TTD (ms)",
         "localized (top-2)"],
        rows,
    )
    return results


def test_bench_e4(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for case_name, _ in FAILURE_CASES:
        rate, ttd_ms, loc = r[(case_name, "heartbeats")]
        assert rate == 1.0, f"{case_name}: heartbeats missed the failure"
        assert ttd_ms <= 50.0, f"{case_name}: detection too slow"
        assert loc >= 0.5, f"{case_name}: localization failed"
    # heartbeats detect far faster than counter baselining, every time
    for case_name, _ in FAILURE_CASES:
        _, counters_ttd, _ = r[(case_name, "counters")]
        _, hb_ttd, _ = r[(case_name, "heartbeats")]
        assert hb_ttd < counters_ttd / 4, case_name
    # counters cannot localize a failure on a link carrying no tenant
    # traffic (the quiet pcie-gpu0 going down); heartbeats can
    assert r[("link_down", "counters")][2] == 0.0
    assert r[("link_down", "heartbeats")][2] == 1.0
    # heartbeat detection does not cry wolf on a healthy, loaded host
    assert r[("healthy", "heartbeats")][0] == 0.0


if __name__ == "__main__":
    run_experiment()
