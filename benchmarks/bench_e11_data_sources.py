"""E11 — informative data and where to find it (§3.1 Q1).

The same noisy-neighbour incident (one tenant suddenly hogging the NIC's
PCIe path among four active tenants) is investigated with each counter
source:

* **hardware** — accurate totals, 64B-quantised, 100ms read latch,
  *no per-tenant attribution*;
* **software** — per-tenant, fast, but sees only ~90% of bytes;
* **future_hardware** — per-tenant, fast, full visibility.

Reported per source: whether congestion was *detected*, whether the hog
tenant could be *named* (top-talker attribution), time to a fresh reading,
and the byte-count error vs ground truth.

Expected shape: every source detects the congestion, but only the
tenant-attributing sources can name the culprit — and the software shim
under-reports bytes while hardware counters lag in time.  Combining both
(the paper's implied answer) covers all columns.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.errors import TelemetryError
from repro.telemetry import CounterBank, CounterSource
from repro.topology import shortest_path
from repro.units import Gbps, ms

TENANTS = ["t0", "t1", "t2", "t3"]
HOG = "t2"
LINK = "pcie-nic0"


def incident_network():
    """Four tenants on the NIC path; t2 goes rogue at t=0.2s."""
    network = fresh_network()
    path = shortest_path(network.topology, "nic0", "dimm0-0")
    for tenant in TENANTS:
        network.start_transfer(tenant, path, demand=Gbps(10))
    network.engine.run_until(0.2)
    network.start_transfer(HOG, path)  # elastic hog
    network.engine.run_until(0.5)
    return network


def investigate(source):
    network = incident_network()
    bank = CounterBank(network, source)
    now = network.engine.now
    truth_total = network.link_bytes(LINK)

    # detection: read total counters twice, one spec-interval apart
    first = bank.link_bytes(LINK)
    window = max(bank.spec.min_read_interval, ms(1))
    network.engine.run_until(now + window)
    second = bank.link_bytes(LINK)
    rate = (second - first) / window
    capacity = network.topology.link(LINK).capacity
    congestion_detected = rate > 0.8 * capacity

    # attribution: can we name the hog?
    try:
        per_tenant = {
            tenant: bank.tenant_link_bytes(tenant, LINK)
            for tenant in TENANTS
        }
        named = max(per_tenant, key=per_tenant.get)
        attribution = named == HOG
    except TelemetryError:
        attribution = False

    byte_error = abs(first - truth_total) / truth_total
    return {
        "detected": congestion_detected,
        "attributed": attribution,
        "freshness_ms": bank.spec.min_read_interval * 1e3,
        "byte_error": byte_error,
    }


def run_experiment():
    rows = []
    results = {}
    for source in CounterSource:
        r = investigate(source)
        results[source] = r
        rows.append([
            source.value,
            "yes" if r["detected"] else "no",
            "yes" if r["attributed"] else "NO (tenant-blind)",
            f"{r['freshness_ms']:.2f}",
            f"{r['byte_error']:.1%}",
        ])
    print_table(
        "E11: the same noisy-neighbour incident per counter source",
        ["source", "congestion detected", "hog named", "staleness (ms)",
         "byte error"],
        rows,
    )
    return results


def test_bench_e11(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # everyone sees the congestion
    assert all(v["detected"] for v in r.values())
    # only tenant-attributing sources can name the hog
    assert not r[CounterSource.HARDWARE]["attributed"]
    assert r[CounterSource.SOFTWARE]["attributed"]
    assert r[CounterSource.FUTURE_HARDWARE]["attributed"]
    # the software shim under-reports bytes; hardware counters do not
    assert r[CounterSource.SOFTWARE]["byte_error"] > 0.05
    assert r[CounterSource.HARDWARE]["byte_error"] < 0.01
    # hardware counters are orders slower to refresh
    assert r[CounterSource.HARDWARE]["freshness_ms"] > \
        100 * r[CounterSource.FUTURE_HARDWARE]["freshness_ms"]


if __name__ == "__main__":
    run_experiment()
