"""E6 — which resource model fits the intra-host network? (§3.2 Q1)

Each tenant's device talks to *two* peers (its local DIMM group and the
inter-host network), in both directions — the normal I/O pattern.  Under
the **pipe** model that takes four directional pipe reservations per
tenant (2 peers x 2 directions), each reserving its own path; under the
**hose** model it takes a single aggregate reservation that covers any
peer mix and reserves shared trunk links once.  A tenant is admitted only
if *all* of its intents fit (partial guarantees are useless).

Reported per {pipe, hose} x {reserved, work-conserving}: tenants admitted,
total reserved bandwidth, achieved goodput with half the admitted tenants
idle, and floor violations.

Expected shape: hose admits more tenants than pipe (the classic [16]
result, because pipe double-reserves shared links); work-conserving
recovers the goodput reserved mode strands; violations are zero
everywhere.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.core import HostNetworkManager, hose, pipe
from repro.sim.rng import make_rng
from repro.topology import shortest_path
from repro.units import Gbps, to_Gbps

ENDPOINT_POOL = ["nic0", "nic1", "gpu0", "gpu1"]
# Socket-local DIMM group per endpoint, matching the hose anchors so the
# driven traffic runs on the reserved tree.
DIMM_OF = {"nic0": "dimm0-0", "gpu0": "dimm0-0", "nvme0": "dimm0-0",
           "nic1": "dimm1-0", "gpu1": "dimm1-0", "nvme1": "dimm1-0"}
N_TENANTS = 10
FLOOR_CHOICES_GBPS = [40, 60, 80]


def tenant_intents(kind, tenant, endpoint, bandwidth):
    """The intent set one tenant needs under each resource model."""
    if kind == "hose":
        return [hose(f"{tenant}-hose", tenant, endpoint=endpoint,
                     bandwidth=bandwidth)]
    peers = [DIMM_OF[endpoint], "external"]
    intents = []
    for p_i, peer in enumerate(peers):
        intents.append(pipe(f"{tenant}-p{p_i}-out", tenant, src=endpoint,
                            dst=peer, bandwidth=bandwidth))
        intents.append(pipe(f"{tenant}-p{p_i}-in", tenant, src=peer,
                            dst=endpoint, bandwidth=bandwidth))
    return intents


def run_config(kind, work_conserving, seed=7):
    network = fresh_network()
    manager = HostNetworkManager(network, decision_latency=0.0,
                                 work_conserving=work_conserving,
                                 arbiter_period=0.001)
    rng = make_rng(seed, "e6")
    admitted = []  # (tenant, endpoint, bandwidth, placements)
    for i in range(N_TENANTS):
        tenant = f"t{i}"
        endpoint = rng.choice(ENDPOINT_POOL)
        bandwidth = Gbps(rng.choice(FLOOR_CHOICES_GBPS))
        placements = []
        ok = True
        for intent in tenant_intents(kind, tenant, endpoint, bandwidth):
            placement = manager.try_submit(intent)
            if placement is None:
                ok = False
                break
            placements.append(placement)
        if ok:
            admitted.append((tenant, endpoint, bandwidth, placements))
        else:
            for placement in placements:  # all-or-nothing rollback
                manager.release(placement.intent.intent_id)

    # Drive traffic: even-indexed admitted tenants push far beyond their
    # aggregate floor toward their DIMM *along the path their reservation
    # actually lives on*; odd-indexed stay idle.  (The arbiter aggregates
    # a tenant's directional floors per link, so the offered load must
    # exceed that aggregate for reserved-mode caps to bind.)
    active = []
    for index, (tenant, endpoint, bandwidth, placements) in \
            enumerate(admitted):
        if index % 2 == 1:
            continue
        path = None
        for placement in placements:
            for candidate_path in placement.candidate.paths:
                if candidate_path.dst == DIMM_OF[endpoint]:
                    path = candidate_path
                    break
            if path is not None:
                break
        if path is None:
            path = shortest_path(network.topology, endpoint,
                                 DIMM_OF[endpoint])
        flow = network.start_transfer(tenant, path, demand=bandwidth * 6)
        active.append((flow, bandwidth))
    manager.register_tenant("scavenger")
    scavenger = network.start_transfer(
        "scavenger", shortest_path(network.topology, "nic0", "dimm0-0"))
    network.engine.run_until(0.05)

    violations = sum(1 for flow, floor in active
                     if flow.current_rate < floor * 0.98)
    goodput = sum(f.current_rate for f, _ in active) + scavenger.current_rate
    reserved = sum(b for _, _, b, _ in admitted)
    footprint = sum(
        manager.ledger.reserved_total(link_id)
        for link_id in network.topology.link_ids()
    )
    manager.shutdown()
    return {
        "admitted": len(admitted),
        "reserved_gbps": to_Gbps(reserved),
        "footprint_gbps": to_Gbps(footprint),
        "goodput_gbps": to_Gbps(goodput),
        "violations": violations,
    }


def run_experiment():
    configs = [
        ("pipe", False, "pipe/reserved"),
        ("pipe", True, "pipe/work-conserving"),
        ("hose", False, "hose/reserved"),
        ("hose", True, "hose/work-conserving"),
    ]
    rows = []
    results = {}
    for kind, wc, label in configs:
        r = run_config(kind, wc)
        results[label] = r
        rows.append([label, f"{r['admitted']}/{N_TENANTS}",
                     r["reserved_gbps"], r["footprint_gbps"],
                     r["goodput_gbps"], r["violations"]])
    print_table(
        "E6: resource models — tenant admission, utilization, isolation",
        ["model", "tenants admitted", "floors (Gbps)",
         "ledger footprint (Gbps)", "goodput (Gbps)", "violations"],
        rows,
    )
    return results


def test_bench_e6(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # the hose model packs at least as many tenants as per-pair pipes,
    # with a strictly smaller reservation footprint per admitted tenant
    # (shared trunk links are reserved once, not once per pipe)
    assert r["hose/reserved"]["admitted"] >= r["pipe/reserved"]["admitted"]
    hose_eff = (r["hose/reserved"]["footprint_gbps"]
                / r["hose/reserved"]["admitted"])
    pipe_eff = (r["pipe/reserved"]["footprint_gbps"]
                / r["pipe/reserved"]["admitted"])
    assert hose_eff < pipe_eff
    # work conservation recovers stranded goodput in both models
    assert r["hose/work-conserving"]["goodput_gbps"] > \
        1.05 * r["hose/reserved"]["goodput_gbps"]
    assert r["pipe/work-conserving"]["goodput_gbps"] > \
        1.05 * r["pipe/reserved"]["goodput_gbps"]
    # guarantees never violated, in any configuration
    assert all(v["violations"] == 0 for v in r.values())


if __name__ == "__main__":
    run_experiment()
