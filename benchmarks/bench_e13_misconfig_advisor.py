"""E13 — diagnosing host misconfiguration from measurements (§2).

The paper counts the host configuration space (DDIO, IOMMU, ordering,
payload sizes, interrupt moderation, NUMA policy) among the main reasons
intra-host debugging is hard: a bad setting produces no error, only a
performance signature.  The config advisor measures each known-bad
configuration's signature with the diagnostic tools and names the
suspected misconfiguration.

Reported per misconfiguration: whether the advisor's top finding names
the injected misconfiguration, and the measured evidence.

Expected shape: every shipped misconfiguration identified by its top
finding; the recommended configuration yields zero findings (no false
positives).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import print_table

from repro.devices import MISCONFIGURATIONS, RECOMMENDED_CONFIG
from repro.devices.configured import build_configured_host
from repro.diagnostics.config_advisor import advise, measure_signature
from repro.topology import cascade_lake_2s


def run_experiment():
    topology = cascade_lake_2s()
    baseline = measure_signature(
        build_configured_host(topology, RECOMMENDED_CONFIG)
    )
    rows = []
    results = {}
    for name, config in sorted(MISCONFIGURATIONS.items()):
        signature = measure_signature(build_configured_host(topology,
                                                            config))
        findings = advise(signature, baseline)
        top = findings[0].suspected if findings else "(none)"
        correct = top == name
        results[name] = (correct, findings)
        rows.append([
            name,
            top,
            "yes" if correct else "NO",
            findings[0].evidence if findings else "-",
        ])
    healthy_findings = advise(baseline, baseline)
    results["healthy"] = (not healthy_findings, healthy_findings)
    rows.append([
        "(recommended)",
        "(none)" if not healthy_findings else healthy_findings[0].suspected,
        "yes" if not healthy_findings else "NO",
        "clean signature",
    ])
    print_table(
        "E13: configuration advisor vs injected misconfigurations",
        ["injected", "top finding", "correct", "evidence"],
        rows,
    )
    return results


def test_bench_e13(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for name in MISCONFIGURATIONS:
        correct, findings = r[name]
        assert correct, f"{name}: advisor named {findings[:1]}"
    healthy_ok, findings = r["healthy"]
    assert healthy_ok, f"false positives on a healthy host: {findings}"


if __name__ == "__main__":
    run_experiment()
