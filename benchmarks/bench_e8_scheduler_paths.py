"""E8 — topology-aware path scheduling on a DGX-like box (§3.2).

"There can be several GPU-SSD pathways within an intra-host network that
can support the same amount of bandwidth.  The scheduler needs to
carefully choose one of the pathways ... to maximize overall resource
efficiency."

A stream of cross-socket pipe intents (GPU -> remote DIMM, GPU -> NIC
uplinks) is submitted to the 8-GPU/8-NIC DGX-like host under three path
strategies.  Reported: intents accepted before first rejection, total
accepted, and the fabric's max directed-link reservation after the run.

Expected shape: topology-aware >= first-fit >= random on acceptance, and
topology-aware ends with the most balanced fabric (lowest max
utilization for the same accepted set size).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import print_table

from repro.core import (
    AdmissionController,
    ReservationLedger,
    interpret,
    make_scheduler,
    pipe,
)
from repro.errors import HostNetError
from repro.sim.rng import make_rng
from repro.topology import dgx_like
from repro.units import Gbps

N_INTENTS = 60


def intent_stream(seed=3):
    """Cross-socket demands with real path diversity on the DGX."""
    rng = make_rng(seed, "e8")
    gpus = [f"gpu{i}" for i in range(8)]
    remote_dimm = {0: "dimm1-0", 1: "dimm0-0"}
    intents = []
    topo = dgx_like()
    for i in range(N_INTENTS):
        gpu = rng.choice(gpus)
        socket = topo.socket_of(gpu)
        dst = remote_dimm[socket] if rng.random() < 0.7 else "external"
        intents.append(
            pipe(f"i{i}", f"t{i}", src=gpu, dst=dst,
                 bandwidth=Gbps(rng.choice([15, 25, 35])))
        )
    return intents


def run_strategy(strategy):
    topology = dgx_like()
    ledger = ReservationLedger(topology)
    admission = AdmissionController(ledger, headroom=1.0)
    scheduler = make_scheduler(strategy, seed=1)
    accepted = 0
    first_rejection = None
    for index, intent in enumerate(intent_stream()):
        try:
            compiled = interpret(topology, intent, k=6)
            candidate = scheduler.choose(compiled, admission)
            admission.admit(compiled, candidate)
            accepted += 1
        except HostNetError:
            if first_rejection is None:
                first_rejection = index
    max_reserved = max(
        (ledger.utilization(link.link_id, direction)
         for link in topology.links()
         for direction in ("fwd", "rev")),
        default=0.0,
    )
    return {
        "accepted": accepted,
        "first_rejection": (first_rejection if first_rejection is not None
                            else N_INTENTS),
        "max_reserved_util": max_reserved,
    }


def run_experiment():
    rows = []
    results = {}
    for strategy in ("random", "first_fit", "topology_aware"):
        r = run_strategy(strategy)
        results[strategy] = r
        rows.append([strategy, f"{r['accepted']}/{N_INTENTS}",
                     r["first_rejection"],
                     f"{r['max_reserved_util']:.0%}"])
    print_table(
        "E8: path-scheduling strategies on dgx_like "
        "(cross-socket pipe stream)",
        ["strategy", "accepted", "first rejection at",
         "max reserved util"],
        rows,
    )
    return results


def test_bench_e8(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert r["topology_aware"]["accepted"] >= r["first_fit"]["accepted"]
    assert r["topology_aware"]["accepted"] >= r["random"]["accepted"]
    assert r["topology_aware"]["accepted"] > r["random"]["accepted"] or \
        r["topology_aware"]["max_reserved_util"] <= \
        r["random"]["max_reserved_util"]
    # the balanced packer survives strictly longer before first rejection
    assert r["topology_aware"]["first_rejection"] >= \
        r["random"]["first_rejection"]


if __name__ == "__main__":
    run_experiment()
