"""F1 — regenerate Figure 1's capacity/latency table from the simulator.

The paper's only figure annotates a commodity-server topology with a table
of capacity and basic latency per link class.  We *measure* both with the
library's own diagnostic tools (hostperf for capacity, hostping for
latency) on the calibrated ``cascade_lake_2s`` preset, and assert each
measurement lands inside the paper's published range.
"""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).parent))
from common import fresh_network, print_table

from repro.diagnostics import hostperf, hostping
from repro.topology import FIGURE1_RANGES, LinkClass
from repro.units import to_Gbps, to_us

#: One representative (src, dst) pair per Figure-1 link class; the pair's
#: shortest path has the target class as its bottleneck/only hop.
CLASS_PROBES = {
    LinkClass.INTER_SOCKET: ("socket0", "socket1"),
    LinkClass.INTRA_SOCKET: ("socket0", "dimm0-0"),
    LinkClass.PCIE_UPSTREAM: ("pcisw0", "rc0-0"),
    LinkClass.PCIE_DOWNSTREAM: ("pcisw0", "nic0"),
    LinkClass.INTER_HOST: ("nic0", "external"),
}

#: Figure 1's printed ranges, for the table's reference column.
PAPER_RANGES = {
    LinkClass.INTER_SOCKET: ("20-72 GBps", "130-220 ns"),
    LinkClass.INTRA_SOCKET: ("100-200 GBps", "2-110 ns"),
    LinkClass.PCIE_UPSTREAM: ("~256 Gbps", "30-120 ns"),
    LinkClass.PCIE_DOWNSTREAM: ("~256 Gbps", "30-120 ns"),
    LinkClass.INTER_HOST: ("~200 Gbps", "<2 us"),
}


def measure_class(network, link_class):
    """Measure one link class: (capacity bytes/s, one-way latency s)."""
    src, dst = CLASS_PROBES[link_class]
    perf = hostperf(network, src, dst, duration=0.02)
    ping = hostping(network, src, dst, count=5)
    # hostperf measures a single path; inter-socket capacity in Figure 1 is
    # per-link, and our probe path uses exactly one of the parallel links.
    one_way = ping.summary.p50 / 2.0
    return perf.achieved_rate, one_way, perf.path


def run_experiment():
    network = fresh_network()
    rows = []
    results = {}
    for link_class in CLASS_PROBES:
        capacity, latency, path = measure_class(network, link_class)
        results[link_class] = (capacity, latency)
        paper_cap, paper_lat = PAPER_RANGES[link_class]
        rows.append([
            link_class.value,
            f"{to_Gbps(capacity):.1f} Gbps",
            paper_cap,
            f"{to_us(latency) * 1000:.0f} ns",
            paper_lat,
        ])
    print_table(
        "F1: Figure 1 capacity / basic latency table (measured vs paper)",
        ["link class", "measured cap", "paper cap",
         "measured latency", "paper latency"],
        rows,
    )
    return results


def test_bench_f1(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for link_class, (capacity, latency) in results.items():
        (cap_lo, cap_hi), (lat_lo, lat_hi) = FIGURE1_RANGES[link_class]
        assert cap_lo * 0.8 <= capacity <= cap_hi * 1.05, link_class
        assert lat_lo * 0.8 <= latency <= lat_hi * 1.2, link_class


if __name__ == "__main__":
    run_experiment()
