"""Topology-aware root-cause localization (boolean network tomography).

Counters say *something is slow*; they rarely say *what broke* (§2: "identif-
ying the root cause of the congestion ... remains challenging").  Heartbeat
probes traverse known paths, so a faulty link betrays itself by appearing in
*anomalous* probes and not in *healthy* ones.  We score each link with the
classic tomography ratio

``suspicion(link) = bad_crossings / total_crossings``

over the latest probe round, then fold link scores into device scores
(a failing PCIe switch drags down all its links).  This is the Pingmesh/
NetBouncer recipe ([23], [52]) applied inside the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..topology.graph import HostTopology
from .heartbeat import ProbeResult


@dataclass(frozen=True)
class Suspect:
    """One ranked localization candidate.

    Attributes:
        element_id: Link or device id.
        kind: ``"link"`` or ``"device"``.
        suspicion: Score in [0, 1]; 1.0 means every probe crossing the
            element was anomalous.
        bad_crossings / total_crossings: The evidence behind the score.
    """

    element_id: str
    kind: str
    suspicion: float
    bad_crossings: int
    total_crossings: int


def localize(
    topology: HostTopology,
    healthy: Iterable[ProbeResult],
    anomalous: Iterable[ProbeResult],
    min_crossings: int = 1,
) -> List[Suspect]:
    """Rank links (then devices) by tomography suspicion.

    Args:
        topology: The host topology probes ran on.
        healthy: Latest-round probes considered normal.
        anomalous: Latest-round probes flagged unhealthy.
        min_crossings: Links observed by fewer probes than this are not
            scored (insufficient evidence).

    Returns:
        Suspects sorted by (suspicion, evidence) descending — links first,
        then devices whose incident links are collectively suspicious.
    """
    bad: Dict[str, int] = {}
    total: Dict[str, int] = {}

    def account(probes: Iterable[ProbeResult], is_bad: bool) -> None:
        for probe in probes:
            for link_id in probe.path.links:
                total[link_id] = total.get(link_id, 0) + 1
                if is_bad:
                    bad[link_id] = bad.get(link_id, 0) + 1

    account(healthy, is_bad=False)
    account(anomalous, is_bad=True)

    link_suspects: List[Suspect] = []
    for link_id, crossings in total.items():
        if crossings < min_crossings:
            continue
        bad_count = bad.get(link_id, 0)
        link_suspects.append(
            Suspect(
                element_id=link_id,
                kind="link",
                suspicion=bad_count / crossings,
                bad_crossings=bad_count,
                total_crossings=crossings,
            )
        )

    # Device scores: a device is suspicious when its incident links are.
    device_suspects: List[Suspect] = []
    by_link = {s.element_id: s for s in link_suspects}
    for device in topology.devices():
        incident = topology.incident_links(device.device_id)
        scored = [by_link[l.link_id] for l in incident if l.link_id in by_link]
        if not scored:
            continue
        total_cross = sum(s.total_crossings for s in scored)
        bad_cross = sum(s.bad_crossings for s in scored)
        if total_cross == 0:
            continue
        device_suspects.append(
            Suspect(
                element_id=device.device_id,
                kind="device",
                suspicion=bad_cross / total_cross,
                bad_crossings=bad_cross,
                total_crossings=total_cross,
            )
        )

    key = lambda s: (s.suspicion, s.bad_crossings)
    link_suspects.sort(key=key, reverse=True)
    device_suspects.sort(key=key, reverse=True)
    return link_suspects + device_suspects


def top_suspect(suspects: List[Suspect],
                kind: str = "link") -> Optional[Suspect]:
    """The highest-ranked suspect of the given *kind*, if any was scored."""
    for suspect in suspects:
        if suspect.kind == kind:
            return suspect
    return None


def localization_correct(suspects: List[Suspect], truth: str,
                         top_k: int = 1, kind: str = "link") -> bool:
    """Whether the ground-truth element appears in the top-*k* suspects.

    The scoring metric experiments use: an injection run is *localized* if
    the injected element ranks in the top-k of its kind with nonzero
    suspicion.
    """
    ranked = [s for s in suspects if s.kind == kind and s.suspicion > 0]
    return any(s.element_id == truth for s in ranked[:top_k])
