"""Anomaly detectors over telemetry streams (§3.1's analysis platform).

Three classic detectors, each a different trade-off between setup cost and
sensitivity:

* :class:`ThresholdDetector` — static bound (e.g. utilization > 0.9 means
  congestion); zero training, misses anything that stays under the bar;
* :class:`EwmaDetector` — self-baselining z-score on a smoothed mean;
  catches shifts relative to *this host's* normal;
* :class:`CusumDetector` — cumulative-sum change-point detection; catches
  slow drifts threshold/EWMA miss.

Detectors are streaming: feed them one ``(metric, time, value)`` at a time
(or let :func:`scan_store` replay a :class:`~repro.telemetry.storage.
MetricStore`), and they emit :class:`Anomaly` records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats import EwmaTracker
from ..telemetry.storage import MetricStore


class AnomalyKind(enum.Enum):
    """What kind of misbehaviour a detector flagged."""

    THRESHOLD_EXCEEDED = "threshold_exceeded"
    DEVIATION = "deviation"
    LEVEL_SHIFT = "level_shift"
    MISSED_HEARTBEAT = "missed_heartbeat"
    LATENCY_INFLATION = "latency_inflation"


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly.

    Attributes:
        time: When it was detected (simulated seconds).
        metric: The offending metric name.
        kind: The :class:`AnomalyKind`.
        value: Observed value.
        expected: What the detector believed normal was.
        severity: Unitless score (bigger = worse); comparable only within
            one detector kind.
    """

    time: float
    metric: str
    kind: AnomalyKind
    value: float
    expected: float
    severity: float


class Detector:
    """Base streaming detector interface."""

    def observe(self, metric: str, t: float, value: float) -> Optional[Anomaly]:
        """Feed one sample; returns an :class:`Anomaly` or ``None``."""
        raise NotImplementedError


class ThresholdDetector(Detector):
    """Flags samples beyond a static threshold.

    Args:
        threshold: The bound.
        above: ``True`` flags ``value > threshold``, else ``value <``.
        metric_prefix: Only metrics starting with this are examined
            (e.g. ``"link_util."``).
    """

    def __init__(self, threshold: float, above: bool = True,
                 metric_prefix: str = "") -> None:
        self.threshold = threshold
        self.above = above
        self.metric_prefix = metric_prefix

    def observe(self, metric: str, t: float, value: float) -> Optional[Anomaly]:
        """Flag *value* if it breaches the static threshold."""
        if self.metric_prefix and not metric.startswith(self.metric_prefix):
            return None
        breached = value > self.threshold if self.above else value < self.threshold
        if not breached:
            return None
        margin = abs(value - self.threshold)
        return Anomaly(
            time=t, metric=metric, kind=AnomalyKind.THRESHOLD_EXCEEDED,
            value=value, expected=self.threshold,
            severity=margin / max(abs(self.threshold), 1e-12),
        )


class EwmaDetector(Detector):
    """Flags samples whose z-score against an EWMA baseline is extreme.

    Args:
        zscore_threshold: |z| beyond which a sample is anomalous.
        alpha: EWMA smoothing factor.
        warmup: Samples per metric consumed before any flagging (baseline
            formation).
        metric_prefix: Metric-name filter, as in :class:`ThresholdDetector`.
    """

    def __init__(self, zscore_threshold: float = 6.0, alpha: float = 0.2,
                 warmup: int = 10, metric_prefix: str = "") -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.zscore_threshold = zscore_threshold
        self.alpha = alpha
        self.warmup = warmup
        self.metric_prefix = metric_prefix
        self._trackers: Dict[str, EwmaTracker] = {}

    def observe(self, metric: str, t: float, value: float) -> Optional[Anomaly]:
        """Flag *value* when its z-score against the EWMA baseline is
        extreme; always folds the sample into the baseline."""
        if self.metric_prefix and not metric.startswith(self.metric_prefix):
            return None
        tracker = self._trackers.get(metric)
        if tracker is None:
            tracker = EwmaTracker(alpha=self.alpha)
            self._trackers[metric] = tracker
        anomaly = None
        if tracker.observations >= self.warmup:
            z = tracker.zscore(value)
            if abs(z) > self.zscore_threshold:
                anomaly = Anomaly(
                    time=t, metric=metric, kind=AnomalyKind.DEVIATION,
                    value=value, expected=tracker.value or 0.0,
                    severity=abs(z),
                )
        # Anomalous samples still update the baseline (slowly, via alpha);
        # a persistent shift eventually becomes the new normal, like real
        # self-baselining monitors.
        tracker.update(value)
        return anomaly


class CusumDetector(Detector):
    """Two-sided CUSUM change-point detector.

    Accumulates deviations beyond a *drift* allowance; flags when either
    cumulative sum exceeds *threshold* times the reference scale.

    Args:
        drift: Per-sample allowance as a fraction of the reference mean.
        threshold: Alarm level, in multiples of the reference mean.
        warmup: Samples used to form the reference mean.
        metric_prefix: Metric-name filter.
    """

    def __init__(self, drift: float = 0.05, threshold: float = 1.0,
                 warmup: int = 10, metric_prefix: str = "") -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.drift = drift
        self.threshold = threshold
        self.warmup = warmup
        self.metric_prefix = metric_prefix
        self._state: Dict[str, Dict[str, float]] = {}

    def observe(self, metric: str, t: float, value: float) -> Optional[Anomaly]:
        """Accumulate CUSUM statistics; flag and reset on alarm."""
        if self.metric_prefix and not metric.startswith(self.metric_prefix):
            return None
        state = self._state.setdefault(
            metric, {"count": 0.0, "mean": 0.0, "pos": 0.0, "neg": 0.0}
        )
        state["count"] += 1
        if state["count"] <= self.warmup:
            # Running mean during warmup.
            state["mean"] += (value - state["mean"]) / state["count"]
            return None
        reference = state["mean"]
        scale = max(abs(reference), 1e-12)
        allowance = self.drift * scale
        state["pos"] = max(0.0, state["pos"] + (value - reference) - allowance)
        state["neg"] = max(0.0, state["neg"] - (value - reference) - allowance)
        alarm = max(state["pos"], state["neg"])
        if alarm <= self.threshold * scale:
            return None
        severity = alarm / (self.threshold * scale)
        state["pos"] = 0.0
        state["neg"] = 0.0
        return Anomaly(
            time=t, metric=metric, kind=AnomalyKind.LEVEL_SHIFT,
            value=value, expected=reference, severity=severity,
        )


class LatencyInflationDetector(Detector):
    """Flags latency streams inflating past an SLO bound.

    The latency-side signal the SLO subsystem (:mod:`repro.slo`) feeds
    into the anomaly vocabulary: a sample beyond ``bound * factor``
    opens an inflation episode for its metric and is flagged once;
    further bad samples in the same episode are suppressed until the
    stream drops back under the bound (episode semantics — one anomaly
    per regression, not one per probe tick).

    Args:
        bound: The latency bound in seconds (an objective's bound).
        factor: Inflation multiple that opens an episode; 1.0 flags any
            bound violation.
        metric_prefix: Metric-name filter, as in
            :class:`ThresholdDetector`.
    """

    def __init__(self, bound: float, factor: float = 1.0,
                 metric_prefix: str = "") -> None:
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.bound = bound
        self.factor = factor
        self.metric_prefix = metric_prefix
        self._inflated: Dict[str, bool] = {}

    def observe(self, metric: str, t: float, value: float) -> Optional[Anomaly]:
        """Flag the first sample of each inflation episode."""
        if self.metric_prefix and not metric.startswith(self.metric_prefix):
            return None
        threshold = self.bound * self.factor
        inflated = value > threshold
        was_inflated = self._inflated.get(metric, False)
        self._inflated[metric] = inflated
        if not inflated or was_inflated:
            return None
        return Anomaly(
            time=t, metric=metric, kind=AnomalyKind.LATENCY_INFLATION,
            value=value, expected=self.bound,
            severity=value / self.bound,
        )


def scan_store(store: MetricStore, detectors: List[Detector],
               metrics: Optional[List[str]] = None) -> List[Anomaly]:
    """Replay a :class:`MetricStore` through *detectors*, oldest first.

    Samples are merged across metrics in time order so streaming state
    (EWMA baselines, CUSUM sums) sees them as they arrived.
    """
    names = metrics if metrics is not None else store.metrics()
    merged = []
    for name in names:
        for t, v in store.series(name):
            merged.append((t, name, v))
    merged.sort(key=lambda item: item[0])
    found: List[Anomaly] = []
    for t, name, v in merged:
        for detector in detectors:
            anomaly = detector.observe(name, t, v)
            if anomaly is not None:
                found.append(anomaly)
    return found
