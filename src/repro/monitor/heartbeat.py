"""Intra-host heartbeat mesh — Pingmesh brought inside the server (§3.1).

The paper's anomaly-platform proposal: "devices on the intra-host network
periodically send 'heartbeats' to each other, similar to works like
Pingmesh".  Every probing period, each ordered device pair exchanges a tiny
probe over its real fabric path; the measured RTT reflects current
congestion, injected latency, and degraded capacity — and a down path shows
up as a *missed* heartbeat.  Probe results feed the anomaly detectors and
the topology-aware root-cause localizer.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MonitorError, NoPathError
from ..sim.engine import PeriodicTask
from ..trace.recorder import TRACER
from ..sim.network import SYSTEM_TENANT, FabricNetwork
from ..topology.routing import Path, shortest_path
from ..units import ns


@dataclass(frozen=True)
class ProbeResult:
    """One heartbeat measurement.

    Attributes:
        src / dst: Probed device pair.
        time: When the probe completed (simulated seconds).
        rtt: Measured round-trip time; ``inf`` means the heartbeat was
            missed (path down).
        path: The fabric path the probe took.
    """

    src: str
    dst: str
    time: float
    rtt: float
    path: Path

    @property
    def missed(self) -> bool:
        """Whether the heartbeat got no response."""
        return math.isinf(self.rtt)


class HeartbeatMesh:
    """Periodic all-pairs probing among selected devices.

    Args:
        network: The fabric under test.
        probers: Device ids that participate (endpoints, typically one per
            interesting device); all ordered pairs probe each other.
        period: Probing period in seconds.
        probe_bytes: Probe message size.
        rng: Optional seeded RNG adding measurement noise (±2% of RTT),
            mimicking real timestamping jitter.
        history: Probe results retained per pair.
        consume_fabric: When ``True``, every probe also injects its bytes
            as a real system-tenant transfer, so heavy probing shows up in
            counters and costs tenants bandwidth — the §3.1 Q2 overhead
            applies to active probing just as to telemetry shipping.
    """

    def __init__(
        self,
        network: FabricNetwork,
        probers: Sequence[str],
        period: float = 0.005,
        probe_bytes: float = 64.0,
        rng: Optional[random.Random] = None,
        history: int = 256,
        consume_fabric: bool = False,
    ) -> None:
        if len(probers) < 2:
            raise MonitorError("heartbeat mesh needs at least two probers")
        if period <= 0:
            raise MonitorError(f"period must be > 0, got {period}")
        self.network = network
        self.probers = list(probers)
        self.period = period
        self.probe_bytes = probe_bytes
        self.rng = rng
        self.history = history
        self.consume_fabric = consume_fabric
        self.probe_bytes_sent = 0.0
        self._paths: Dict[Tuple[str, str], Path] = {}
        self._results: Dict[Tuple[str, str], List[ProbeResult]] = {}
        self._baseline: Dict[Tuple[str, str], float] = {}
        self._task: Optional[PeriodicTask] = None
        self.probes_sent = 0

        for src, dst in itertools.permutations(self.probers, 2):
            try:
                self._paths[(src, dst)] = shortest_path(
                    network.topology, src, dst
                )
            except NoPathError:
                continue
        if not self._paths:
            raise MonitorError("no probe-able pairs among the probers")

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic probing (first round after one period)."""
        if self._task is not None:
            raise MonitorError("heartbeat mesh already started")
        self._task = self.network.engine.schedule_every(
            self.period, self.probe_all, label="heartbeat"
        )

    def stop(self) -> None:
        """Stop probing."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- probing ---------------------------------------------------------------

    def probe_pair(self, src: str, dst: str) -> ProbeResult:
        """Probe one pair immediately and record the result."""
        try:
            path = self._paths[(src, dst)]
        except KeyError:
            raise MonitorError(f"pair ({src!r}, {dst!r}) is not in the mesh")
        rtt = self.network.round_trip_latency(
            path, self.probe_bytes, self.probe_bytes
        )
        if not math.isinf(rtt) and self.rng is not None:
            rtt *= 1.0 + self.rng.uniform(-0.02, 0.02)
        if self.consume_fabric and not math.isinf(rtt):
            # request + response bytes actually cross the fabric
            self.network.start_transfer(
                SYSTEM_TENANT, path, size=2 * self.probe_bytes,
                tags={"app": "heartbeat"},
            )
            self.probe_bytes_sent += 2 * self.probe_bytes
        result = ProbeResult(
            src=src, dst=dst, time=self.network.engine.now, rtt=rtt, path=path
        )
        bucket = self._results.setdefault((src, dst), [])
        bucket.append(result)
        if len(bucket) > self.history:
            del bucket[: len(bucket) - self.history]
        self.probes_sent += 1
        return result

    def probe_all(self) -> List[ProbeResult]:
        """Probe every pair once; returns this round's results."""
        if not TRACER.enabled:
            return [self.probe_pair(src, dst) for src, dst in self._paths]
        with TRACER.span("monitor", "probe_round",
                         {"pairs": len(self._paths)}):
            results = [self.probe_pair(src, dst) for src, dst in self._paths]
            TRACER.annotate(
                missed=sum(1 for r in results if r.missed)
            )
            return results

    # -- queries -----------------------------------------------------------------

    def pairs(self) -> List[Tuple[str, str]]:
        """All probed (src, dst) pairs."""
        return list(self._paths)

    def path_for(self, src: str, dst: str) -> Path:
        """The fabric path used to probe (src, dst)."""
        return self._paths[(src, dst)]

    def results(self, src: str, dst: str) -> List[ProbeResult]:
        """Retained probe history for one pair (oldest first)."""
        return list(self._results.get((src, dst), []))

    def latest_round(self) -> List[ProbeResult]:
        """The most recent result of every pair that has any."""
        latest = []
        for pair, bucket in self._results.items():
            if bucket:
                latest.append(bucket[-1])
        return latest

    def record_baseline(self) -> None:
        """Snapshot current RTTs as the healthy baseline for each pair.

        Call once while the host is known-good; anomaly scoring compares
        later probes against these.
        """
        for src, dst in self._paths:
            result = self.probe_pair(src, dst)
            if not result.missed:
                self._baseline[(src, dst)] = result.rtt

    def baseline(self, src: str, dst: str) -> Optional[float]:
        """The recorded healthy RTT for a pair, if any."""
        return self._baseline.get((src, dst))

    def anomalous_probes(self, inflation_factor: float = 3.0,
                         floor: float = ns(50)) -> List[ProbeResult]:
        """Latest-round probes that look unhealthy.

        A probe is anomalous if it was missed, or its RTT exceeds
        ``max(baseline * inflation_factor, baseline + floor)``.  Pairs
        without a baseline are skipped (unknown, not anomalous).
        """
        flagged = []
        for result in self.latest_round():
            if result.missed:
                flagged.append(result)
                continue
            base = self._baseline.get((result.src, result.dst))
            if base is None:
                continue
            if result.rtt > max(base * inflation_factor, base + floor):
                flagged.append(result)
        return flagged
