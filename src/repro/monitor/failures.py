"""Failure injection — the ground truth generator for detection experiments.

Real failures can't be ordered from hardware, so E4 injects them: silent
link/switch degradation (§3.1's motivating case), hard link-down, flapping,
and host misconfiguration.  Every injection is recorded with its ground
truth so detection rate, time-to-detect, and localization accuracy can be
scored afterwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import MonitorError
from ..sim.network import FabricNetwork
from ..units import us


class FailureKind(enum.Enum):
    """Kinds of injectable failures."""

    LINK_DEGRADE = "link_degrade"  # silent capacity loss + extra latency
    LINK_DOWN = "link_down"  # hard failure
    LINK_FLAP = "link_flap"  # periodic up/down
    SWITCH_DEGRADE = "switch_degrade"  # all links of one device degrade


@dataclass
class InjectedFailure:
    """Record of one injected failure (the experiment's ground truth).

    Attributes:
        failure_id: Unique id.
        kind: The :class:`FailureKind`.
        target: Link id (link failures) or device id (switch failures).
        injected_at: Simulated injection time.
        cleared_at: When it was repaired, if it was.
        affected_links: Every link whose behaviour was changed.
        capacity_factor: Degradation factor for degrade kinds (else None).
        extra_latency: Injected one-way latency for degrade kinds.
    """

    failure_id: str
    kind: FailureKind
    target: str
    injected_at: float
    cleared_at: Optional[float] = None
    affected_links: List[str] = field(default_factory=list)
    capacity_factor: Optional[float] = None
    extra_latency: float = 0.0

    @property
    def active(self) -> bool:
        """Whether the failure is still in effect."""
        return self.cleared_at is None


class FailureInjector:
    """Injects and repairs fabric failures on a live network."""

    def __init__(self, network: FabricNetwork) -> None:
        self.network = network
        self._failures: Dict[str, InjectedFailure] = {}
        self._seq = 0
        self._flap_tasks: Dict[str, object] = {}

    def _new_id(self, kind: FailureKind) -> str:
        self._seq += 1
        return f"{kind.value}-{self._seq}"

    # -- injections -----------------------------------------------------------

    def degrade_link(self, link_id: str, capacity_factor: float = 0.25,
                     extra_latency: float = us(2)) -> InjectedFailure:
        """Silently degrade one link to *capacity_factor* of capacity."""
        if not 0 < capacity_factor <= 1:
            raise MonitorError("capacity_factor must be in (0, 1]")
        link = self.network.topology.link(link_id)
        link.extra_latency = extra_latency
        self.network.degrade_link(link_id, link.capacity * capacity_factor)
        failure = InjectedFailure(
            failure_id=self._new_id(FailureKind.LINK_DEGRADE),
            kind=FailureKind.LINK_DEGRADE,
            target=link_id,
            injected_at=self.network.engine.now,
            affected_links=[link_id],
            capacity_factor=capacity_factor,
            extra_latency=extra_latency,
        )
        self._failures[failure.failure_id] = failure
        return failure

    def fail_link(self, link_id: str) -> InjectedFailure:
        """Hard-fail one link (down)."""
        self.network.topology.link(link_id)  # validate
        self.network.set_link_up(link_id, False)
        failure = InjectedFailure(
            failure_id=self._new_id(FailureKind.LINK_DOWN),
            kind=FailureKind.LINK_DOWN,
            target=link_id,
            injected_at=self.network.engine.now,
            affected_links=[link_id],
        )
        self._failures[failure.failure_id] = failure
        return failure

    def flap_link(self, link_id: str, period: float = 0.05) -> InjectedFailure:
        """Flap one link up/down every *period* seconds until cleared."""
        self.network.topology.link(link_id)  # validate
        failure = InjectedFailure(
            failure_id=self._new_id(FailureKind.LINK_FLAP),
            kind=FailureKind.LINK_FLAP,
            target=link_id,
            injected_at=self.network.engine.now,
            affected_links=[link_id],
        )
        self._failures[failure.failure_id] = failure

        def toggle() -> None:
            if not failure.active:
                return
            link = self.network.topology.link(link_id)
            hard_down = any(
                f.active and f.kind is FailureKind.LINK_DOWN
                and link_id in f.affected_links
                for f in self._failures.values()
            )
            if hard_down:
                # A concurrent hard failure pins the link down; don't let
                # the flap raise it while that failure is uncleared.
                if link.up:
                    self.network.set_link_up(link_id, False)
                return
            self.network.set_link_up(link_id, not link.up)

        task = self.network.engine.schedule_every(
            period, toggle, label=f"flap-{link_id}"
        )
        self._flap_tasks[failure.failure_id] = task
        return failure

    def degrade_switch(self, switch_id: str, capacity_factor: float = 0.25,
                       extra_latency: float = us(2)) -> InjectedFailure:
        """Silently degrade every link incident to *switch_id*.

        The paper's §3.1 motivating case: a failing PCIe switch silently
        slows every device behind it, with no error surfaced anywhere.
        """
        if not 0 < capacity_factor <= 1:
            raise MonitorError("capacity_factor must be in (0, 1]")
        incident = self.network.topology.incident_links(switch_id)
        if not incident:
            raise MonitorError(f"device {switch_id!r} has no links to degrade")
        affected = []
        for link in incident:
            link.extra_latency = extra_latency
            self.network.degrade_link(
                link.link_id, link.capacity * capacity_factor
            )
            affected.append(link.link_id)
        failure = InjectedFailure(
            failure_id=self._new_id(FailureKind.SWITCH_DEGRADE),
            kind=FailureKind.SWITCH_DEGRADE,
            target=switch_id,
            injected_at=self.network.engine.now,
            affected_links=affected,
            capacity_factor=capacity_factor,
            extra_latency=extra_latency,
        )
        self._failures[failure.failure_id] = failure
        return failure

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, inject, at: float,
                 clear_after: Optional[float] = None) -> None:
        """Schedule an injection (and optional repair) on the engine.

        Args:
            inject: ``lambda injector: injector.degrade_link(...)`` — called
                with this injector at time *at*; must return the
                :class:`InjectedFailure`.
            at: Absolute injection time (simulated seconds, >= now).
            clear_after: Seconds after injection to auto-repair; ``None``
                leaves the failure in place.

        Scripted failure timelines are how experiments exercise detection
        under realistic incident/repair cycles.
        """
        engine = self.network.engine

        def fire() -> None:
            failure = inject(self)
            if clear_after is not None:
                engine.schedule_in(clear_after,
                                   lambda: self.clear(failure),
                                   label="failure-repair")

        engine.schedule_at(at, fire, label="failure-inject")

    # -- repair ------------------------------------------------------------------

    def clear(self, failure: InjectedFailure) -> None:
        """Repair an injected failure, restoring healthy behaviour.

        Failures may overlap on a link (a switch degrade plus a link-down,
        say); repairing one must leave the others' effects in place, so the
        link's state is *recomputed* from every still-active failure rather
        than blindly reset — repairing in any order converges to baseline.
        """
        if not failure.active:
            return
        task = self._flap_tasks.pop(failure.failure_id, None)
        if task is not None:
            task.cancel()
        failure.cleared_at = self.network.engine.now
        with self.network.batch():
            for link_id in failure.affected_links:
                self._reapply_active(link_id)

    def _reapply_active(self, link_id: str) -> None:
        """Set *link_id*'s state to the superposition of active failures.

        Healthy unless still-active failures say otherwise: degraded to the
        strictest active factor, slowed by the largest extra latency, down
        while any LINK_DOWN persists.  An active LINK_FLAP carries no
        persistent state — its toggle task keeps driving ``up`` until the
        flap itself is cleared.
        """
        link = self.network.topology.link(link_id)
        degraded: Optional[float] = None
        extra = 0.0
        up = True
        flapping = False
        for other in self._failures.values():
            if not other.active or link_id not in other.affected_links:
                continue
            if other.kind in (FailureKind.LINK_DEGRADE,
                              FailureKind.SWITCH_DEGRADE):
                cap = link.capacity * (other.capacity_factor or 1.0)
                degraded = cap if degraded is None else min(degraded, cap)
                extra = max(extra, other.extra_latency)
            elif other.kind is FailureKind.LINK_DOWN:
                up = False
            elif other.kind is FailureKind.LINK_FLAP:
                flapping = True
        link.extra_latency = extra
        self.network.degrade_link(link_id, degraded)
        if up and flapping and not link.up:
            # Mid-flap down phase: leave the toggle task in charge.
            up = False
        if link.up != up:
            self.network.set_link_up(link_id, up)

    def clear_all(self) -> None:
        """Repair everything still active."""
        for failure in list(self._failures.values()):
            self.clear(failure)

    # -- queries -----------------------------------------------------------------

    def failures(self, active_only: bool = False) -> List[InjectedFailure]:
        """All injected failures, optionally only the active ones."""
        items = list(self._failures.values())
        if active_only:
            items = [f for f in items if f.active]
        return items

    def active_failures_on(self, link_id: str) -> List[InjectedFailure]:
        """Active failures whose effects include *link_id*."""
        return [
            f for f in self._failures.values()
            if f.active and link_id in f.affected_links
        ]
