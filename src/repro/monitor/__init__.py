"""Fine-grained monitoring system: heartbeats, anomaly detection, root cause."""

from .anomaly import (
    Anomaly,
    AnomalyKind,
    CusumDetector,
    Detector,
    EwmaDetector,
    ThresholdDetector,
    scan_store,
)
from .classifier import (
    FEATURE_NAMES,
    MODALITY_MASKS,
    FailureClassifier,
    extract_features,
)
from .failures import FailureInjector, FailureKind, InjectedFailure
from .heartbeat import HeartbeatMesh, ProbeResult
from .monitor import HostMonitor, MonitorReport
from .rootcause import Suspect, localization_correct, localize, top_suspect

__all__ = [
    "Anomaly",
    "AnomalyKind",
    "Detector",
    "ThresholdDetector",
    "EwmaDetector",
    "CusumDetector",
    "scan_store",
    "HeartbeatMesh",
    "ProbeResult",
    "Suspect",
    "localize",
    "top_suspect",
    "localization_correct",
    "FailureKind",
    "InjectedFailure",
    "FailureInjector",
    "HostMonitor",
    "MonitorReport",
    "FailureClassifier",
    "extract_features",
    "FEATURE_NAMES",
    "MODALITY_MASKS",
]
