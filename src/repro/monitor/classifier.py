"""ML-based failure classification over multi-modal telemetry (§3.1 Q3).

The paper argues intra-host diagnosis is *higher-modality* than inter-host
diagnosis — an Ethernet link yields bytes/packets/drops, while an
intra-host incident leaves traces across heterogeneous signals (PCIe
utilization, memory-bus rates, heartbeat RTTs, missed probes) — "using
machine learning may be more essential in order to leverage these
high-modality data".

This module implements that pipeline end to end:

* :func:`extract_features` — turns one observation window (metric store +
  heartbeat mesh state) into a fixed feature vector spanning both
  modalities;
* :class:`FailureClassifier` — a standardized nearest-centroid classifier
  (deliberately simple: deterministic, trainable from a handful of
  injection runs, no external ML dependency beyond numpy);
* feature masks selecting the **counters**, **heartbeats**, or
  **combined** modality, so E14 can quantify the value of multi-modal
  data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MonitorError
from ..telemetry.storage import MetricStore
from .heartbeat import HeartbeatMesh

#: Feature names, in vector order.  The first block is the counter
#: modality; the second is the heartbeat modality.
FEATURE_NAMES: Tuple[str, ...] = (
    # counters
    "util_mean",
    "util_max",
    "util_std",
    "rate_drop_max",
    "rate_var_max",
    # heartbeats
    "missed_fraction",
    "rtt_inflation_mean",
    "rtt_inflation_max",
    "rtt_inflation_std",
    "rtt_time_variance",
)

#: Modality masks over :data:`FEATURE_NAMES`.
MODALITY_MASKS: Dict[str, Tuple[bool, ...]] = {
    "counters": (True,) * 5 + (False,) * 5,
    "heartbeats": (False,) * 5 + (True,) * 5,
    "combined": (True,) * 10,
}


def extract_features(store: MetricStore, mesh: HeartbeatMesh,
                     window: float, now: float) -> np.ndarray:
    """Build the feature vector for the observation window ``[now-window, now]``.

    Counter features summarize `link_util.*` / `link_rate.*` metrics in
    the window (with the immediately preceding window as the reference for
    rate drops); heartbeat features compare each pair's recent probes
    against its recorded baseline.
    """
    start = now - window
    previous_start = start - window

    utils: List[float] = []
    drops: List[float] = []
    rate_vars: List[float] = []
    for metric in store.metrics():
        if metric.startswith("link_util."):
            utils.extend(v for _, v in store.window(metric, start, now))
        elif metric.startswith("link_rate."):
            recent = [v for _, v in store.window(metric, start, now)]
            prior = [v for _, v in store.window(metric, previous_start,
                                                start)]
            if recent and prior:
                prior_mean = float(np.mean(prior))
                recent_mean = float(np.mean(recent))
                if prior_mean > 0:
                    drops.append(max(prior_mean - recent_mean, 0.0)
                                 / prior_mean)
            if len(recent) >= 2:
                mean = float(np.mean(recent))
                if mean > 0:
                    rate_vars.append(float(np.std(recent)) / mean)

    inflations: List[float] = []
    time_variances: List[float] = []
    missed = 0
    observed = 0
    for src, dst in mesh.pairs():
        baseline = mesh.baseline(src, dst)
        history = [r for r in mesh.results(src, dst)
                   if start <= r.time <= now]
        if not history:
            continue
        pair_inflations = []
        for result in history:
            observed += 1
            if result.missed:
                missed += 1
            elif baseline and baseline > 0:
                pair_inflations.append(result.rtt / baseline)
        if pair_inflations:
            inflations.extend(pair_inflations)
            if len(pair_inflations) >= 2:
                time_variances.append(float(np.std(pair_inflations)))

    def agg(values: Sequence[float], fn, default: float = 0.0) -> float:
        return float(fn(values)) if len(values) else default

    features = np.array([
        agg(utils, np.mean),
        agg(utils, np.max),
        agg(utils, np.std),
        agg(drops, np.max),
        agg(rate_vars, np.max),
        (missed / observed) if observed else 0.0,
        agg(inflations, np.mean, default=1.0),
        agg(inflations, np.max, default=1.0),
        agg(inflations, np.std),
        agg(time_variances, np.max),
    ], dtype=float)
    return features


@dataclass
class TrainedClass:
    """Centroid and spread of one failure class in feature space."""

    label: str
    centroid: np.ndarray
    spread: np.ndarray
    examples: int


class FailureClassifier:
    """Standardized nearest-centroid failure classifier.

    Args:
        modality: One of ``"counters"``, ``"heartbeats"``, ``"combined"`` —
            which feature block the classifier may look at.
    """

    def __init__(self, modality: str = "combined") -> None:
        if modality not in MODALITY_MASKS:
            raise MonitorError(
                f"unknown modality {modality!r}; "
                f"choices: {sorted(MODALITY_MASKS)}"
            )
        self.modality = modality
        self._mask = np.array(MODALITY_MASKS[modality], dtype=bool)
        self._classes: Dict[str, TrainedClass] = {}
        self._scale: Optional[np.ndarray] = None

    @property
    def labels(self) -> List[str]:
        """Trained class labels, sorted."""
        return sorted(self._classes)

    def fit(self, examples: Sequence[Tuple[str, np.ndarray]]) -> None:
        """Train from ``(label, feature_vector)`` examples."""
        if not examples:
            raise MonitorError("cannot fit on zero examples")
        by_label: Dict[str, List[np.ndarray]] = {}
        for label, features in examples:
            if features.shape != (len(FEATURE_NAMES),):
                raise MonitorError(
                    f"feature vector has shape {features.shape}, expected "
                    f"({len(FEATURE_NAMES)},)"
                )
            by_label.setdefault(label, []).append(features)
        everything = np.stack([f for _, f in examples])
        scale = everything.std(axis=0)
        scale[scale < 1e-9] = 1.0
        self._scale = scale
        self._classes = {}
        for label, rows in by_label.items():
            stacked = np.stack(rows)
            self._classes[label] = TrainedClass(
                label=label,
                centroid=stacked.mean(axis=0),
                spread=stacked.std(axis=0),
                examples=len(rows),
            )

    def predict(self, features: np.ndarray) -> str:
        """Label of the nearest class centroid (standardized distance)."""
        scores = self.decision_scores(features)
        return min(scores, key=scores.get)

    def decision_scores(self, features: np.ndarray) -> Dict[str, float]:
        """Standardized distance to every class centroid (lower = closer)."""
        if not self._classes or self._scale is None:
            raise MonitorError("classifier is not fitted")
        mask = self._mask
        scaled = features[mask] / self._scale[mask]
        scores: Dict[str, float] = {}
        for label, cls in self._classes.items():
            centroid = cls.centroid[mask] / self._scale[mask]
            scores[label] = float(np.linalg.norm(scaled - centroid))
        return scores

    def accuracy(self, examples: Sequence[Tuple[str, np.ndarray]]) -> float:
        """Fraction of *examples* predicted correctly."""
        if not examples:
            raise MonitorError("cannot score zero examples")
        correct = sum(
            1 for label, features in examples
            if self.predict(features) == label
        )
        return correct / len(examples)

    def confusion(self, examples: Sequence[Tuple[str, np.ndarray]]
                  ) -> Dict[Tuple[str, str], int]:
        """``(truth, predicted) -> count`` over *examples*."""
        table: Dict[Tuple[str, str], int] = {}
        for label, features in examples:
            key = (label, self.predict(features))
            table[key] = table.get(key, 0) + 1
        return table
