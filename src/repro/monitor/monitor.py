"""The fine-grained monitoring system facade (building block 1, §3.1).

:class:`HostMonitor` wires together the three components the paper calls
for — the configuration/resource monitor (telemetry collector), the anomaly
platform (heartbeat mesh + streaming detectors), and a diagnosis entry
point that localizes the root cause with topology-aware tomography.

Typical use::

    monitor = HostMonitor(network, probers=["nic0", "gpu0", "nvme0"])
    monitor.start()
    engine.run_until(t0)          # let baselines form
    monitor.record_baseline()
    engine.run_until(t1)          # ... failure happens somewhere here ...
    report = monitor.check()
    if report.anomalies:
        print(report.describe())
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.network import FabricNetwork
from ..telemetry.collector import TelemetryCollector
from ..trace.recorder import TRACER
from ..telemetry.counters import CounterSource
from ..telemetry.storage import MetricStore
from .anomaly import (
    Anomaly,
    AnomalyKind,
    CusumDetector,
    Detector,
    EwmaDetector,
    ThresholdDetector,
)
from .heartbeat import HeartbeatMesh, ProbeResult
from .rootcause import Suspect, localize


@dataclass
class MonitorReport:
    """Outcome of one :meth:`HostMonitor.check` call.

    Attributes:
        time: When the check ran.
        anomalies: Detector findings over telemetry since the last check.
        bad_probes: Heartbeats flagged unhealthy this round.
        suspects: Root-cause ranking (empty when nothing was anomalous).
    """

    time: float
    anomalies: List[Anomaly] = field(default_factory=list)
    bad_probes: List[ProbeResult] = field(default_factory=list)
    suspects: List[Suspect] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """Whether nothing anomalous was observed."""
        return not self.anomalies and not self.bad_probes

    def top_link_suspect(self) -> Optional[Suspect]:
        """Best link-level root-cause candidate, if any."""
        for suspect in self.suspects:
            if suspect.kind == "link":
                return suspect
        return None

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"monitor report @ {self.time:.6f}s: "
                 f"{'HEALTHY' if self.healthy else 'ANOMALOUS'}"]
        for anomaly in self.anomalies[:10]:
            lines.append(
                f"  [{anomaly.kind.value}] {anomaly.metric}: "
                f"value={anomaly.value:.4g} expected={anomaly.expected:.4g} "
                f"severity={anomaly.severity:.2f}"
            )
        for probe in self.bad_probes[:10]:
            state = "MISSED" if probe.missed else f"rtt={probe.rtt:.2e}s"
            lines.append(f"  [heartbeat] {probe.src}->{probe.dst}: {state}")
        for suspect in self.suspects[:5]:
            lines.append(
                f"  [suspect:{suspect.kind}] {suspect.element_id} "
                f"suspicion={suspect.suspicion:.2f} "
                f"({suspect.bad_crossings}/{suspect.total_crossings} probes)"
            )
        return "\n".join(lines)


class HostMonitor:
    """Fine-grained intra-host monitoring system.

    Args:
        network: The fabric to watch.
        probers: Devices participating in the heartbeat mesh; defaults to
            every flow endpoint except the external node.
        source: Telemetry counter source (fidelity per §3.1 Q1).
        telemetry_period: Counter sampling period (seconds).
        heartbeat_period: Probe round period (seconds).
        tenants: Tenant ids for per-tenant attribution where supported.
        detectors: Override the default detector set.
        seed: RNG seed for probe jitter.
    """

    def __init__(
        self,
        network: FabricNetwork,
        probers: Optional[Sequence[str]] = None,
        source: CounterSource = CounterSource.HARDWARE,
        telemetry_period: float = 0.01,
        heartbeat_period: float = 0.005,
        tenants: Optional[Sequence[str]] = None,
        detectors: Optional[List[Detector]] = None,
        seed: int = 0,
        processing: str = "local",
    ) -> None:
        self.network = network
        self.store = MetricStore()
        # Anomaly scoring wants the *unclamped* utilization: a clamped 1.0
        # hides how far past capacity a link was driven, flattening
        # threshold margins and CUSUM drift exactly when they matter most.
        self.collector = TelemetryCollector(
            network, store=self.store, source=source,
            period=telemetry_period, processing=processing,
            tenants=list(tenants or []), clamp_utilization=False,
        )
        if probers is None:
            from ..topology.elements import DeviceType

            probers = [
                d.device_id for d in network.topology.endpoints()
                if d.device_type is not DeviceType.EXTERNAL
            ]
        self.heartbeats = HeartbeatMesh(
            network, probers, period=heartbeat_period,
            rng=random.Random(seed),
        )
        self.detectors: List[Detector] = detectors if detectors is not None else [
            ThresholdDetector(threshold=0.9, metric_prefix="link_util."),
            EwmaDetector(zscore_threshold=8.0, metric_prefix="link_rate."),
            CusumDetector(metric_prefix="link_util."),
        ]
        self._scanned_through: float = -1.0
        self._running = False
        self._report_listeners: List = []
        self._check_task = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start telemetry sampling and heartbeat probing."""
        if self._running:
            return
        self._running = True
        self.collector.start()
        self.heartbeats.start()

    def stop(self) -> None:
        """Stop all periodic activity."""
        if not self._running:
            return
        self._running = False
        self.collector.stop()
        self.heartbeats.stop()
        if self._check_task is not None:
            self._check_task.cancel()
            self._check_task = None

    def on_report(self, listener) -> None:
        """Register a callback invoked with every :class:`MonitorReport`.

        This is the monitoring system's *reaction* hook: continuous
        detection only pays off when something subscribes and acts (the
        recovery controller does).
        """
        self._report_listeners.append(listener)

    def schedule_checks(self, period: float) -> None:
        """Run :meth:`check` every *period* seconds on the engine.

        Reports flow to :meth:`on_report` subscribers; call :meth:`stop`
        (or re-call with a new period) to cancel.
        """
        if self._check_task is not None:
            self._check_task.cancel()
        self._check_task = self.network.engine.schedule_every(
            period, self.check, label="monitor-check"
        )

    def record_baseline(self) -> None:
        """Snapshot current heartbeat RTTs as the healthy baseline."""
        self.heartbeats.record_baseline()

    # -- checking ----------------------------------------------------------------

    def check(self, rtt_inflation_factor: float = 3.0) -> MonitorReport:
        """Run detection over everything observed since the last check."""
        if not TRACER.enabled:
            report = self._check_untracked(rtt_inflation_factor)
        else:
            with TRACER.span("monitor", "check"):
                report = self._check_untracked(rtt_inflation_factor)
                TRACER.annotate(anomalies=len(report.anomalies),
                                bad_probes=len(report.bad_probes))
        for listener in self._report_listeners:
            listener(report)
        return report

    def _check_untracked(self, rtt_inflation_factor: float) -> MonitorReport:
        now = self.network.engine.now
        anomalies: List[Anomaly] = []
        for metric in self.store.metrics():
            for t, value in self.store.series(metric):
                if t <= self._scanned_through:
                    continue
                for detector in self.detectors:
                    found = detector.observe(metric, t, value)
                    if found is not None:
                        anomalies.append(found)
        self._scanned_through = now

        bad_probes = self.heartbeats.anomalous_probes(rtt_inflation_factor)
        for probe in bad_probes:
            kind = (AnomalyKind.MISSED_HEARTBEAT if probe.missed
                    else AnomalyKind.LATENCY_INFLATION)
            base = self.heartbeats.baseline(probe.src, probe.dst) or 0.0
            anomalies.append(
                Anomaly(
                    time=probe.time,
                    metric=f"hb_rtt.{probe.src}.{probe.dst}",
                    kind=kind,
                    value=probe.rtt,
                    expected=base,
                    severity=(probe.rtt / base) if base > 0 else float("inf"),
                )
            )

        suspects: List[Suspect] = []
        if bad_probes:
            flagged = {(p.src, p.dst) for p in bad_probes}
            healthy = [
                p for p in self.heartbeats.latest_round()
                if (p.src, p.dst) not in flagged
            ]
            suspects = localize(self.network.topology, healthy, bad_probes)

        return MonitorReport(
            time=now, anomalies=anomalies,
            bad_probes=bad_probes, suspects=suspects,
        )

    def monitoring_overhead_rate(self) -> float:
        """Fabric bytes/s spent on telemetry shipping (0 for local mode)."""
        return self.collector.overhead_rate()
