"""Seeded fleet chaos campaigns: churn + faults + self-healing + oracle.

The fleet mirror of :mod:`repro.resilience.chaos`: one campaign builds a
fleet, drives the standard seeded churn workload through it while a
:class:`~repro.fleet.faults.FleetFaultInjector` crashes, degrades, and
partitions hosts on a schedule derived from the same seed, lets the
:class:`~repro.fleet.recovery.FleetRecoveryController` evacuate and
retry, and audits the fleet with
:func:`~repro.fleet.invariants.check_fleet_invariants` after every fault
action and at campaign end.

Everything is a pure function of the config: the workload, the fault
schedule, the evacuation decisions, the retry backoffs.
:attr:`FleetChaosReport.outcome_json` deliberately excludes the clock
discipline, so the equivalence property — same seed, bit-identical
outcomes on the event-driven and lockstep clocks — is one string
comparison (asserted across ≥20 seeds in ``tests/test_fleet_chaos.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import FleetError
from .cluster import Fleet
from .faults import (
    FleetFaultConfig,
    FleetFaultInjector,
    FleetFaultSchedule,
    generate_fault_schedule,
)
from .invariants import check_fleet_invariants
from .recovery import FleetRecoveryConfig, FleetRecoveryController
from .workload import FleetChurnConfig, generate_events


@dataclass(frozen=True)
class FleetChaosConfig:
    """Knobs for one seeded fleet chaos campaign.

    Attributes:
        seed: Master seed; workload and fault schedule both derive
            from it (through independent RNG streams).
        hosts: Fleet size.
        topology: Per-host topology preset.
        policy: Placement policy name.
        clock: Fleet clock discipline (``"event"`` or ``"lockstep"``).
        max_attempts: Per-intent host-probe bound.
        failure_domains: Failure domains to spread hosts over.
        horizon: Simulated seconds of churn.
        arrival_rate: Intent arrivals per simulated second.
        mean_holding: Mean intent lifetime (exponential).
        tenants: Tenant pool size.
        faults: Fault injections to schedule over the horizon.
        fault_config: Full :class:`FleetFaultConfig` override; when
            ``None`` one is derived from ``seed``/``faults``/``horizon``.
        recovery: Retry/backoff knobs for the recovery controller;
            when ``None``, scaled to the horizon.
        deep_audits: Run the per-host fabric oracle inside every
            per-fault audit (always run at campaign end).
        parallel: Shard host simulations over this many worker
            processes (``None`` = in-process serial).  Campaign
            outcomes are bit-identical either way.
    """

    seed: int = 0
    hosts: int = 8
    topology: str = "cascade_lake_2s"
    policy: str = "best-fit"
    clock: str = "event"
    max_attempts: Optional[int] = 4
    failure_domains: int = 4
    horizon: float = 0.3
    arrival_rate: float = 1500.0
    mean_holding: float = 0.08
    tenants: int = 12
    faults: int = 10
    fault_config: Optional[FleetFaultConfig] = None
    recovery: Optional[FleetRecoveryConfig] = None
    deep_audits: bool = True
    parallel: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise FleetError(
                f"a chaos campaign needs >= 2 hosts (somewhere to "
                f"evacuate to), got {self.hosts}")
        if self.horizon <= 0:
            raise FleetError(f"horizon must be > 0, got {self.horizon}")


@dataclass
class FleetChaosReport:
    """Outcome of one campaign.

    Attributes:
        config: The driving config.
        submitted / admitted / rejected / released: Workload counters.
        fault_counters: The injector's counters (crashes, recoveries,
            degrades, restores, partitions, heals, skipped).
        recovery_counters: The recovery controller's counters
            (evacuated, requeued, retries, shed, ...).
        audits: Invariant audits run.
        violations: Every violation observed, stringified (empty = green).
        final_placements: Sorted ``(intent_id, host_id)`` pairs at end.
        host_events: Host engine events processed.
    """

    config: FleetChaosConfig
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    released: int = 0
    fault_counters: Dict[str, int] = field(default_factory=dict)
    recovery_counters: Dict[str, int] = field(default_factory=dict)
    audits: int = 0
    violations: List[str] = field(default_factory=list)
    final_placements: List[Tuple[str, str]] = field(default_factory=list)
    host_events: int = 0

    @property
    def passed(self) -> bool:
        """Whether the invariant oracle stayed green throughout."""
        return not self.violations

    @property
    def sessions_lost(self) -> int:
        """Sessions shed after exhausting evacuation retries."""
        return self.recovery_counters.get("shed", 0)

    def outcome_dict(self) -> Dict:
        """The campaign's clock-independent outcome.

        Excludes the clock discipline and host-event counts (lockstep
        legitimately processes more idle boundary work); everything else
        — every admission, evacuation, shed, and final placement — must
        be bit-identical for the same seed on both clocks.
        """
        return {
            "seed": self.config.seed,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "released": self.released,
            "faults": dict(sorted(self.fault_counters.items())),
            "recovery": dict(sorted(self.recovery_counters.items())),
            "violations": list(self.violations),
            "final_placements": [list(p) for p in self.final_placements],
        }

    @property
    def outcome_json(self) -> str:
        """Canonical JSON of :meth:`outcome_dict` (the equivalence key)."""
        return json.dumps(self.outcome_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        """Human-readable campaign summary."""
        f = self.fault_counters
        r = self.recovery_counters
        lines = [
            f"fleet chaos (seed={self.config.seed}, "
            f"hosts={self.config.hosts}, clock={self.config.clock}): "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  workload: {self.submitted} submitted, "
            f"{self.admitted} admitted, {self.rejected} rejected, "
            f"{self.released} released",
            f"  faults: {f.get('crashes', 0)} crashes "
            f"({f.get('recoveries', 0)} recovered), "
            f"{f.get('degrades', 0)} degrades "
            f"({f.get('restores', 0)} restored), "
            f"{f.get('partitions', 0)} partitions, "
            f"{f.get('skipped', 0)} skipped",
            f"  recovery: {r.get('evacuated', 0)} evacuated, "
            f"{r.get('requeued', 0)} requeued "
            f"({r.get('retries', 0)} retries), "
            f"{r.get('shed', 0)} shed, "
            f"{r.get('cancelled', 0)} cancelled, "
            f"{r.get('healed_in_place', 0)} healed in place",
            f"  oracle: {self.audits} audits, "
            f"{len(self.violations)} violations",
        ]
        for v in self.violations[:8]:
            lines.append(f"    {v}")
        return "\n".join(lines)


def run_fleet_campaign(config: Optional[FleetChaosConfig] = None,
                       ) -> FleetChaosReport:
    """One seeded chaos campaign: churn under faults, oracle-audited.

    Builds the fleet, derives the fault schedule, and drives the seeded
    churn workload through the injector's time loop (so fault and retry
    interleavings are identical on both clock disciplines).  The
    invariant oracle runs after every fault action and once at the end;
    any violation fails the campaign but never aborts it — the report
    carries the full list.
    """
    config = config or FleetChaosConfig()
    report = FleetChaosReport(config=config)
    fleet = Fleet(
        config.topology,
        hosts=config.hosts,
        clock=config.clock,
        policy=config.policy,
        max_attempts=config.max_attempts,
        failure_domains=config.failure_domains,
        parallel=config.parallel,
    )
    try:
        recovery = FleetRecoveryController(
            fleet,
            config.recovery
            or FleetRecoveryConfig.for_horizon(config.horizon),
        )
        fault_config = config.fault_config or FleetFaultConfig(
            seed=config.seed, faults=config.faults,
            horizon=config.horizon,
        )
        schedule: FleetFaultSchedule = generate_fault_schedule(
            fault_config, fleet.health)
        injector = FleetFaultInjector(fleet, schedule, recovery=recovery)

        def audit(_record) -> None:
            report.audits += 1
            for v in check_fleet_invariants(fleet, recovery=recovery,
                                            deep=config.deep_audits):
                report.violations.append(str(v))

        injector.on_event(audit)

        churn = FleetChurnConfig(
            seed=config.seed,
            tenants=config.tenants,
            horizon=config.horizon,
            arrival_rate=config.arrival_rate,
            mean_holding=config.mean_holding,
            drain=True,
        )
        for time, _seq, kind, payload in generate_events(churn, fleet):
            report.host_events += injector.advance_to(time)
            if kind == "arrive":
                report.submitted += 1
                if fleet.try_submit(payload) is not None:
                    report.admitted += 1
                else:
                    report.rejected += 1
            else:
                intent_id: str = payload
                if fleet.scheduler.has_intent(intent_id):
                    fleet.release(intent_id)
                    report.released += 1
                else:
                    # Parked for re-placement when its lifetime ended:
                    # the session is done, stop retrying it.
                    recovery.cancel(intent_id)
        # Run out the clock past the last repair so every fault heals
        # and every retry resolves before the final audit.
        end = max(config.horizon, schedule.end_time) + fleet.clock_quantum
        report.host_events += injector.advance_to(end)

        report.audits += 1
        for v in check_fleet_invariants(fleet, recovery=recovery,
                                        deep=True):
            report.violations.append(str(v))

        report.fault_counters = injector.counters()
        report.recovery_counters = recovery.counters()
        report.final_placements = sorted(
            (p.intent_id, p.host_id) for p in fleet.placements()
        )
    finally:
        fleet.shutdown()
    return report
