"""Fleet clock coordination: one protocol, two disciplines.

Every host keeps its own discrete-event engine; the fleet needs a policy
for *when* each engine runs.  :class:`FleetClock` is that policy surface —
``advance_to(t)`` moves fleet time forward, ``wake(host_id, t)`` brings a
single host's local clock up to fleet time before the fleet touches it.
Two disciplines implement it:

* :class:`LockstepFleetClock` — the original coordinator: every host is
  advanced quantum by quantum in host-id order, and the fleet's control
  loop (:meth:`~repro.fleet.migration.MigrationPlanner.control`) runs at
  every quantum boundary.  Cost is O(hosts × quanta) regardless of load.
* :class:`EventDrivenFleetClock` — a fleet-level event heap keyed by each
  host's next pending event: only hosts with work are woken, idle hosts
  fast-forward lazily (their local clocks catch up on the next ``wake``).
  This is the SimBricks-style discipline — synchronize at interaction
  points, not on a global metronome — and it is what makes 256-host fleets
  tractable.

The event-driven clock is seed-deterministic: the heap orders ties by
``(time, host_id)``, and hosts share no fabric state, so the outcome of a
seeded churn run is identical to lockstep (asserted across ≥20 seeds in
``tests/test_fleet_clock.py``).  Whenever fleet-level control must observe
exact quantum cadence — a rebalance threshold is armed, any host runs a
recovery controller, or escalations are queued — the event clock falls
back to lockstep boundaries for the advance, preserving the ordering of
escalation draining and rebalance moves bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple, Type, Union, TYPE_CHECKING

from ..errors import ClockError, FleetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet

#: Floating-point slack when comparing fleet-clock boundaries.
_CLOCK_EPS = 1e-12


class FleetClock:
    """The fleet's time-coordination surface (strategy interface).

    Args:
        fleet: The fleet whose hosts this clock advances.
        quantum: Lockstep granularity in simulated seconds (the event
            clock uses it only when falling back to boundary cadence).
        start: Initial fleet time.
    """

    name = "abstract"

    def __init__(self, fleet: "Fleet", quantum: float,
                 start: float = 0.0) -> None:
        self.fleet = fleet
        self.quantum = quantum
        self._now = start
        # Fleet membership is fixed at construction; resolving engines
        # once keeps the per-event hot path free of host lookups.
        self._engines = self._resolve_engines(fleet)
        # Crashed hosts: frozen in time, never advanced or woken until
        # reactivated (see FleetFaultInjector).
        self._inactive: set = set()

    def _resolve_engines(self, fleet: "Fleet") -> dict:
        """Engine per host id.  The parallel clock overrides this with an
        empty map — its engines live in worker processes."""
        return {host_id: host.engine for host_id, host in fleet.hosts()}

    @property
    def now(self) -> float:
        """Current fleet time."""
        return self._now

    def is_active(self, host_id: str) -> bool:
        """Whether *host_id* is being advanced (not crashed)."""
        return host_id not in self._inactive

    def deactivate(self, host_id: str) -> None:
        """Freeze *host_id*: no advances, wakes become no-ops.

        A crashed host's engine keeps its pending events (arbiter ticks,
        retries) so reactivation can replay them deterministically; it
        simply stops observing fleet time while inactive.
        """
        if host_id not in self._engines:
            self.fleet.host(host_id)  # raises UnknownHostError
        self._inactive.add(host_id)

    def reactivate(self, host_id: str) -> int:
        """Unfreeze *host_id* and catch its local clock up to fleet time.

        The backlog accumulated while frozen (periodic arbiter ticks and
        so on) replays in one burst at reactivation — identically under
        both clock disciplines, since both see the same fleet time here.
        Returns the number of host events processed catching up.
        """
        self._inactive.discard(host_id)
        return self.wake(host_id)

    def _check_target(self, t: float) -> None:
        if t < self._now - _CLOCK_EPS:
            raise ClockError(
                f"cannot run fleet until {t} (now is {self._now})"
            )

    def advance_to(self, t: float) -> int:
        """Advance fleet time to *t*, running host work due before it.

        Returns the number of host events processed.
        """
        raise NotImplementedError

    def wake(self, host_id: str, t: Optional[float] = None) -> int:
        """Bring one host's local clock up to *t* (default: fleet time).

        The fleet calls this before any interaction with a host (probe,
        release, migration leg) so host-local timestamps always match
        fleet time no matter how lazily the host has been advanced.
        Returns the number of host events processed.
        """
        if host_id in self._inactive:
            return 0  # crashed: frozen in time until reactivated
        target = self._now if t is None else t
        engine = self._engines.get(host_id)
        if engine is None:  # unknown id: raise UnknownHostError
            engine = self.fleet.host(host_id).engine
        if target < engine.now:
            return 0  # already ahead (never happens under fleet control)
        return engine.run_until(target)

    def notify(self, host_id: str) -> None:
        """Tell the clock *host_id*'s event queue may have changed.

        Fleet-surface mutations (submit, release, migration legs) can
        schedule host events *after* the pre-interaction :meth:`wake`;
        the event-driven clock re-peeks here so those events are not
        deferred to the host's next wake.  Lockstep needs no hint.
        """

    def sync_hosts(self, t: Optional[float] = None) -> int:
        """Bring *every* host's local clock up to *t* (default: now).

        The deprecated ``Fleet.run_until()`` contract — all hosts at
        fleet time on return — is preserved by calling this after
        :meth:`advance_to`.
        """
        target = self._now if t is None else t
        processed = 0
        for host_id, _host in self.fleet.hosts():
            processed += self.wake(host_id, target)
        return processed

    def _advance_lockstep(self, t: float) -> int:
        """Quantum-by-quantum advance with control at every boundary."""
        processed = 0
        while self._now < t - _CLOCK_EPS:
            boundary = min(t, self._now + self.quantum)
            for host_id, host in self.fleet.hosts():
                if host_id in self._inactive:
                    continue  # crashed: frozen in time
                processed += host.engine.run_until(boundary)
            self._now = boundary
            self.fleet.planner.control()
        return processed

    def __repr__(self) -> str:
        return f"{type(self).__name__}(t={self._now:.6f}s)"


class LockstepFleetClock(FleetClock):
    """Advance every host in lockstep, one quantum at a time.

    Deterministic and simple — and O(hosts × quanta) even when nothing is
    happening.  Kept as the reference discipline the event-driven clock
    is equivalence-tested against, and for workloads that want fleet
    control at every boundary unconditionally.
    """

    name = "lockstep"

    def advance_to(self, t: float) -> int:
        self._check_target(t)
        return self._advance_lockstep(t)


class EventDrivenFleetClock(FleetClock):
    """Wake only hosts with pending work; idle hosts fast-forward.

    A lazy heap of ``(next_event_time, host_id)`` entries drives the
    advance: the earliest entry is re-validated against the host's engine
    (fleet-level operations may have added or cancelled events since it
    was pushed), stale entries are discarded, and live ones run the host
    exactly to their event time.  Host clocks are left behind fleet time
    until the next :meth:`wake` — which every fleet-surface interaction
    performs first — so an idle host costs nothing per advance.

    When exact boundary cadence matters (rebalance armed, any recovery
    controller attached, escalations queued) the advance transparently
    uses the lockstep discipline instead, so escalation and rebalance
    ordering is identical to :class:`LockstepFleetClock`.
    """

    name = "event"

    def __init__(self, fleet: "Fleet", quantum: float,
                 start: float = 0.0) -> None:
        super().__init__(fleet, quantum, start)
        self._heap: List[Tuple[float, str]] = []
        # One representative in-heap entry per host: pushing a peek that
        # is already queued is pure churn (stale entries cost two
        # re-validation peeks each at the next advance).  With latency
        # probes armed every host always *has* a finite peek, so every
        # fleet-surface wake would otherwise push a duplicate.
        self._queued: Dict[str, float] = {}
        self._primed = False
        # Recovery controllers are attached at host construction and the
        # fleet's membership is fixed, so one scan decides forever whether
        # boundary cadence is needed for recovery ordering.
        self._any_recovery = any(host.recovery is not None
                                 for _host_id, host in fleet.hosts())

    # -- heap maintenance --------------------------------------------------

    def _prime(self) -> None:
        self._heap = []
        self._queued = {}
        for host_id, engine in self._engines.items():
            if host_id in self._inactive:
                continue  # crashed hosts never enter the heap
            t_ev = engine.peek_time()
            if t_ev is not None:
                self._heap.append((t_ev, host_id))
                self._queued[host_id] = t_ev
        heapq.heapify(self._heap)
        self._primed = True

    def _push_peek(self, host_id: str, t_ev: float) -> None:
        if self._queued.get(host_id) != t_ev:
            heapq.heappush(self._heap, (t_ev, host_id))
            self._queued[host_id] = t_ev

    def _drop_entry(self, host_id: str, t_ev: float) -> None:
        if self._queued.get(host_id) == t_ev:
            del self._queued[host_id]

    def notify(self, host_id: str) -> None:
        """Re-peek *host_id* after an out-of-band mutation.

        Fleet operations (submit, release, migrate) schedule and cancel
        host events outside the advance loop; pushing a fresh entry keeps
        the heap's earliest-event invariant without rescanning the fleet.
        Duplicate and stale entries are discarded during the advance.
        """
        if not self._primed or host_id in self._inactive:
            return
        t_ev = self.fleet.host(host_id).engine.peek_time()
        if t_ev is not None:
            self._push_peek(host_id, t_ev)

    def wake(self, host_id: str, t: Optional[float] = None) -> int:
        if host_id in self._inactive:
            return 0  # crashed: frozen in time until reactivated
        target = self._now if t is None else t
        engine = self._engines.get(host_id)
        if engine is None:  # unknown id: raise UnknownHostError
            engine = self.fleet.host(host_id).engine
        processed = (engine.run_until(target)
                     if target >= engine.now else 0)
        if self._primed:
            t_ev = engine.peek_time()
            if t_ev is not None:
                self._push_peek(host_id, t_ev)
        return processed

    # -- the advance -------------------------------------------------------

    def _needs_boundaries(self) -> bool:
        planner = self.fleet.planner
        if planner.rebalance_threshold is not None:
            return True
        if planner.pending_escalations:
            return True
        return self._any_recovery

    def advance_to(self, t: float) -> int:
        self._check_target(t)
        if self._needs_boundaries():
            # Boundary cadence: host clocks all land on fleet time, so
            # the lazy heap is rebuilt on the next pure-event advance.
            self._primed = False
            return self._advance_lockstep(t)
        if not self._primed:
            self._prime()
        heap = self._heap
        engines = self._engines
        processed = 0
        while heap and heap[0][0] <= t + _CLOCK_EPS:
            t_ev, host_id = heap[0]
            if host_id in self._inactive:
                # Crashed since this entry was pushed: lazily evicted.
                heapq.heappop(heap)
                self._drop_entry(host_id, t_ev)
                continue
            engine = engines[host_id]
            actual = engine.peek_time()
            if actual != t_ev:
                # Stale: the event ran, was cancelled, or an earlier one
                # was scheduled since this entry was pushed.
                heapq.heappop(heap)
                self._drop_entry(host_id, t_ev)
                if actual is not None:
                    self._push_peek(host_id, actual)
                continue
            heapq.heappop(heap)
            self._drop_entry(host_id, t_ev)
            processed += engine.run_until(t_ev)
            nxt = engine.peek_time()
            if nxt is not None:
                self._push_peek(host_id, nxt)
        if t > self._now:
            self._now = t
        return processed


#: Registry used by the CLI and the Fleet constructor.
FLEET_CLOCKS = {
    LockstepFleetClock.name: LockstepFleetClock,
    EventDrivenFleetClock.name: EventDrivenFleetClock,
}


def make_clock(clock: Union[str, Type[FleetClock]], fleet: "Fleet",
               quantum: float, start: float = 0.0) -> FleetClock:
    """Resolve a clock name (or a FleetClock subclass) to an instance."""
    if isinstance(clock, type) and issubclass(clock, FleetClock):
        return clock(fleet, quantum, start)
    try:
        return FLEET_CLOCKS[clock](fleet, quantum, start)
    except (KeyError, TypeError):
        raise FleetError(
            f"unknown fleet clock {clock!r}; "
            f"choices: {sorted(FLEET_CLOCKS)}"
        ) from None
