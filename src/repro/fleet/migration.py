"""Cross-host live migration: release-on-source / submit-on-destination.

The fleet's answer to the failures a single host cannot absorb.  When a
host's local :class:`~repro.resilience.controller.RecoveryController` has
exhausted its moves (no alternate candidate, degrade floor hit) it
escalates to the fleet, and the :class:`MigrationPlanner` moves the
placement to a healthier host; a rebalance trigger does the same when
reserved load skews past a threshold.

Every migration is **all-or-nothing**, reusing the atomic-rollback
machinery the per-host replace path is built on: the placement is released
on the source, submitted (device-remapped) on the destination, and on any
destination failure reinstated on the source bit-for-bit via
:meth:`~repro.core.manager.HostNetworkManager.reinstate` — a failed
migration never strands or duplicates an intent.

Under the fault model two new failure windows open.  A *pre-flight* check
rejects legs touching a crashed host or crossing an active partition
before any state moves (the source placement is untouched).  And if the
**rollback itself** fails — the source degraded between release and
reinstate, so the bit-for-bit restore no longer fits — the session is
handed to the attached :class:`~repro.fleet.recovery.FleetRecoveryController`
retry queue (or parked on :attr:`MigrationPlanner.orphans` when none is
attached) instead of vanishing: every session is at all times placed,
parked for retry, or explicitly shed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..errors import AdmissionError, HostNetError, MigrationError
from ..trace.recorder import TRACER
from ..trace.spans import CAT_FLEET
from .scheduler import ClusterScheduler, FleetPlacement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet


@dataclass(frozen=True)
class MigrationRecord:
    """One migration decision, for the audit log.

    Attributes:
        kind: ``"migrate"`` (explicit), ``"escalate"`` (resilience-driven),
            ``"rebalance"`` (threshold-driven), or ``"slo"``
            (latency-burn-rate-driven, via :meth:`MigrationPlanner.
            relieve_latency`).
        time: Fleet-clock time of the decision.
        intent_id: The moved (or unmovable) intent.
        src: Source host.
        dst: Destination host (``None`` when no candidate admitted it).
        ok: Whether the move committed.
        detail: Human-readable specifics.
    """

    kind: str
    time: float
    intent_id: str
    src: str
    dst: Optional[str]
    ok: bool
    detail: str = ""


class MigrationPlanner:
    """Fleet-level placement mobility.

    Args:
        fleet: The fleet being managed.
        scheduler: The cluster scheduler whose bookkeeping tracks where
            every intent lives (and whose policy ranks rescue targets).
        rebalance_threshold: When the gap between the hottest and coldest
            host's peak reserved-link fraction exceeds this, one placement
            is moved per fleet tick.  ``None`` disables rebalancing.
        max_moves_per_tick: Rebalance budget per fleet quantum boundary.
    """

    def __init__(self, fleet: "Fleet", scheduler: ClusterScheduler,
                 rebalance_threshold: Optional[float] = None,
                 max_moves_per_tick: int = 1) -> None:
        self.fleet = fleet
        self.scheduler = scheduler
        self.rebalance_threshold = rebalance_threshold
        self.max_moves_per_tick = max_moves_per_tick
        self.records: List[MigrationRecord] = []
        self._escalations: List[Tuple[str, str]] = []  # (host_id, intent_id)
        #: Attached FleetRecoveryController (set by its constructor);
        #: receives sessions orphaned by a failed rollback.
        self.recovery = None
        #: (intent, src_host_id, reason) for rollback-failure orphans
        #: when no recovery controller is attached — never silently lost.
        self.orphans: List[Tuple] = []

    # -- explicit migration --------------------------------------------------

    def migrate(self, intent_id: str, dst_host_id: str,
                kind: str = "migrate") -> FleetPlacement:
        """Atomically move one placement to *dst_host_id*.

        Raises :class:`~repro.errors.MigrationError` when the destination
        rejects it; the source placement is then exactly as before.
        """
        if not TRACER.enabled:
            return self._migrate_untracked(intent_id, dst_host_id, kind)
        with TRACER.span(CAT_FLEET, "migrate", {
            "intent": intent_id, "dst": dst_host_id, "kind": kind,
        }):
            try:
                placed = self._migrate_untracked(intent_id, dst_host_id, kind)
            except HostNetError as exc:
                TRACER.annotate(outcome=type(exc).__name__)
                raise
            TRACER.annotate(outcome="migrated")
            return placed

    def _migrate_untracked(self, intent_id: str, dst_host_id: str,
                           kind: str) -> FleetPlacement:
        src_host_id = self.scheduler.host_of(intent_id)
        if dst_host_id == src_host_id:
            raise MigrationError(
                intent_id, f"already on {src_host_id!r}"
            )
        self.fleet.require_host(dst_host_id)  # raises UnknownHostError early
        # Pre-flight health: a crashed endpoint or an active partition
        # fails the leg *before* any state moves, so the source placement
        # is exactly as it was.
        health = self.fleet.health
        if health.is_crashed(dst_host_id):
            self._record(kind, intent_id, src_host_id, None, ok=False,
                         detail=f"{dst_host_id!r} is crashed")
            raise MigrationError(
                intent_id, f"destination {dst_host_id!r} is crashed")
        if health.is_crashed(src_host_id):
            self._record(kind, intent_id, src_host_id, None, ok=False,
                         detail=f"source {src_host_id!r} is crashed")
            raise MigrationError(
                intent_id, f"source {src_host_id!r} is crashed")
        if not health.reachable(src_host_id, dst_host_id):
            self._record(kind, intent_id, src_host_id, None, ok=False,
                         detail=f"{src_host_id!r} and {dst_host_id!r} "
                                f"are partitioned")
            raise MigrationError(
                intent_id,
                f"{src_host_id!r} cannot reach {dst_host_id!r}: "
                f"active partition",
            )
        # Both legs of the move must see host clocks at fleet time, or an
        # event-clock fleet would stamp the release/submit in the past.
        self.fleet.wake(src_host_id)
        self.fleet.wake(dst_host_id)
        original = self.scheduler.original_intent(intent_id)
        old = self.fleet.manager_placement(src_host_id, intent_id)
        remapped = self.fleet.remap_intent(original, dst_host_id)

        self.fleet.manager_release(src_host_id, intent_id)
        try:
            placement = self.fleet.manager_submit(dst_host_id, remapped)
        except HostNetError as exc:
            try:
                self.fleet.manager_reinstate(src_host_id, old)
            except HostNetError as rb_exc:
                # The rollback window closed too (the source failed
                # between release and reinstate).  The session must not
                # vanish: hand it to the recovery retry queue, or park
                # it on the orphan list for the operator.
                self.fleet.notify(src_host_id)
                self.fleet.notify(dst_host_id)
                self.telemetry_invalidate(src_host_id, dst_host_id)
                self.scheduler.forget(intent_id)
                reason = (f"rollback to {src_host_id!r} failed after "
                          f"{dst_host_id!r} rejected it: {rb_exc}")
                if self.recovery is not None:
                    self.recovery.requeue(original, src_host_id,
                                          reason=reason)
                    disposition = "requeued for re-placement"
                else:
                    self.orphans.append((original, src_host_id, reason))
                    disposition = "parked on planner.orphans"
                self._record(kind, intent_id, src_host_id, None, ok=False,
                             detail=f"{reason}; {disposition}")
                raise MigrationError(
                    intent_id, f"{reason}; {disposition}") from rb_exc
            self.fleet.notify(src_host_id)
            self.fleet.notify(dst_host_id)
            self.telemetry_invalidate(src_host_id, dst_host_id)
            self._record(kind, intent_id, src_host_id, None, ok=False,
                         detail=f"{dst_host_id!r} rejected: {exc}")
            raise MigrationError(
                intent_id,
                f"destination {dst_host_id!r} rejected it ({exc}); "
                f"reinstated on {src_host_id!r}",
            ) from exc
        self.scheduler.rebind(intent_id, dst_host_id)
        self.fleet.notify(src_host_id)
        self.fleet.notify(dst_host_id)
        self.telemetry_invalidate(src_host_id, dst_host_id)
        self._record(kind, intent_id, src_host_id, dst_host_id, ok=True)
        return FleetPlacement(dst_host_id, placement)

    def telemetry_invalidate(self, *host_ids: str) -> None:
        """Drop cached headrooms of hosts whose reservations just changed."""
        for host_id in host_ids:
            self.fleet.telemetry.invalidate(host_id)

    # -- escalation from host-local recovery ---------------------------------

    def request_escalation(self, host_id: str, intent_id: str) -> None:
        """Queue a placement local recovery gave up on (processed at the
        next quantum boundary, so escalations arriving mid-quantum stay
        deterministic)."""
        self._escalations.append((host_id, intent_id))

    @property
    def pending_escalations(self) -> List[Tuple[str, str]]:
        """Escalations queued but not yet drained by :meth:`control`.

        The event-driven clock checks this to decide whether an advance
        must observe exact quantum-boundary cadence.
        """
        return list(self._escalations)

    def rescue(self, intent_id: str) -> Optional[FleetPlacement]:
        """Move one failing placement to the best host that admits it.

        Destinations are ranked by the scheduler's policy (the source host
        is excluded).  Returns the new placement, or ``None`` when no host
        admitted it (recorded; the placement stays degraded on its source).
        """
        if not self.scheduler.has_intent(intent_id):
            return None  # released while the escalation was in flight
        src_host_id = self.scheduler.host_of(intent_id)
        intent = self.scheduler.original_intent(intent_id)
        health = self.fleet.health
        candidates = [
            h for h in self.scheduler.policy.rank_matrix(
                self.scheduler.request_for(
                    intent, avoid_hosts=health.avoid_hosts()),
                self.fleet.telemetry.matrix(),
            )
            if h != src_host_id and not health.is_crashed(h)
            and health.reachable(src_host_id, h)
        ]
        for dst_host_id in candidates:
            try:
                return self.migrate(intent_id, dst_host_id, kind="escalate")
            except MigrationError:
                continue
        self._record("escalate", intent_id, src_host_id, None, ok=False,
                     detail=f"no host among {len(candidates)} admitted it")
        return None

    # -- latency-driven relief (the SLO alert sink) --------------------------

    def relieve_latency(self, host_id: str, max_moves: int = 4) -> int:
        """Live-migrate sessions off a latency-violating host.

        The fleet-side sink for burn-rate alerts (DESIGN.md §16): the
        offending host's placements are drained largest-first to the
        policy's best-ranked healthy destinations, until *max_moves*
        migrations commit or nothing else fits anywhere.  Large
        reservations go first because they dominate the serialization
        term that inflated the probes.  Failed drains are recorded with
        ``kind="slo"`` so the audit log shows the alert was acted on
        even when no destination admitted anything.

        Returns the number of committed migrations.
        """
        health = self.fleet.health
        candidates = sorted(
            self.scheduler.placements_on(host_id),
            key=lambda p: (-p.placement.intent.bandwidth, p.intent_id),
        )
        moved = 0
        for fleet_placement in candidates:
            if moved >= max_moves:
                break
            intent_id = fleet_placement.intent_id
            if not self.scheduler.has_intent(intent_id):
                continue
            intent = self.scheduler.original_intent(intent_id)
            destinations = [
                h for h in self.scheduler.policy.rank_matrix(
                    self.scheduler.request_for(
                        intent, avoid_hosts=health.avoid_hosts()),
                    self.fleet.telemetry.matrix(),
                )
                if h != host_id and not health.is_crashed(h)
                and health.reachable(host_id, h)
            ]
            placed = False
            for dst_host_id in destinations:
                try:
                    self.migrate(intent_id, dst_host_id, kind="slo")
                    placed = True
                    break
                except (MigrationError, AdmissionError):
                    continue
            if placed:
                moved += 1
            else:
                self._record("slo", intent_id, host_id, None, ok=False,
                             detail=f"no host among {len(destinations)} "
                                    f"admitted it")
        return moved

    # -- the fleet control loop ----------------------------------------------

    def control(self) -> None:
        """One fleet-level pass: drain escalations, then maybe rebalance.

        Called by the fleet clock at every quantum boundary (the event
        clock falls back to boundary cadence whenever this pass could do
        anything — escalations queued, rebalancing armed, or recovery
        controllers attached).
        """
        pending, self._escalations = self._escalations, []
        for _host_id, intent_id in pending:
            self.rescue(intent_id)
        if self.rebalance_threshold is not None:
            self._rebalance()

    def tick(self) -> None:
        """Deprecated: renamed :meth:`control` (clocks call that)."""
        warnings.warn(
            "MigrationPlanner.tick() is deprecated; use control()",
            DeprecationWarning, stacklevel=2,
        )
        self.control()

    def _rebalance(self) -> None:
        """Move placements off the hottest host when the skew trips."""
        for _ in range(self.max_moves_per_tick):
            headrooms = [
                h for h in self.fleet.telemetry.headrooms() if h.available
            ]
            if len(headrooms) < 2:
                return
            hottest = max(headrooms, key=lambda h: (h.reserved_peak,
                                                    h.host_id))
            coldest = min(headrooms, key=lambda h: (h.reserved_peak,
                                                    h.host_id))
            gap = hottest.reserved_peak - coldest.reserved_peak
            if gap <= self.rebalance_threshold:
                return
            if not TRACER.enabled:
                moved = self._rebalance_move(hottest.host_id,
                                             coldest.host_id)
            else:
                with TRACER.span(CAT_FLEET, "rebalance", {
                    "src": hottest.host_id, "dst": coldest.host_id,
                    "gap": round(gap, 3),
                }):
                    moved = self._rebalance_move(hottest.host_id,
                                                 coldest.host_id)
                    TRACER.annotate(outcome="moved" if moved else "stuck")
            if not moved:
                return

    def _rebalance_move(self, src_host_id: str, dst_host_id: str) -> bool:
        """Try to move one placement from src to dst; largest first.

        Moving the biggest migratable reservation closes the gap fastest;
        candidates that the destination rejects fall through to smaller
        ones (bounded, so a pathological tick stays cheap).
        """
        candidates = sorted(
            self.scheduler.placements_on(src_host_id),
            key=lambda p: (-p.placement.intent.bandwidth, p.intent_id),
        )
        for fleet_placement in candidates[:4]:
            try:
                self.migrate(fleet_placement.intent_id, dst_host_id,
                             kind="rebalance")
                return True
            except MigrationError:
                continue
            except AdmissionError:
                continue
        return False

    # -- queries -------------------------------------------------------------

    def migrations(self, kind: Optional[str] = None,
                   ok_only: bool = False) -> List[MigrationRecord]:
        """Migration records, optionally filtered by kind / success."""
        records = self.records
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if ok_only:
            records = [r for r in records if r.ok]
        return list(records)

    def _record(self, kind: str, intent_id: str, src: str,
                dst: Optional[str], ok: bool, detail: str = "") -> None:
        self.records.append(MigrationRecord(
            kind=kind, time=self.fleet.now, intent_id=intent_id,
            src=src, dst=dst, ok=ok, detail=detail,
        ))

    def describe(self) -> str:
        """Human-readable migration summary."""
        moved = len(self.migrations(ok_only=True))
        lines = [f"MigrationPlanner: {moved}/{len(self.records)} moves "
                 f"committed, rebalance_threshold="
                 f"{self.rebalance_threshold}"]
        for record in self.records[-8:]:
            arrow = f"{record.src} -> {record.dst or '???'}"
            status = "ok" if record.ok else "FAILED"
            lines.append(f"  {record.time:.6f}s {record.kind:<9} "
                         f"{record.intent_id}: {arrow} [{status}]"
                         + (f" {record.detail}" if record.detail else ""))
        return "\n".join(lines)
