"""Fleet-scale fault injection: crashes, degradations, partitions.

The per-host chaos harness (``repro.resilience.chaos``) breaks links
*inside* one fabric; this module breaks the *fleet* — whole hosts crash
and later recover, hosts silently lose capacity, and failure domains
partition from each other — with the same discipline: every fault is
drawn from a seeded schedule that is a pure function of its config, every
fault is paired with its repair, and the outcome of a campaign is
bit-identical across both fleet-clock disciplines.

Three pieces live here:

* :class:`FleetHealth` — the fleet's fault ground truth: which hosts are
  crashed or degraded, which failure domain each host belongs to, and
  which domains are currently partitioned.  Placement, migration, and
  evacuation all consult it (crashed hosts are hard-filtered, faulted
  domains are soft-avoided, partitions block migration legs).
* :func:`generate_fault_schedule` — the seeded schedule: a pure function
  of (:class:`FleetFaultConfig`, host membership), so the same seed
  always yields the same storm.
* :class:`FleetFaultInjector` — drives a schedule through the fleet
  clock.  Its :meth:`~FleetFaultInjector.advance_to` interleaves fault
  events (and the recovery controller's retry queue) with the fleet's
  own advance, so both clock disciplines observe identical state
  transitions at identical fleet times — the SimBricks lesson applied to
  failures: component-boundary faults are only useful when their
  semantics are deterministic at the sync points.

Crash semantics: a crashed host is frozen (evicted from the fleet clock
— no events run while it is down), its fleet placements are released
(reservations on a dead host are void) and handed to the
:class:`~repro.fleet.recovery.FleetRecoveryController` for evacuation,
and the cluster scheduler stops considering it.  Recovery thaws the host
— it re-enters the clock's heap and catches up to fleet time — and makes
it a placement target again.  Degradation keeps the host alive but
shrinks every intra-host link to a capacity factor (via the per-host
:class:`~repro.monitor.failures.FailureInjector`, whose repair path
restores link state bit-exactly) and marks it unavailable so placements
drain away from it.  A partition cuts one failure domain off from the
rest: sessions keep running, but no migration or evacuation leg may
cross the cut.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..errors import FleetError, UnknownHostError
from ..sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet

#: Floating-point slack when comparing fault-timeline times.
_FAULT_EPS = 1e-12


class FleetHealth:
    """Fleet-level fault ground truth.

    Hosts are assigned to ``domains`` failure domains round-robin over
    sorted host ids — the racks/power-feeds abstraction: a fault that
    takes out one host makes its whole domain suspect, so evacuees are
    steered *out* of the domain (:meth:`avoid_hosts`), which is how one
    correlated failure avoids eating a tenant twice.

    Args:
        host_ids: Fleet membership (order-insensitive; sorted here).
        domains: Number of failure domains (>= 1).
    """

    def __init__(self, host_ids: Sequence[str], domains: int = 1) -> None:
        if domains < 1:
            raise FleetError(f"failure domains must be >= 1, got {domains}")
        self._hosts = sorted(host_ids)
        if not self._hosts:
            raise FleetError("FleetHealth needs at least one host")
        self.domains = min(domains, len(self._hosts))
        self._domain_of = {
            host_id: i % self.domains
            for i, host_id in enumerate(self._hosts)
        }
        self._members: Dict[int, List[str]] = {}
        for host_id in self._hosts:
            self._members.setdefault(
                self._domain_of[host_id], []).append(host_id)
        self._crashed: set = set()
        self._degraded: Dict[str, float] = {}
        self._partitions: Dict[int, FrozenSet[str]] = {}
        self._partition_seq = 0

    # -- membership ----------------------------------------------------------

    def host_ids(self) -> List[str]:
        """All known host ids, sorted."""
        return list(self._hosts)

    def _check(self, host_id: str) -> None:
        if host_id not in self._domain_of:
            raise UnknownHostError(host_id)

    def domain_of(self, host_id: str) -> int:
        """The failure domain *host_id* belongs to."""
        self._check(host_id)
        return self._domain_of[host_id]

    def domain_members(self, domain: int) -> List[str]:
        """Hosts in *domain*, sorted."""
        return list(self._members.get(domain, ()))

    # -- crash / degrade state -----------------------------------------------

    def crash(self, host_id: str) -> None:
        """Mark *host_id* crashed (idempotent)."""
        self._check(host_id)
        self._crashed.add(host_id)

    def recover(self, host_id: str) -> None:
        """Clear *host_id*'s crash mark (idempotent)."""
        self._check(host_id)
        self._crashed.discard(host_id)

    def degrade(self, host_id: str, factor: float) -> None:
        """Mark *host_id* degraded to *factor* of nominal capacity."""
        self._check(host_id)
        if not 0 < factor <= 1:
            raise FleetError(f"degrade factor must be in (0, 1], got {factor}")
        self._degraded[host_id] = factor

    def restore(self, host_id: str) -> None:
        """Clear *host_id*'s degradation mark (idempotent)."""
        self._degraded.pop(host_id, None)

    def is_crashed(self, host_id: str) -> bool:
        """Whether *host_id* is currently crashed."""
        return host_id in self._crashed

    def is_degraded(self, host_id: str) -> bool:
        """Whether *host_id* is currently capacity-degraded."""
        return host_id in self._degraded

    def degrade_factor(self, host_id: str) -> Optional[float]:
        """Active degradation factor of *host_id* (``None`` if healthy)."""
        return self._degraded.get(host_id)

    @property
    def crashed(self) -> FrozenSet[str]:
        """Currently crashed hosts."""
        return frozenset(self._crashed)

    @property
    def degraded(self) -> FrozenSet[str]:
        """Currently degraded hosts."""
        return frozenset(self._degraded)

    def faulted_domains(self) -> FrozenSet[int]:
        """Domains containing at least one crashed or degraded host."""
        return frozenset(
            self._domain_of[h] for h in (self._crashed | set(self._degraded))
        )

    def avoid_hosts(self) -> FrozenSet[str]:
        """Every host in a faulted domain — the placement avoid-set.

        A fault on one host makes its whole domain suspect (shared rack,
        power feed, ToR), so new placements and evacuees are steered to
        other domains first.  This is a soft signal: policies rank these
        hosts last rather than excluding them, so a fleet whose every
        domain is faulted still places.
        """
        bad = self.faulted_domains()
        if not bad:
            return frozenset()
        return frozenset(
            h for d in bad for h in self._members.get(d, ())
        )

    # -- partitions ----------------------------------------------------------

    def partition(self, hosts: Sequence[str]) -> int:
        """Cut *hosts* off from the rest of the fleet; returns a token.

        Hosts inside the cut still reach each other, as does the
        remainder of the fleet — only legs *crossing* the cut are
        blocked (:meth:`reachable`).
        """
        side = frozenset(hosts)
        for host_id in side:
            self._check(host_id)
        if not side or len(side) == len(self._hosts):
            raise FleetError(
                "a partition must cut a proper, non-empty subset of hosts"
            )
        self._partition_seq += 1
        token = self._partition_seq
        self._partitions[token] = side
        return token

    def heal(self, token: int) -> None:
        """Repair the partition identified by *token* (idempotent)."""
        self._partitions.pop(token, None)

    def reachable(self, a: str, b: str) -> bool:
        """Whether a migration/evacuation leg from *a* to *b* is possible
        under the currently active partitions."""
        for side in self._partitions.values():
            if (a in side) != (b in side):
                return False
        return True

    @property
    def partitions(self) -> List[FrozenSet[str]]:
        """Active partition cuts (each the isolated side)."""
        return [self._partitions[t] for t in sorted(self._partitions)]

    def describe(self) -> str:
        """Human-readable health summary."""
        lines = [
            f"FleetHealth: {len(self._hosts)} hosts in "
            f"{self.domains} domain(s), {len(self._crashed)} crashed, "
            f"{len(self._degraded)} degraded, "
            f"{len(self._partitions)} partition(s)"
        ]
        for host_id in sorted(self._crashed):
            lines.append(f"  {host_id}: CRASHED")
        for host_id in sorted(self._degraded):
            lines.append(
                f"  {host_id}: degraded to "
                f"{self._degraded[host_id]:.0%} capacity")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Seeded fault schedules.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetFaultEvent:
    """One scheduled fault and (implicitly) its repair.

    Attributes:
        time: Injection time (fleet clock).
        kind: ``"crash"``, ``"degrade"``, or ``"partition"``.
        targets: Affected host ids (one host for crash/degrade; a whole
            failure domain for partitions).
        duration: Seconds until the paired repair fires.
        factor: Capacity factor for ``degrade`` (else ``None``).
    """

    time: float
    kind: str
    targets: Tuple[str, ...]
    duration: float
    factor: Optional[float] = None

    @property
    def clear_time(self) -> float:
        """When the paired repair fires."""
        return self.time + self.duration


@dataclass(frozen=True)
class FleetFaultSchedule:
    """A full seeded storm: injection events plus their implied repairs."""

    seed: int
    events: Tuple[FleetFaultEvent, ...]

    @property
    def end_time(self) -> float:
        """Time of the last repair (0 for an empty schedule)."""
        return max((e.clear_time for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        """Human-readable schedule listing."""
        lines = [f"fault schedule (seed={self.seed}): "
                 f"{len(self.events)} events"]
        for ev in self.events:
            what = ev.kind
            if ev.factor is not None:
                what += f"@{ev.factor:.0%}"
            lines.append(
                f"  {ev.time:.6f}s +{ev.duration:.6f}s {what:<14} "
                f"{','.join(ev.targets)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FleetFaultConfig:
    """Knobs for one seeded fault schedule.

    Timing knobs are fractions of ``horizon``, so one config shape works
    for sub-second chaos campaigns and hour-long trace replays alike
    (the same scale-free design as
    :class:`~repro.workloads.cluster_traces.replay.ReplayConfig`).

    Attributes:
        seed: Master seed; the schedule is a pure function of this
            config plus the fleet's host membership.
        faults: Fault injections to attempt.  Injections that would
            exceed ``max_down_fraction`` are skipped, so the emitted
            schedule may be shorter.
        horizon: The driven workload's horizon; injections land in
            ``[start_fraction * horizon, horizon)``.
        start_fraction: Warmup fraction before the first fault.
        outage_fraction: (lo, hi) fault duration as horizon fractions.
        crash_weight / degrade_weight / partition_weight: Relative draw
            weights after the first three events (which cycle through
            all kinds once, so small schedules still cover every kind).
        degrade_factor: (lo, hi) surviving-capacity factor for degrades.
        max_down_fraction: Cap on the fraction of hosts concurrently
            crashed or degraded — the knob that keeps "aggregate
            headroom suffices" true for loss-free campaigns.
    """

    seed: int = 0
    faults: int = 8
    horizon: float = 0.4
    start_fraction: float = 0.1
    outage_fraction: Tuple[float, float] = (0.1, 0.3)
    crash_weight: float = 0.5
    degrade_weight: float = 0.3
    partition_weight: float = 0.2
    degrade_factor: Tuple[float, float] = (0.2, 0.6)
    max_down_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.faults < 0:
            raise FleetError(f"faults must be >= 0, got {self.faults}")
        if self.horizon <= 0:
            raise FleetError(f"horizon must be > 0, got {self.horizon}")
        if not 0 <= self.start_fraction < 1:
            raise FleetError(
                f"start_fraction must be in [0, 1), got "
                f"{self.start_fraction}")
        if not 0 < self.max_down_fraction <= 1:
            raise FleetError(
                f"max_down_fraction must be in (0, 1], got "
                f"{self.max_down_fraction}")


_FAULT_KINDS = ("crash", "degrade", "partition")


def generate_fault_schedule(config: FleetFaultConfig,
                            health: FleetHealth) -> FleetFaultSchedule:
    """The seeded storm for one fleet: a pure function of its inputs.

    Injection times are spread over the active window (one per slot,
    jittered within it), targets are drawn uniformly from hosts not
    already faulted at that time, and partition events cut one whole
    failure domain (the single drawn host's domain when the fleet has
    only one domain — a one-domain fleet cannot be split along domain
    lines, so the cut isolates that host alone).
    """
    rng = make_rng(config.seed, "fleet-faults")
    hosts = health.host_ids()
    events: List[FleetFaultEvent] = []
    if config.faults == 0:
        return FleetFaultSchedule(seed=config.seed, events=())
    start = config.start_fraction * config.horizon
    window = config.horizon - start
    slot = window / config.faults
    max_down = max(1, int(config.max_down_fraction * len(hosts)))
    down_until: Dict[str, float] = {}
    for i in range(config.faults):
        t = start + (i + rng.uniform(0.1, 0.9)) * slot
        duration = rng.uniform(*config.outage_fraction) * config.horizon
        if i < len(_FAULT_KINDS):
            kind = _FAULT_KINDS[i]
        else:
            weights = (config.crash_weight, config.degrade_weight,
                       config.partition_weight)
            x = rng.random() * sum(weights)
            kind = _FAULT_KINDS[-1]
            for candidate, weight in zip(_FAULT_KINDS, weights):
                x -= weight
                if x <= 0:
                    kind = candidate
                    break
        if kind == "partition":
            anchor = rng.choice(hosts)
            if health.domains > 1:
                targets = tuple(
                    health.domain_members(health.domain_of(anchor)))
            else:
                targets = (anchor,)
            if len(targets) >= len(hosts):
                continue  # cannot cut the whole fleet from itself
            events.append(FleetFaultEvent(
                time=t, kind=kind, targets=targets, duration=duration))
            continue
        candidates = [h for h in hosts if down_until.get(h, 0.0) <= t]
        already_down = len(hosts) - len(candidates)
        if not candidates or already_down + 1 > max_down:
            continue  # respect the concurrent-fault cap
        target = rng.choice(candidates)
        down_until[target] = t + duration
        factor = (rng.uniform(*config.degrade_factor)
                  if kind == "degrade" else None)
        events.append(FleetFaultEvent(
            time=t, kind=kind, targets=(target,), duration=duration,
            factor=factor))
    return FleetFaultSchedule(seed=config.seed, events=tuple(events))


# --------------------------------------------------------------------------
# The injector.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetFaultRecord:
    """One applied fault action, for the audit log.

    Attributes:
        time: Fleet time the action took effect.
        action: ``"inject"``, ``"repair"``, or ``"skip"``.
        kind: The fault kind acted on.
        targets: Affected host ids.
        detail: Human-readable specifics.
    """

    time: float
    action: str
    kind: str
    targets: Tuple[str, ...]
    detail: str = ""


@dataclass
class _ScheduledAction:
    event: FleetFaultEvent
    applied: bool = False
    partition_token: Optional[int] = None


class FleetFaultInjector:
    """Drives a :class:`FleetFaultSchedule` through the fleet clock.

    The injector owns the campaign's time loop: callers replace their
    ``fleet.advance_to(t)`` calls with :meth:`advance_to`, which advances
    the fleet to each due fault (and recovery-retry) time in order,
    applies it, and continues — so both clock disciplines see the exact
    same interleaving of workload, faults, and recovery.

    Args:
        fleet: The fleet under test.
        schedule: The seeded storm to drive.
        recovery: Optional
            :class:`~repro.fleet.recovery.FleetRecoveryController`; when
            attached, crash/degrade events trigger evacuation and the
            injector also pumps its retry queue.  Without one, fleet
            placements on a crashed host are released and *dropped*
            (counted in :attr:`sessions_dropped`) — the fleet never
            carries reservations on a dead host either way.
    """

    def __init__(self, fleet: "Fleet", schedule: FleetFaultSchedule,
                 recovery=None) -> None:
        self.fleet = fleet
        self.schedule = schedule
        self.recovery = recovery
        self._actions = [_ScheduledAction(event=ev)
                         for ev in schedule.events]
        self._timeline: List[Tuple[float, int, str, int]] = []
        seq = 0
        for idx, ev in enumerate(schedule.events):
            self._timeline.append((ev.time, seq, "inject", idx))
            seq += 1
            self._timeline.append((ev.clear_time, seq, "repair", idx))
            seq += 1
        heapq.heapify(self._timeline)
        self._listeners: List[Callable[[FleetFaultRecord], None]] = []
        self.records: List[FleetFaultRecord] = []
        self.crashes = 0
        self.recoveries = 0
        self.degrades = 0
        self.restores = 0
        self.partitions = 0
        self.heals = 0
        self.skipped = 0
        #: Fleet sessions released from crashed hosts with no recovery
        #: controller attached (lost — tests assert this stays 0 when
        #: a controller is wired).
        self.sessions_dropped = 0

    # -- observation ---------------------------------------------------------

    def on_event(self,
                 listener: Callable[[FleetFaultRecord], None]) -> None:
        """Call *listener* after every applied fault action (the chaos
        harness hangs its invariant audits here)."""
        self._listeners.append(listener)

    def pending(self) -> int:
        """Timeline actions not yet applied."""
        return len(self._timeline)

    def next_time(self) -> Optional[float]:
        """Fleet time of the next due action (faults and retries)."""
        t_fault = self._timeline[0][0] if self._timeline else None
        t_retry = (self.recovery.next_due()
                   if self.recovery is not None else None)
        times = [x for x in (t_fault, t_retry) if x is not None]
        return min(times) if times else None

    # -- the drive loop ------------------------------------------------------

    def advance_to(self, t: float) -> int:
        """Advance the fleet to *t*, applying every fault action and
        recovery retry due on the way, in time order.

        Returns host events processed (same contract as
        :meth:`Fleet.advance_to`, so replay's ``host_events`` counter
        keeps working when faults are armed).
        """
        processed = 0
        while True:
            t_next = self.next_time()
            if t_next is None or t_next > t + _FAULT_EPS:
                break
            if t_next > self.fleet.now:
                processed += self.fleet.advance_to(t_next)
            # Faults first, then retries: a retry due at the same
            # instant must see the post-fault world.
            while (self._timeline
                   and self._timeline[0][0] <= t_next + _FAULT_EPS):
                _t, _seq, action, idx = heapq.heappop(self._timeline)
                self._apply(action, idx)
            if self.recovery is not None:
                self.recovery.process(self.fleet.now)
        if t > self.fleet.now:
            processed += self.fleet.advance_to(t)
        if self.recovery is not None:
            self.recovery.process(self.fleet.now)
        return processed

    # -- applying actions ----------------------------------------------------

    def _emit(self, action: str, kind: str, targets: Tuple[str, ...],
              detail: str = "") -> None:
        record = FleetFaultRecord(
            time=self.fleet.now, action=action, kind=kind,
            targets=targets, detail=detail)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def _skip(self, kind: str, targets: Tuple[str, ...],
              detail: str) -> None:
        self.skipped += 1
        self._emit("skip", kind, targets, detail)

    def _apply(self, action: str, idx: int) -> None:
        entry = self._actions[idx]
        ev = entry.event
        if action == "inject":
            handler = getattr(self, f"_inject_{ev.kind}")
        else:
            if not entry.applied:
                return  # the paired injection was skipped
            handler = getattr(self, f"_repair_{ev.kind}")
        handler(entry, ev)

    # crash ------------------------------------------------------------------

    def _inject_crash(self, entry: _ScheduledAction,
                      ev: FleetFaultEvent) -> None:
        host_id = ev.targets[0]
        health = self.fleet.health
        if health.is_crashed(host_id) or health.is_degraded(host_id):
            self._skip("crash", ev.targets, "host already faulted")
            return
        # Freeze the host *at* fleet time: wake it first so its local
        # clock (and any releases below) are stamped "now".
        self.fleet.wake(host_id)
        health.crash(host_id)
        self.fleet.telemetry.set_fault(host_id, True)
        if self.recovery is not None:
            self.recovery.evacuate_host(host_id, crash=True)
        else:
            self._drop_placements(host_id)
        self.fleet.clock.deactivate(host_id)
        entry.applied = True
        self.crashes += 1
        self._emit("inject", "crash", ev.targets)

    def _repair_crash(self, entry: _ScheduledAction,
                      ev: FleetFaultEvent) -> None:
        host_id = ev.targets[0]
        self.fleet.health.recover(host_id)
        self.fleet.telemetry.set_fault(host_id, False)
        # Thaw: the host re-enters the clock and catches up to fleet
        # time (its backlog — arbiter passes scheduled before the crash
        # — replays during the catch-up, identically on both clocks).
        self.fleet.clock.reactivate(host_id)
        self.recoveries += 1
        self._emit("repair", "crash", ev.targets)

    def _drop_placements(self, host_id: str) -> None:
        """No recovery controller: release (and lose) fleet sessions on a
        crashed host so it provably holds zero reservations."""
        scheduler = self.fleet.scheduler
        for fp in scheduler.placements_on(host_id):
            self.fleet.manager_release(host_id, fp.intent_id)
            scheduler.forget(fp.intent_id)
            self.sessions_dropped += 1
        self.fleet.telemetry.invalidate(host_id)

    # degrade ----------------------------------------------------------------

    def _inject_degrade(self, entry: _ScheduledAction,
                        ev: FleetFaultEvent) -> None:
        host_id = ev.targets[0]
        health = self.fleet.health
        if health.is_crashed(host_id) or health.is_degraded(host_id):
            self._skip("degrade", ev.targets, "host already faulted")
            return
        factor = ev.factor if ev.factor is not None else 0.5
        self.fleet.wake(host_id)
        health.degrade(host_id, factor)
        self.fleet.telemetry.set_fault(host_id, True)
        self.fleet.degrade_host_links(host_id, factor)
        self.fleet.notify(host_id)
        self.fleet.telemetry.invalidate(host_id)
        if self.recovery is not None:
            self.recovery.evacuate_host(host_id, crash=False)
        entry.applied = True
        self.degrades += 1
        self._emit("inject", "degrade", ev.targets,
                   f"capacity factor {factor:.2f}")

    def _repair_degrade(self, entry: _ScheduledAction,
                        ev: FleetFaultEvent) -> None:
        host_id = ev.targets[0]
        self.fleet.wake(host_id)
        self.fleet.restore_host_links(host_id)
        self.fleet.health.restore(host_id)
        self.fleet.telemetry.set_fault(host_id, False)
        self.fleet.notify(host_id)
        self.fleet.telemetry.invalidate(host_id)
        self.restores += 1
        self._emit("repair", "degrade", ev.targets)

    # partition --------------------------------------------------------------

    def _inject_partition(self, entry: _ScheduledAction,
                          ev: FleetFaultEvent) -> None:
        entry.partition_token = self.fleet.health.partition(ev.targets)
        entry.applied = True
        self.partitions += 1
        self._emit("inject", "partition", ev.targets)

    def _repair_partition(self, entry: _ScheduledAction,
                          ev: FleetFaultEvent) -> None:
        if entry.partition_token is not None:
            self.fleet.health.heal(entry.partition_token)
            entry.partition_token = None
        self.heals += 1
        self._emit("repair", "partition", ev.targets)

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """All fault counters, keyed for report embedding."""
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "degrades": self.degrades,
            "restores": self.restores,
            "partitions": self.partitions,
            "heals": self.heals,
            "skipped": self.skipped,
            "sessions_dropped": self.sessions_dropped,
        }

    def describe(self) -> str:
        """Human-readable injector summary."""
        return (
            f"FleetFaultInjector: {self.crashes} crashes "
            f"({self.recoveries} recovered), {self.degrades} degrades "
            f"({self.restores} restored), {self.partitions} partitions "
            f"({self.heals} healed), {self.skipped} skipped, "
            f"{self.pending()} pending"
        )
