"""The fleet-wide invariant oracle.

The fleet mirror of :mod:`repro.resilience.invariants`: where that module
audits one fabric, :func:`check_fleet_invariants` audits the *cluster*
bookkeeping that faults, evacuation, and migration stress — and it is the
pass/fail arbiter of every chaos campaign (``repro.fleet.chaos``).

Five families of checks:

1. **Binding soundness** — every scheduler binding points at a host that
   actually holds the placement, and no host holds a fleet placement the
   scheduler does not know about.  A failed migration or evacuation that
   lost (or duplicated) a session shows up here first.
2. **Crashed hosts are empty** — a crashed host carries zero fleet
   placements and (fleet-visible) zero ledger reservations: a dead
   host's promises are void, so any residue is a leak.
3. **Telemetry conservation** — each host's headroom summary reports
   exactly the placements its manager holds, and a fault-marked host
   never reports healthy (placement must not route into a known fault).
4. **Per-host deep audit** — the full five-way per-host oracle
   (:func:`repro.resilience.invariants.check_invariants`) on every
   *live* host: floors vs allocations, ledger vs links, health vs flows.
   Skipped for crashed hosts — their fabric is frozen mid-flight and
   will be audited after recovery.
5. **Session conservation** — the campaign-level accounting identity:
   every admitted session is currently placed, awaiting re-placement,
   explicitly shed, or released/cancelled.  Nothing vanishes, nothing
   double-counts.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..resilience.invariants import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet
    from .recovery import FleetRecoveryController

#: Reservation mass below this (bytes/s) counts as zero on a crashed
#: host.  Fleet reservations run at 1e10 B/s scale, so 1 B/s of float
#: residue after release-everything is 1e-10 relative — noise, not leak.
_RESERVATION_TOL = 1.0


def check_fleet_invariants(
    fleet: "Fleet",
    recovery: Optional["FleetRecoveryController"] = None,
    deep: bool = True,
    rate_tol: float = 1.0,
) -> List[InvariantViolation]:
    """Run every fleet invariant; return the violations (empty = green).

    Args:
        fleet: The fleet to audit.
        recovery: The attached recovery controller — enables the
            session-conservation identity (its shed/pending counters are
            terms of the equation).
        deep: Also run the per-host fabric oracle on every live host.
            The fleet checks alone are cheap enough for per-fault-event
            audits; the deep audit is for campaign ends and property
            tests.
        rate_tol: Bytes/s tolerance forwarded to the per-host oracle.
            Default 1 B/s: at the 1e10 B/s bandwidths fleet sessions
            reserve, the per-host default (1e-6) is below float64
            resolution and would flag arithmetic residue as leaks.
    """
    violations: List[InvariantViolation] = []
    now = fleet.now
    health = fleet.health
    scheduler = fleet.scheduler

    def violation(name: str, detail: str) -> None:
        violations.append(InvariantViolation(name=name, detail=detail,
                                             time=now))

    # 1. Binding soundness: scheduler bindings vs per-host managers.
    #    ``placed_intents`` is the fleet-surface view of each manager's
    #    placements, so the same audit runs against worker-held hosts.
    bindings = scheduler.bindings()
    placed = fleet.placed_intents()
    seen_on_hosts = {}
    for host_id in fleet.host_ids():
        for intent_id in placed.get(host_id, ()):
            prev = seen_on_hosts.get(intent_id)
            if prev is not None:
                violation(
                    "duplicated-session",
                    f"{intent_id} placed on both {prev} and {host_id}")
            seen_on_hosts[intent_id] = host_id
    for intent_id, host_id in sorted(bindings.items()):
        actual = seen_on_hosts.get(intent_id)
        if actual is None:
            violation(
                "lost-session",
                f"{intent_id} bound to {host_id} but placed nowhere")
        elif actual != host_id:
            violation(
                "binding-mismatch",
                f"{intent_id} bound to {host_id} but placed on {actual}")
        if health.is_crashed(host_id):
            violation(
                "binding-to-crashed-host",
                f"{intent_id} bound to crashed host {host_id}")
    bound = set(bindings)
    for intent_id, host_id in sorted(seen_on_hosts.items()):
        if intent_id not in bound:
            violation(
                "unbound-placement",
                f"{intent_id} placed on {host_id} but unknown to the "
                f"fleet scheduler")

    # 2. Crashed hosts hold nothing.
    for host_id in sorted(health.crashed):
        fleet.require_host(host_id)
        leftover = placed.get(host_id, ())
        if leftover:
            ids = sorted(leftover)
            violation(
                "crashed-host-placements",
                f"{host_id} crashed but still holds {ids}")
        reserved = fleet.reserved_total(host_id)
        if reserved > _RESERVATION_TOL:
            violation(
                "crashed-host-reservations",
                f"{host_id} crashed but its ledger still reserves "
                f"{reserved:.1f} B/s")

    # 3. Telemetry conservation.
    for host_id in fleet.host_ids():
        summary = fleet.telemetry.headroom(host_id)
        actual = len(placed.get(host_id, ()))
        if summary.placements != actual:
            violation(
                "telemetry-placement-drift",
                f"{host_id} summary says {summary.placements} placements, "
                f"manager holds {actual}")
        if ((health.is_crashed(host_id) or health.is_degraded(host_id))
                and summary.healthy):
            violation(
                "telemetry-fault-mark",
                f"{host_id} is faulted but its summary reports healthy")

    # 4. Per-host deep audit (live hosts only).
    if deep:
        for host_id, name, detail, vtime in fleet.deep_audits(
                rate_tol=rate_tol, exclude=health.crashed):
            violations.append(InvariantViolation(
                name=name, detail=f"{host_id}: {detail}", time=vtime))

    # 5. Session conservation: admitted - released - cancelled
    #    == placed + shed + pending re-placements.  (Live retry entries
    #    are still placed, so they appear on the left via bindings.)
    if recovery is not None:
        lhs = (scheduler.admitted_count - scheduler.released_count
               - recovery.cancelled)
        rhs = (len(bindings) + recovery.shed
               + recovery.pending_replacements)
        if lhs != rhs:
            violation(
                "session-conservation",
                f"admitted({scheduler.admitted_count}) "
                f"- released({scheduler.released_count}) "
                f"- cancelled({recovery.cancelled}) = {lhs} != {rhs} = "
                f"placed({len(bindings)}) + shed({recovery.shed}) "
                f"+ pending({recovery.pending_replacements})")

    return violations
