"""The :class:`Fleet`: N managed hosts on one shared virtual clock.

The paper's manageability pieces are per-host, but its motivating
scenarios — multi-tenant clouds, tenants that come and go, migration under
a virtualized abstraction — only matter at datacenter scale.  ``Fleet``
composes many :class:`~repro.host.Host` sessions into one cluster:

* a :class:`~repro.fleet.clock.FleetClock` — by default the event-driven
  discipline (only hosts with pending work are woken; idle hosts
  fast-forward), with the original lockstep coordinator available as
  ``clock="lockstep"``;
* a :class:`~repro.fleet.telemetry.FleetTelemetry` rollup of
  push-invalidated per-host headroom summaries feeding
* a :class:`~repro.fleet.scheduler.ClusterScheduler` with pluggable
  placement policies ranked over a vectorized headroom matrix, and
* a :class:`~repro.fleet.migration.MigrationPlanner` that live-migrates
  placements between hosts, wired to each host's
  :class:`~repro.resilience.controller.RecoveryController` escalation
  hook when ``resilience=`` is armed.

Quick start::

    from repro import Fleet, pipe, Gbps

    fleet = Fleet("cascade_lake_2s", hosts=16, policy="best-fit")
    fleet.submit(pipe("kv", "tenantA", src="nic0", dst="dimm0-0",
                      bandwidth=Gbps(100)))
    fleet.advance_to(1.0)
    print(fleet.describe())
"""

from __future__ import annotations

import warnings
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..core.intents import PerformanceTarget
from ..core.virtual import _device_mapping
from ..errors import FleetError, UnknownHostError
from ..host import Host
from ..topology.graph import HostTopology
from ..topology.presets import load_preset
from .clock import FleetClock, make_clock
from .faults import FleetHealth
from .migration import MigrationPlanner
from .placement import PlacementPolicy
from .scheduler import ClusterScheduler, FleetPlacement
from .telemetry import FleetTelemetry, canonical_device_keys


class Fleet:
    """A cluster of simulated managed hosts under one scheduler.

    Args:
        topology: A preset name (each host gets a fresh instance) or a
            zero-argument factory returning a new :class:`HostTopology`
            per call.  A shared ``HostTopology`` *instance* is rejected:
            topologies carry mutable link state, so hosts must not share.
        hosts: How many hosts to build (ignored when *host_ids* given).
        host_ids: Explicit host ids; default ``host00..hostNN``.
        clock: ``"event"`` (default), ``"lockstep"``, or a
            :class:`~repro.fleet.clock.FleetClock` subclass.  The event
            clock wakes only hosts with pending work and produces results
            equivalent to lockstep on seeded workloads; lockstep advances
            every host each quantum and runs fleet control at every
            boundary unconditionally.
        clock_quantum: Lockstep granularity in simulated seconds (the
            event clock uses it when boundary cadence is required —
            rebalancing armed or recovery controllers attached).
        policy: Placement policy name or instance (see
            :data:`~repro.fleet.placement.PLACEMENT_POLICIES`).
        max_attempts: Per-intent host-probe bound forwarded to the
            scheduler (``None`` probes every host).
        rebalance_threshold: Peak-reserved-fraction skew that triggers a
            rebalance move at a boundary; ``None`` (default) disables.
        failure_domains: How many failure domains to spread hosts over
            (round-robin by sorted host id).  The fault model crashes
            and partitions whole domains; placement avoids faulted
            domains.  Default 1 (no domain structure).
        telemetry_max_age: Deprecated and ignored — headroom summaries
            are push-invalidated now and always current.
        start: Initial simulated time for every host.
        resilience: Forwarded to each :class:`Host`; when armed, each
            host's recovery controller escalates unrecoverable placements
            to the fleet's migration planner.
        **host_kwargs: Remaining keywords forwarded to every
            :class:`Host` (``coalesce_recompute``, ``arbiter_period``,
            ``decision_latency``, ...).
    """

    def __init__(
        self,
        topology: Union[str, Callable[[], HostTopology]] = "cascade_lake_2s",
        hosts: int = 4,
        *,
        host_ids: Optional[Sequence[str]] = None,
        clock: Union[str, Type[FleetClock]] = "event",
        clock_quantum: float = 0.001,
        policy: Union[str, PlacementPolicy] = "best-fit",
        max_attempts: Optional[int] = None,
        rebalance_threshold: Optional[float] = None,
        failure_domains: int = 1,
        telemetry_max_age: Optional[float] = None,
        start: float = 0.0,
        resilience=None,
        **host_kwargs,
    ) -> None:
        if isinstance(topology, HostTopology):
            raise FleetError(
                "pass a preset name or a topology *factory*: hosts must "
                "not share one mutable HostTopology instance"
            )
        if isinstance(topology, str):
            preset = topology

            def factory() -> HostTopology:
                return load_preset(preset)
        else:
            factory = topology
        if clock_quantum <= 0:
            raise FleetError(
                f"clock_quantum must be > 0, got {clock_quantum}"
            )
        if telemetry_max_age is not None:
            warnings.warn(
                "telemetry_max_age is deprecated and ignored: headroom "
                "summaries are push-invalidated now and always current",
                DeprecationWarning, stacklevel=2,
            )
        ids = list(host_ids) if host_ids else [
            f"host{i:02d}" for i in range(hosts)
        ]
        if len(set(ids)) != len(ids):
            raise FleetError(f"duplicate host ids in {ids}")
        if not ids:
            raise FleetError("a fleet needs at least one host")

        #: The device-id vocabulary intents are written against.
        self.reference_topology = factory()
        self._reference_keys = canonical_device_keys(self.reference_topology)
        self.clock_quantum = clock_quantum
        self._hosts: Dict[str, Host] = {}
        self._mappings: Dict[str, Dict[str, str]] = {}
        self.telemetry = FleetTelemetry()
        for host_id in sorted(ids):
            host = Host(factory(), start=start, resilience=resilience,
                        **host_kwargs)
            self._hosts[host_id] = host
            self.telemetry.attach(host_id, host)
        self.health = FleetHealth(sorted(ids), domains=failure_domains)
        self.scheduler = ClusterScheduler(self, policy=policy,
                                          max_attempts=max_attempts)
        self.planner = MigrationPlanner(
            self, self.scheduler, rebalance_threshold=rebalance_threshold,
        )
        self.clock = make_clock(clock, self, clock_quantum, start)
        for host_id, host in self._hosts.items():
            if host.recovery is not None:
                host.recovery.on_escalation(
                    lambda intent_id, _links, hid=host_id:
                        self.planner.request_escalation(hid, intent_id)
                )

    # -- membership ----------------------------------------------------------

    def host(self, host_id: str) -> Host:
        """The :class:`Host` registered under *host_id*."""
        try:
            return self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None

    def host_ids(self) -> List[str]:
        """All host ids, sorted — the fleet's deterministic order."""
        return sorted(self._hosts)

    def hosts(self) -> List[Tuple[str, Host]]:
        """``(host_id, host)`` pairs in deterministic order."""
        return [(host_id, self._hosts[host_id])
                for host_id in self.host_ids()]

    def __len__(self) -> int:
        return len(self._hosts)

    # -- the shared clock ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current fleet time (hosts may lag behind under the event
        clock until their next :meth:`wake`)."""
        return self.clock.now

    def advance_to(self, t: float) -> int:
        """Advance fleet time to *t*, running host work due before it.

        Under the event-driven clock only hosts with pending events are
        woken; idle hosts fast-forward (their local clocks catch up at
        the next fleet interaction).  Returns the number of host events
        processed.
        """
        return self.clock.advance_to(t)

    def wake(self, host_id: str, t: Optional[float] = None) -> int:
        """Bring one host's local clock up to fleet time (or *t*).

        Called automatically before every fleet-surface interaction with
        the host; exposed for callers driving hosts directly.
        """
        return self.clock.wake(host_id, t)

    def notify(self, host_id: str) -> None:
        """Tell the clock *host_id* may have new pending events.

        Called after fleet-surface mutations (submit, release, migration
        legs) so events they schedule — arbiter enforcement, retries —
        run at their due time under the event-driven clock rather than at
        the host's next wake.
        """
        self.clock.notify(host_id)

    def run_until(self, t: float) -> int:
        """Deprecated: use :meth:`advance_to` (plus :meth:`wake` when a
        host's local clock must be current).

        Preserves the historical contract — every host's local clock is
        at fleet time on return — by syncing all hosts after the advance.
        Returns the total number of host events processed.
        """
        warnings.warn(
            "Fleet.run_until() is deprecated; use Fleet.advance_to() "
            "(hosts are woken lazily) or Fleet.clock directly",
            DeprecationWarning, stacklevel=2,
        )
        processed = self.clock.advance_to(t)
        processed += self.clock.sync_hosts()
        return processed

    # -- intent remapping ----------------------------------------------------

    def canonical_device_key(self, device_id: str) -> Optional[str]:
        """The ``"<type>:<index>"`` key of a reference-topology device
        (``None`` when unknown) — the vocabulary
        :attr:`HostHeadroom.attach_free` is keyed by."""
        return self._reference_keys.get(device_id)

    def remap_intent(self, intent: PerformanceTarget,
                     host_id: str) -> PerformanceTarget:
        """Rewrite an intent's device ids for one host's topology.

        Devices map by (type, per-type index) against the reference
        topology — the n-th NIC in the reference vocabulary is the n-th
        NIC on every host — which is what lets one intent stream target a
        heterogeneous fleet.  On a homogeneous fleet the mapping is the
        identity and the original intent is returned unchanged.
        """
        mapping = self._mappings.get(host_id)
        if mapping is None:
            mapping = _device_mapping(self.reference_topology,
                                      self.host(host_id).topology)
            self._mappings[host_id] = mapping
        src = mapping.get(intent.src, intent.src)
        dst = (mapping.get(intent.dst, intent.dst)
               if intent.dst is not None else None)
        if src == intent.src and dst == intent.dst:
            return intent
        return dataclass_replace(intent, src=src, dst=dst)

    # -- delegation ----------------------------------------------------------

    def submit(self, intent: PerformanceTarget) -> FleetPlacement:
        """Admit *intent* somewhere in the fleet (see
        :meth:`ClusterScheduler.submit`)."""
        return self.scheduler.submit(intent)

    def try_submit(self,
                   intent: PerformanceTarget) -> Optional[FleetPlacement]:
        """Like :meth:`submit` but ``None`` on fleet-wide rejection."""
        return self.scheduler.try_submit(intent)

    def release(self, intent_id: str) -> None:
        """Withdraw a fleet-placed intent."""
        self.scheduler.release(intent_id)

    def migrate(self, intent_id: str, dst_host_id: str) -> FleetPlacement:
        """Live-migrate one placement (see :meth:`MigrationPlanner.migrate`)."""
        return self.planner.migrate(intent_id, dst_host_id)

    def placements(self) -> List[FleetPlacement]:
        """Every placement in the fleet."""
        return self.scheduler.placements()

    def shutdown(self) -> None:
        """Shut down every host (recovery, retry, monitors, arbiters)."""
        for _host_id, host in self.hosts():
            host.shutdown()

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable fleet summary."""
        lines = [
            f"Fleet of {len(self)} hosts on "
            f"{self.reference_topology.name!r} @ t={self.now:.6f}s "
            f"(clock={self.clock.name}, "
            f"quantum={self.clock_quantum:g}s)"
        ]
        lines.append(self.scheduler.describe())
        lines.append(self.telemetry.describe())
        if self.planner.records:
            lines.append(self.planner.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Fleet(hosts={len(self)}, t={self.now:.6f}s, "
                f"clock={self.clock.name}, "
                f"policy={self.scheduler.policy.name}, "
                f"intents={len(self.scheduler.placements())})")
