"""The :class:`Fleet`: N managed hosts on one shared virtual clock.

The paper's manageability pieces are per-host, but its motivating
scenarios — multi-tenant clouds, tenants that come and go, migration under
a virtualized abstraction — only matter at datacenter scale.  ``Fleet``
composes many :class:`~repro.host.Host` sessions into one cluster:

* a :class:`~repro.fleet.clock.FleetClock` — by default the event-driven
  discipline (only hosts with pending work are woken; idle hosts
  fast-forward), with the original lockstep coordinator available as
  ``clock="lockstep"``;
* a :class:`~repro.fleet.telemetry.FleetTelemetry` rollup of
  push-invalidated per-host headroom summaries feeding
* a :class:`~repro.fleet.scheduler.ClusterScheduler` with pluggable
  placement policies ranked over a vectorized headroom matrix, and
* a :class:`~repro.fleet.migration.MigrationPlanner` that live-migrates
  placements between hosts, wired to each host's
  :class:`~repro.resilience.controller.RecoveryController` escalation
  hook when ``resilience=`` is armed.

Quick start::

    from repro import Fleet, pipe, Gbps

    fleet = Fleet("cascade_lake_2s", hosts=16, policy="best-fit")
    fleet.submit(pipe("kv", "tenantA", src="nic0", dst="dimm0-0",
                      bandwidth=Gbps(100)))
    fleet.advance_to(1.0)
    print(fleet.describe())
"""

from __future__ import annotations

import warnings
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..core.intents import PerformanceTarget
from ..core.manager import Placement
from ..core.virtual import _device_mapping
from ..errors import FleetError, UnknownHostError
from ..host import Host
from ..monitor.failures import FailureInjector
from ..resilience.invariants import check_invariants
from ..slo.monitor import FleetSloMonitor, SloSample
from ..slo.objective import SloAlert
from ..slo.probe import normalize_slo
from ..topology.elements import LinkClass
from ..topology.graph import HostTopology
from ..topology.presets import load_preset
from ..trace import TRACER
from .clock import FLEET_CLOCKS, FleetClock, make_clock
from .faults import FleetHealth
from .migration import MigrationPlanner
from .parallel import ParallelBackend, ParallelFleetClock
from .placement import PlacementPolicy
from .scheduler import ClusterScheduler, FleetPlacement
from .telemetry import (
    FleetTelemetry,
    ParallelFleetTelemetry,
    canonical_device_keys,
)


class Fleet:
    """A cluster of simulated managed hosts under one scheduler.

    Args:
        topology: A preset name (each host gets a fresh instance) or a
            zero-argument factory returning a new :class:`HostTopology`
            per call.  A shared ``HostTopology`` *instance* is rejected:
            topologies carry mutable link state, so hosts must not share.
        hosts: How many hosts to build (ignored when *host_ids* given).
        host_ids: Explicit host ids; default ``host00..hostNN``.
        clock: ``"event"`` (default), ``"lockstep"``, or a
            :class:`~repro.fleet.clock.FleetClock` subclass.  The event
            clock wakes only hosts with pending work and produces results
            equivalent to lockstep on seeded workloads; lockstep advances
            every host each quantum and runs fleet control at every
            boundary unconditionally.
        clock_quantum: Lockstep granularity in simulated seconds (the
            event clock uses it when boundary cadence is required —
            rebalancing armed or recovery controllers attached).
        policy: Placement policy name or instance (see
            :data:`~repro.fleet.placement.PLACEMENT_POLICIES`).
        max_attempts: Per-intent host-probe bound forwarded to the
            scheduler (``None`` probes every host).
        rebalance_threshold: Peak-reserved-fraction skew that triggers a
            rebalance move at a boundary; ``None`` (default) disables.
        failure_domains: How many failure domains to spread hosts over
            (round-robin by sorted host id).  The fault model crashes
            and partitions whole domains; placement avoids faulted
            domains.  Default 1 (no domain structure).
        telemetry_max_age: Deprecated and ignored — headroom summaries
            are push-invalidated now and always current.
        start: Initial simulated time for every host.
        parallel: Shard host simulations across this many worker
            *processes* (``None``, the default, runs everything in this
            process).  The control plane — scheduler, planner, health,
            fault timelines — stays in the parent and drives workers
            over a message protocol; given a seed the outcome is
            bit-identical to the serial event-driven clock.  Clamped to
            the host count; incompatible with ``resilience=`` (per-host
            recovery controllers would live in worker processes, out of
            the planner's reach — use
            :class:`~repro.fleet.recovery.FleetRecoveryController`,
            which is parent-side and fully supported).  With
            ``parallel=``, per-host accessors (:meth:`host`,
            :meth:`hosts`) are unavailable; use the fleet-surface
            accessors instead.
        resilience: Forwarded to each :class:`Host`; when armed, each
            host's recovery controller escalates unrecoverable placements
            to the fleet's migration planner.
        slo: Arm fleet-wide latency observability: ``True`` uses the
            default :class:`~repro.slo.probe.SloConfig`; a config or a
            single :class:`~repro.slo.objective.SloObjective` tunes it.
            Every host runs a sampled
            :class:`~repro.slo.probe.LatencyProbe` (in-process serially,
            inside the workers with ``parallel=`` — their samples ride
            piggybacked on every reply), and :meth:`advance_to` folds
            the merged stream into :attr:`slo`, a
            :class:`~repro.slo.monitor.FleetSloMonitor` whose fast-window
            burn-rate alerts hand the offending host to
            :meth:`~repro.fleet.migration.MigrationPlanner
            .relieve_latency` — the fleet half of the DESIGN.md §16
            closed loop.
        slo_max_moves: Migration budget per latency alert (default 4).
        **host_kwargs: Remaining keywords forwarded to every
            :class:`Host` (``coalesce_recompute``, ``arbiter_period``,
            ``decision_latency``, ...).
    """

    def __init__(
        self,
        topology: Union[str, Callable[[], HostTopology]] = "cascade_lake_2s",
        hosts: int = 4,
        *,
        host_ids: Optional[Sequence[str]] = None,
        clock: Union[str, Type[FleetClock]] = "event",
        clock_quantum: float = 0.001,
        policy: Union[str, PlacementPolicy] = "best-fit",
        max_attempts: Optional[int] = None,
        rebalance_threshold: Optional[float] = None,
        failure_domains: int = 1,
        telemetry_max_age: Optional[float] = None,
        start: float = 0.0,
        parallel: Optional[int] = None,
        resilience=None,
        slo=None,
        slo_max_moves: int = 4,
        **host_kwargs,
    ) -> None:
        if isinstance(topology, HostTopology):
            raise FleetError(
                "pass a preset name or a topology *factory*: hosts must "
                "not share one mutable HostTopology instance"
            )
        if isinstance(topology, str):
            preset = topology

            def factory() -> HostTopology:
                return load_preset(preset)
        else:
            factory = topology
        if clock_quantum <= 0:
            raise FleetError(
                f"clock_quantum must be > 0, got {clock_quantum}"
            )
        if telemetry_max_age is not None:
            warnings.warn(
                "telemetry_max_age is deprecated and ignored: headroom "
                "summaries are push-invalidated now and always current",
                DeprecationWarning, stacklevel=2,
            )
        if parallel is not None:
            if not isinstance(parallel, int) or isinstance(parallel, bool) \
                    or parallel < 1:
                raise FleetError(
                    f"parallel must be an int >= 1, got {parallel!r}")
            if resilience is not None:
                raise FleetError(
                    "parallel= is incompatible with resilience=: per-host "
                    "recovery controllers would live in worker processes, "
                    "out of the planner's reach; use the parent-side "
                    "FleetRecoveryController for fleet-level self-healing"
                )
        ids = list(host_ids) if host_ids else [
            f"host{i:02d}" for i in range(hosts)
        ]
        if len(set(ids)) != len(ids):
            raise FleetError(f"duplicate host ids in {ids}")
        if not ids:
            raise FleetError("a fleet needs at least one host")
        if slo_max_moves < 0:
            raise FleetError(
                f"slo_max_moves must be >= 0, got {slo_max_moves}")
        slo_config = normalize_slo(slo)
        self._slo_max_moves = slo_max_moves
        if slo_config is not None:
            # Probes run host-side (serially in this process, inside the
            # workers with parallel=), so the config must reach every
            # Host constructor — including the ones built post-fork.
            host_kwargs["slo"] = slo_config
            #: Fleet-wide SLO state (None unless built with ``slo=``).
            self.slo: Optional[FleetSloMonitor] = FleetSloMonitor(
                slo_config.objectives,
                keep_samples=slo_config.keep_samples)
            # Every probe arms at fleet build (host time 0), so they all
            # fire on the same exact grid k * probe_period; advance
            # boundaries before the next grid point cannot have produced
            # samples and skip the drain/evaluate entirely.
            self._slo_period = slo_config.probe_period
            self._slo_fires = 0
            self._slo_next_due = slo_config.probe_period
        else:
            self.slo = None
        # Hosts soft-quarantined by the latency alert sink (telemetry-
        # faulted so placement ranks them last until their burn clears).
        self._slo_quarantined: set = set()

        #: The device-id vocabulary intents are written against.
        self.reference_topology = factory()
        self._reference_keys = canonical_device_keys(self.reference_topology)
        self.clock_quantum = clock_quantum
        self._host_ids = sorted(ids)
        self._hosts: Dict[str, Host] = {}
        self._mappings: Dict[str, Dict[str, str]] = {}
        # Serial-mode fault-injection state (worker-side when parallel):
        # one injector per host, at most one active degrade per host.
        self._injectors: Dict[str, FailureInjector] = {}
        self._degrade_failures: Dict[str, list] = {}
        self._worker_traces: Optional[Dict[int, list]] = None
        if parallel is not None:
            self._backend: Optional[ParallelBackend] = ParallelBackend(
                self._host_ids, min(parallel, len(ids)), factory, start,
                dict(host_kwargs))
            self.parallel: Optional[int] = self._backend.workers
            # Homogeneous by construction (one factory), so one probe
            # instance yields the device mapping every host shares.
            self._parallel_mapping = _device_mapping(
                self.reference_topology, factory())
            self.telemetry = ParallelFleetTelemetry(self._backend)
        else:
            self._backend = None
            self.parallel = None
            self.telemetry = FleetTelemetry()
            for host_id in self._host_ids:
                host = Host(factory(), start=start, resilience=resilience,
                            **host_kwargs)
                self._hosts[host_id] = host
                self.telemetry.attach(host_id, host)
        self.health = FleetHealth(self._host_ids,
                                  domains=failure_domains)
        self.scheduler = ClusterScheduler(self, policy=policy,
                                          max_attempts=max_attempts)
        self.planner = MigrationPlanner(
            self, self.scheduler, rebalance_threshold=rebalance_threshold,
        )
        if parallel is not None:
            if isinstance(clock, type):
                raise FleetError(
                    "parallel= requires a named clock discipline "
                    f"({sorted(FLEET_CLOCKS)}), not a FleetClock class")
            if clock not in FLEET_CLOCKS:
                raise FleetError(
                    f"unknown fleet clock {clock!r}; "
                    f"choices: {sorted(FLEET_CLOCKS)}")
            self.clock: FleetClock = ParallelFleetClock(
                self, clock_quantum, start, self._backend,
                force_boundaries=(clock == "lockstep"))
        else:
            self.clock = make_clock(clock, self, clock_quantum, start)
        for host_id, host in self._hosts.items():
            if host.recovery is not None:
                host.recovery.on_escalation(
                    lambda intent_id, _links, hid=host_id:
                        self.planner.request_escalation(hid, intent_id)
                )
        if self.slo is not None:
            self.slo.on_alert(self._handle_slo_alert)

    # -- membership ----------------------------------------------------------

    def _no_direct_hosts(self, method: str) -> FleetError:
        return FleetError(
            f"Fleet.{method}() is unavailable with parallel="
            f"{self.parallel}: hosts live in worker processes; use the "
            f"fleet-surface accessors (placements, telemetry, "
            f"ledger_signatures, placed_intents) instead")

    def host(self, host_id: str) -> Host:
        """The :class:`Host` registered under *host_id* (serial only)."""
        if self._backend is not None:
            raise self._no_direct_hosts("host")
        try:
            return self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None

    def host_ids(self) -> List[str]:
        """All host ids, sorted — the fleet's deterministic order."""
        return list(self._host_ids)

    def hosts(self) -> List[Tuple[str, Host]]:
        """``(host_id, host)`` pairs in deterministic order (serial
        only)."""
        if self._backend is not None:
            raise self._no_direct_hosts("hosts")
        return [(host_id, self._hosts[host_id])
                for host_id in self._host_ids]

    def require_host(self, host_id: str) -> None:
        """Raise :class:`UnknownHostError` unless *host_id* is a fleet
        member.  Works in both execution modes, unlike :meth:`host`."""
        if self._backend is not None:
            if host_id not in self._backend.worker_of:
                raise UnknownHostError(host_id)
        elif host_id not in self._hosts:
            raise UnknownHostError(host_id)

    def __len__(self) -> int:
        return len(self._host_ids)

    # -- the shared clock ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current fleet time (hosts may lag behind under the event
        clock until their next :meth:`wake`)."""
        return self.clock.now

    def advance_to(self, t: float) -> int:
        """Advance fleet time to *t*, running host work due before it.

        Under the event-driven clock only hosts with pending events are
        woken; idle hosts fast-forward (their local clocks catch up at
        the next fleet interaction).  Returns the number of host events
        processed.

        When ``slo=`` is armed this is also the SLO evaluation point:
        probe samples accumulated during the advance are drained (from
        the in-process probes serially, from the piggybacked reply
        mirrors with ``parallel=``), folded into :attr:`slo`, and due
        burn-rate alerts fire — into the default
        :meth:`~repro.fleet.migration.MigrationPlanner.relieve_latency`
        sink and any listeners.  Advances happen at the same fleet times
        in every execution mode, so evaluation (and therefore the alert
        log) is bit-identical across them.
        """
        processed = self.clock.advance_to(t)
        if self.slo is not None:
            now = self.clock.now
            if now >= self._slo_next_due:
                self.slo.ingest(self._drain_slo_samples())
                self.slo.evaluate(now)
                if self._slo_quarantined:
                    self._clear_slo_quarantine()
                # Advance the gate past every grid point now covers.
                # The fold itself already happened at the first boundary
                # at or after each grid point (probes buffer until
                # drained), so gating on the exact grid skips only
                # provably-empty drains and keeps the alert log
                # bit-identical across backends and clock disciplines.
                fires, period = self._slo_fires, self._slo_period
                due = self._slo_next_due
                while due <= now:
                    fires += 1
                    due = (fires + 1) * period
                self._slo_fires = fires
                self._slo_next_due = due
        return processed

    def _clear_slo_quarantine(self) -> None:
        """Un-fault quarantined hosts whose burn demonstrably cleared.

        Clearing needs positive evidence — healthy samples in the fast
        window (see :meth:`FleetSloMonitor.host_clear`) — so a drained
        host stays quarantined until overflow placements probe it good
        again.  The fleet fault model's own telemetry marks are never
        clobbered: a host in a faulted domain stays marked.
        """
        for host_id in sorted(self._slo_quarantined):
            if self.slo.host_clear(host_id, self.now):
                self._slo_quarantined.discard(host_id)
                if host_id not in self.health.avoid_hosts():
                    self.telemetry.set_fault(host_id, False)

    def _drain_slo_samples(self) -> List[SloSample]:
        """Collect host-tagged probe samples accumulated since the last
        drain (the fold input for :attr:`slo`)."""
        if self._backend is not None:
            return self._backend.take_slo()
        samples: List[SloSample] = []
        for host_id in self._host_ids:
            probe = self._hosts[host_id].slo_probe
            if probe is None:  # pragma: no cover - armed fleets probe all
                continue
            for t, tenant, path, value in probe.take_delta():
                samples.append((t, host_id, tenant, path, value))
        return samples

    def _handle_slo_alert(self, alert: SloAlert) -> None:
        """Default alert sink: a fast-window burn on a named host drains
        its sessions toward headroom (DESIGN.md §16's closed loop).

        Slow-window alerts are advisory (they stay in the audit log but
        trigger no movement), matching the SRE playbook where only the
        fast burn pages.
        """
        if alert.window != "fast" or not alert.host_id:
            return
        if alert.host_id not in self._slo_quarantined:
            # Soft-quarantine: a telemetry-faulted host ranks last in
            # every placement policy, so new arrivals only land on it as
            # overflow while it burns budget.
            self._slo_quarantined.add(alert.host_id)
            self.telemetry.set_fault(alert.host_id, True)
        if self._slo_max_moves:
            self.planner.relieve_latency(
                alert.host_id, max_moves=self._slo_max_moves)

    def wake(self, host_id: str, t: Optional[float] = None) -> int:
        """Bring one host's local clock up to fleet time (or *t*).

        Called automatically before every fleet-surface interaction with
        the host; exposed for callers driving hosts directly.
        """
        return self.clock.wake(host_id, t)

    def notify(self, host_id: str) -> None:
        """Tell the clock *host_id* may have new pending events.

        Called after fleet-surface mutations (submit, release, migration
        legs) so events they schedule — arbiter enforcement, retries —
        run at their due time under the event-driven clock rather than at
        the host's next wake.
        """
        self.clock.notify(host_id)

    def run_until(self, t: float) -> int:
        """Deprecated: use :meth:`advance_to` (plus :meth:`wake` when a
        host's local clock must be current).

        Preserves the historical contract — every host's local clock is
        at fleet time on return — by syncing all hosts after the advance.
        Returns the total number of host events processed.
        """
        warnings.warn(
            "Fleet.run_until() is deprecated; use Fleet.advance_to() "
            "(hosts are woken lazily) or Fleet.clock directly",
            DeprecationWarning, stacklevel=2,
        )
        processed = self.clock.advance_to(t)
        processed += self.clock.sync_hosts()
        return processed

    # -- intent remapping ----------------------------------------------------

    def canonical_device_key(self, device_id: str) -> Optional[str]:
        """The ``"<type>:<index>"`` key of a reference-topology device
        (``None`` when unknown) — the vocabulary
        :attr:`HostHeadroom.attach_free` is keyed by."""
        return self._reference_keys.get(device_id)

    def remap_intent(self, intent: PerformanceTarget,
                     host_id: str) -> PerformanceTarget:
        """Rewrite an intent's device ids for one host's topology.

        Devices map by (type, per-type index) against the reference
        topology — the n-th NIC in the reference vocabulary is the n-th
        NIC on every host — which is what lets one intent stream target a
        heterogeneous fleet.  On a homogeneous fleet the mapping is the
        identity and the original intent is returned unchanged.
        """
        mapping = self._mappings.get(host_id)
        if mapping is None:
            if self._backend is not None:
                self.require_host(host_id)
                mapping = self._parallel_mapping
            else:
                mapping = _device_mapping(self.reference_topology,
                                          self.host(host_id).topology)
            self._mappings[host_id] = mapping
        src = mapping.get(intent.src, intent.src)
        dst = (mapping.get(intent.dst, intent.dst)
               if intent.dst is not None else None)
        if src == intent.src and dst == intent.dst:
            return intent
        return dataclass_replace(intent, src=src, dst=dst)

    # -- delegation ----------------------------------------------------------

    def submit(self, intent: PerformanceTarget) -> FleetPlacement:
        """Admit *intent* somewhere in the fleet (see
        :meth:`ClusterScheduler.submit`)."""
        return self.scheduler.submit(intent)

    def try_submit(self,
                   intent: PerformanceTarget) -> Optional[FleetPlacement]:
        """Like :meth:`submit` but ``None`` on fleet-wide rejection."""
        return self.scheduler.try_submit(intent)

    def release(self, intent_id: str) -> None:
        """Withdraw a fleet-placed intent."""
        self.scheduler.release(intent_id)

    def migrate(self, intent_id: str, dst_host_id: str) -> FleetPlacement:
        """Live-migrate one placement (see :meth:`MigrationPlanner.migrate`)."""
        return self.planner.migrate(intent_id, dst_host_id)

    def placements(self) -> List[FleetPlacement]:
        """Every placement in the fleet."""
        return self.scheduler.placements()

    # -- per-host manager surface --------------------------------------------
    #
    # The scheduler, planner, recovery controller, and fault injector go
    # through these instead of host(host_id).manager so the same control
    # plane drives both execution modes: serial calls the manager
    # in-process; parallel ships the op (with fleet ``now``, so the
    # worker wakes the host first — the serial caller has already issued
    # its own fleet.wake by this point).

    def worker_index(self, host_id: str) -> Optional[int]:
        """Which worker shard simulates *host_id* (``None`` serially).

        The scheduler's probe-batching key: consecutive ranked hosts
        with equal worker indices can share one ``try_submit_seq``
        round-trip.
        """
        if self._backend is None:
            return None
        return self._backend.worker_of.get(host_id)

    def manager_try_submit(self, host_id: str,
                           intent: PerformanceTarget) -> Optional[Placement]:
        """``manager.try_submit`` on one host (``None`` on rejection)."""
        if self._backend is not None:
            return self._backend.call(host_id, "try_submit", {
                "host_id": host_id, "now": self.now, "intent": intent})
        return self.host(host_id).manager.try_submit(intent)

    def manager_try_submit_run(
        self, attempts: List[Tuple[str, PerformanceTarget]],
    ) -> Tuple[int, Optional[Placement]]:
        """Probe ``(host_id, remapped_intent)`` attempts in order until
        one admits; returns ``(tried, placement-or-None)``.

        The batched probe primitive behind
        :meth:`ClusterScheduler._place`: serially it replays the classic
        wake/try/notify loop host by host; with ``parallel=`` the whole
        run (all attempts on one worker, by construction) ships as a
        single ``try_submit_seq`` op — one pipe round-trip however many
        hosts get probed.  The worker replays the identical loop, so
        per-host event histories match the serial ones instruction for
        instruction.
        """
        if self._backend is not None:
            widx = self._backend.worker_of[attempts[0][0]]
            tried, placement = self._backend.call_worker(
                widx, "try_submit_seq",
                {"now": self.now, "attempts": attempts})
            return tried, placement
        tried = 0
        for host_id, intent in attempts:
            # Probed hosts must be at fleet time so the reservation (and
            # any deferred re-solve it schedules) is stamped "now", not
            # at whatever time the host was last woken.
            self.wake(host_id)
            tried += 1
            placement = self.host(host_id).manager.try_submit(intent)
            # Either outcome may have scheduled host events (arbiter
            # enforcement after its decision latency, retry backoffs);
            # they postdate the wake above, so re-notify the clock.
            self.notify(host_id)
            if placement is not None:
                return tried, placement
        return tried, None

    def manager_submit(self, host_id: str,
                       intent: PerformanceTarget) -> Placement:
        """``manager.submit`` on one host (raises on rejection)."""
        if self._backend is not None:
            return self._backend.call(host_id, "submit", {
                "host_id": host_id, "now": self.now, "intent": intent})
        return self.host(host_id).manager.submit(intent)

    def manager_release(self, host_id: str, intent_id: str) -> None:
        """``manager.release`` on one host."""
        if self._backend is not None:
            self._backend.call(host_id, "release", {
                "host_id": host_id, "now": self.now,
                "intent_id": intent_id})
            return
        self.host(host_id).manager.release(intent_id)

    def manager_reinstate(self, host_id: str, placement: Placement) -> None:
        """``manager.reinstate`` on one host (migration rollback)."""
        if self._backend is not None:
            self._backend.call(host_id, "reinstate", {
                "host_id": host_id, "now": self.now,
                "placement": placement})
            return
        self.host(host_id).manager.reinstate(placement)

    def manager_placement(self, host_id: str, intent_id: str) -> Placement:
        """``manager.placement`` on one host (raises when not placed)."""
        if self._backend is not None:
            return self._backend.call(host_id, "placement", {
                "host_id": host_id, "intent_id": intent_id})
        return self.host(host_id).manager.placement(intent_id)

    def collect_placements(
        self, bindings: Dict[str, str],
    ) -> List[Tuple[str, str, Placement]]:
        """``(intent_id, host_id, placement)`` for every binding, in
        intent-id order — one scatter round-trip (all workers compute
        their bulk slices concurrently) instead of one blocking
        round-trip per worker."""
        pairs = sorted(bindings.items())
        if self._backend is None:
            return [(iid, hid, self.host(hid).manager.placement(iid))
                    for iid, hid in pairs]
        per_worker: Dict[int, list] = {}
        for iid, hid in pairs:
            widx = self._backend.worker_of[hid]
            per_worker.setdefault(widx, []).append((hid, iid))
        by_intent: Dict[str, Placement] = {}
        results = self._backend.scatter(
            "placements_bulk",
            {widx: {"pairs": wpairs}
             for widx, wpairs in per_worker.items()})
        for widx, wpairs in sorted(per_worker.items()):
            for (_hid, iid), placement in zip(wpairs, results[widx]):
                by_intent[iid] = placement
        return [(iid, hid, by_intent[iid]) for iid, hid in pairs]

    # -- audit surface -------------------------------------------------------

    def placed_intents(self) -> Dict[str, List[str]]:
        """Intent ids each host's manager currently holds, in manager
        (insertion) order — the invariant oracle's ground truth."""
        if self._backend is None:
            return {host_id: [p.intent.intent_id
                              for p in host.manager.placements()]
                    for host_id, host in self.hosts()}
        merged: Dict[str, List[str]] = {}
        for result in self._backend.broadcast("placed_ids", {}):
            merged.update(result)
        return {host_id: merged[host_id] for host_id in self._host_ids}

    def reserved_total(self, host_id: str) -> float:
        """Total ledger reservation mass (bytes/s) on one host."""
        if self._backend is not None:
            return self._backend.call(host_id, "reserved_total",
                                      {"host_id": host_id})
        host = self.host(host_id)
        return sum(host.manager.ledger.reserved_map.values())

    def ledger_signatures(self) -> Dict[str, tuple]:
        """Each host's sorted reservation map as a hashable signature —
        the cross-mode bit-identical equivalence key."""
        if self._backend is None:
            return {
                host_id: tuple(sorted(
                    host.manager.ledger.reserved_map.items()))
                for host_id, host in self.hosts()
            }
        merged: Dict[str, tuple] = {}
        for result in self._backend.broadcast("ledger_sigs", {}):
            merged.update(result)
        return {host_id: merged[host_id] for host_id in self._host_ids}

    def deep_audits(self, rate_tol: float = 1.0,
                    exclude: Sequence[str] = ()) -> List[tuple]:
        """Run the per-host fabric oracle on every non-excluded host.

        Returns ``(host_id, name, detail, time)`` violation tuples in
        global host order (stable within a host), so the fleet oracle's
        report is identical in both execution modes.
        """
        excluded = set(exclude)
        if self._backend is None:
            out = []
            for host_id, host in self.hosts():
                if host_id in excluded:
                    continue
                for v in check_invariants(host.network,
                                          manager=host.manager,
                                          controller=host.recovery,
                                          rate_tol=rate_tol):
                    out.append((host_id, v.name, v.detail, v.time))
            return out
        out = []
        for result in self._backend.broadcast(
                "deep_check", {"rate_tol": rate_tol,
                               "exclude": sorted(excluded)}):
            out.extend(result)
        out.sort(key=lambda item: item[0])  # stable: host order only
        return out

    # -- fault-model surface -------------------------------------------------

    def degrade_host_links(self, host_id: str, factor: float) -> None:
        """Degrade every intra-host placement link to *factor* capacity
        (the fault injector's host-degrade primitive)."""
        if self._backend is not None:
            self._backend.call(host_id, "degrade_links", {
                "host_id": host_id, "now": self.now, "factor": factor})
            return
        host = self.host(host_id)
        injector = self._injectors.get(host_id)
        if injector is None:
            injector = FailureInjector(host.network)
            self._injectors[host_id] = injector
        failures = self._degrade_failures.setdefault(host_id, [])
        for link in host.topology.links():
            if (link.link_class is LinkClass.INTER_HOST
                    or link.capacity <= 0):
                continue
            failures.append(injector.degrade_link(link.link_id, factor))

    def restore_host_links(self, host_id: str) -> None:
        """Clear a previous :meth:`degrade_host_links` on *host_id*."""
        if self._backend is not None:
            self._backend.call(host_id, "restore_links", {
                "host_id": host_id, "now": self.now})
            return
        self.host(host_id)  # raises UnknownHostError
        injector = self._injectors.get(host_id)
        if injector is not None:
            for failure in self._degrade_failures.pop(host_id, []):
                injector.clear(failure)

    # -- lifecycle -----------------------------------------------------------

    def worker_traces(self) -> Dict[int, list]:
        """Each worker's raw tracer records (``{}`` when serial).

        Fetched live while the workers are up; :meth:`shutdown` snapshots
        them first when tracing is enabled, so a post-shutdown export
        still sees the per-worker tracks.
        """
        if self._backend is None:
            return {}
        if not self._backend._shut_down:
            self._worker_traces = self._backend.collect_traces()
        return self._worker_traces or {}

    def shutdown(self) -> None:
        """Shut down every host (recovery, retry, monitors, arbiters);
        in parallel mode, stop the worker processes."""
        if self._backend is not None:
            if TRACER.enabled and not self._backend._shut_down:
                try:
                    self._worker_traces = self._backend.collect_traces()
                except FleetError:
                    pass  # a dead worker must not block teardown
            self._backend.shutdown()
            return
        for _host_id, host in self.hosts():
            host.shutdown()

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable fleet summary."""
        lines = [
            f"Fleet of {len(self)} hosts on "
            f"{self.reference_topology.name!r} @ t={self.now:.6f}s "
            f"(clock={self.clock.name}, "
            f"quantum={self.clock_quantum:g}s)"
        ]
        lines.append(self.scheduler.describe())
        lines.append(self.telemetry.describe())
        if self.slo is not None:
            lines.append(self.slo.describe())
        if self.planner.records:
            lines.append(self.planner.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Fleet(hosts={len(self)}, t={self.now:.6f}s, "
                f"clock={self.clock.name}, "
                f"policy={self.scheduler.policy.name}, "
                f"intents={len(self.scheduler.placements())})")
