"""The parent↔worker message protocol for process-parallel fleets.

``repro.fleet.parallel`` shards :class:`~repro.host.Host` simulations
across long-lived worker processes; this module is the *wire contract*
between the parent's control plane and those workers:

* :func:`shard_hosts` — the deterministic host→worker assignment.  The
  shard map is a pure function of the **sorted** host-id list and the
  worker count, so the same fleet always shards the same way no matter
  how the caller enumerated its hosts (the hypothesis property in
  ``tests/test_fleet_parallel.py``).
* Request/reply framing — requests are ``(op, payload)`` tuples, replies
  are ``(status, value, min_peek, dirty, slo)`` where ``status`` is one
  of :data:`OK` / :data:`ERR` / :data:`FATAL`.  Three mirrors piggyback
  on **every** reply so the parent needs no poll round-trips:
  ``min_peek`` is the worker's earliest pending host-event time (the
  parent's heap over per-worker minima), ``dirty`` is the hosts whose
  telemetry went stale during the op (the parent's push-invalidation
  mirror), and ``slo`` is the host-tagged latency-probe samples
  accumulated since the last reply (always ``()`` unless the fleet was
  built with ``slo=``; folded by the parent's
  :class:`~repro.slo.monitor.FleetSloMonitor`).
* :func:`encode_error` / :func:`decode_error` — library exceptions
  (:class:`~repro.errors.HostNetError` subclasses) crossing the process
  boundary.  Several carry custom multi-argument constructors
  (``AdmissionError(intent_id, reason)``) whose default pickle reduce
  would re-invoke ``__init__`` with the *formatted message* as the sole
  argument and crash; encoding ``(type name, message, attributes)``
  sidesteps ``__init__`` entirely and rebuilds an instance that passes
  the same ``isinstance`` checks with the same message and attributes.

Everything sent over the pipe must pickle.  The payloads the fleet ships
— :class:`~repro.core.intents.PerformanceTarget`,
:class:`~repro.core.manager.Placement`,
:class:`~repro.fleet.telemetry.HostHeadroom`, and plain containers — are
all plain (frozen) dataclasses, checked by the round-trip test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .. import errors as _errors
from ..errors import FleetError

# -- reply statuses ----------------------------------------------------------

#: The op succeeded; ``value`` is its result.
OK = "ok"
#: The op raised a library error; ``value`` is an encoded exception.
ERR = "err"
#: The worker hit an unexpected error; ``value`` is a traceback string.
#: The worker is considered poisoned after this (the parent tears the
#: fleet down rather than trusting half-applied state).
FATAL = "fatal"


def shard_hosts(host_ids: Sequence[str], workers: int) -> List[List[str]]:
    """Assign hosts to *workers* shards, deterministically and balanced.

    Hosts are sorted first (so the map is invariant under input
    permutation) and dealt round-robin: worker *i* owns every sorted
    host whose rank ≡ *i* (mod *workers*).  Properties the tests pin:

    * pure function of ``(set(host_ids), workers)``;
    * every host appears in exactly one shard;
    * shard sizes differ by at most one;
    * a host's worker depends only on its sorted rank and the worker
      count — growing the fleet by appending ids that sort last never
      reshuffles the existing prefix.
    """
    if workers < 1:
        raise FleetError(f"workers must be >= 1, got {workers}")
    ordered = sorted(host_ids)
    if len(set(ordered)) != len(ordered):
        raise FleetError(f"duplicate host ids in {sorted(host_ids)}")
    return [ordered[i::workers] for i in range(workers)]


# -- exception transport -----------------------------------------------------

#: Exception attributes worth shipping (plain strings set by the
#: library's error constructors: ``intent_id``, ``reason``, ``host_id``,
#: ...).  Anything non-picklable is dropped rather than poisoning the
#: reply.
def encode_error(exc: BaseException) -> Tuple[str, str, Dict[str, Any]]:
    """Flatten a library exception into ``(type name, message, attrs)``."""
    attrs = {
        key: value
        for key, value in vars(exc).items()
        if isinstance(value, (str, int, float, bool, type(None)))
    }
    return (type(exc).__name__, str(exc), attrs)


def decode_error(name: str, message: str,
                 attrs: Dict[str, Any]) -> BaseException:
    """Rebuild the exception :func:`encode_error` flattened.

    The class is resolved from :mod:`repro.errors` (falling back to
    :class:`~repro.errors.FleetError` for anything unknown) and
    instantiated *without* running its custom ``__init__`` — several
    library errors take multi-argument constructors that a message
    string cannot satisfy.  ``Exception.__init__`` installs the message
    (so ``str(exc)`` and ``raise`` formatting match the worker side) and
    the shipped attributes are restored for callers that read
    ``exc.intent_id`` and friends.
    """
    exc_cls = getattr(_errors, name, None)
    if not (isinstance(exc_cls, type)
            and issubclass(exc_cls, _errors.HostNetError)):
        exc_cls = FleetError
    exc = exc_cls.__new__(exc_cls)
    Exception.__init__(exc, message)
    for key, value in attrs.items():
        try:
            setattr(exc, key, value)
        except AttributeError:  # pragma: no cover - slotted subclass
            pass
    return exc
