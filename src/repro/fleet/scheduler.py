"""The cluster scheduler: fleet-wide admission of tenant intents.

:class:`ClusterScheduler` is to the fleet what each host's
:class:`~repro.core.manager.HostNetworkManager` is to one fabric.  It does
not re-implement admission — every per-host guarantee (capacity-checked
ledgers, atomic floor installation, SLO ceilings) is delegated to the host
managers.  Its job is the one decision no host can make: *which* host.

For each intent the active :class:`~repro.fleet.placement.PlacementPolicy`
ranks hosts over the telemetry's vectorized
:class:`~repro.fleet.telemetry.HeadroomMatrix` (push-invalidated, so it is
always current); the scheduler probes hosts in that order (waking each to
fleet time and remapping the intent's device ids onto its topology) and
commits to the first that admits.  Every decision is traced under the
``fleet`` category.
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, List, Optional, Set, Tuple,
                    TYPE_CHECKING, Union)

from ..core.intents import PerformanceTarget
from ..core.manager import Placement
from ..errors import AdmissionError
from ..trace.recorder import TRACER
from ..trace.spans import CAT_FLEET
from .placement import PlacementPolicy, PlacementRequest, make_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet


class FleetPlacement:
    """An admitted intent and the host it landed on.

    Attributes:
        host_id: The hosting host.
        placement: The host-local :class:`~repro.core.manager.Placement`
            (whose intent has device ids remapped to that host).
    """

    __slots__ = ("host_id", "placement")

    def __init__(self, host_id: str, placement: Placement) -> None:
        self.host_id = host_id
        self.placement = placement

    @property
    def intent_id(self) -> str:
        """Id of the placed intent."""
        return self.placement.intent.intent_id

    @property
    def tenant_id(self) -> str:
        """Owner of the placed intent."""
        return self.placement.intent.tenant_id

    def __repr__(self) -> str:
        return (f"FleetPlacement({self.intent_id!r} on {self.host_id!r}, "
                f"{len(self.placement.links())} links)")


class ClusterScheduler:
    """Headroom-aware fleet-wide admission.

    Args:
        fleet: The fleet whose hosts are placement targets.
        policy: A policy name from
            :data:`~repro.fleet.placement.PLACEMENT_POLICIES` or a
            :class:`~repro.fleet.placement.PlacementPolicy` instance.
        max_attempts: Bound on per-intent host probes.  ``None`` (default)
            probes every host, guaranteeing an admit whenever *any* host
            fits.  A finite bound models the constant scheduling cost a
            production placer pays (probe the k most promising hosts, as
            sample-based cluster schedulers do) — under bounded probing
            the *ranking* decides the rejection rate, which is exactly
            what ``bench_fleet_placement`` measures.
    """

    def __init__(self, fleet: "Fleet",
                 policy: Union[str, PlacementPolicy] = "best-fit",
                 max_attempts: Optional[int] = None) -> None:
        self.fleet = fleet
        self.telemetry = fleet.telemetry
        self.policy = make_policy(policy)
        self.max_attempts = max_attempts
        self._host_of: Dict[str, str] = {}
        self._original_intent: Dict[str, PerformanceTarget] = {}
        self._tenant_hosts: Dict[str, Dict[str, int]] = {}
        self.admitted_count = 0
        self.rejected_count = 0
        self.released_count = 0
        self.probe_count = 0  # per-host admission attempts, total

    # -- admission -----------------------------------------------------------

    def submit(self, intent: PerformanceTarget) -> FleetPlacement:
        """Place *intent* on some host, or raise
        :class:`~repro.errors.AdmissionError` when no host admits it.

        The intent's device ids are interpreted against the fleet's
        reference topology and remapped per candidate host, so one intent
        vocabulary works across a heterogeneous fleet.
        """
        if not TRACER.enabled:
            return self._submit_untracked(intent)
        with TRACER.span(CAT_FLEET, "schedule", {
            "tenant": intent.tenant_id,
            "intent": intent.intent_id,
            "policy": self.policy.name,
        }):
            try:
                placed = self._submit_untracked(intent)
            except AdmissionError:
                TRACER.annotate(outcome="rejected")
                raise
            TRACER.annotate(outcome="admitted", host=placed.host_id)
            return placed

    def _submit_untracked(self, intent: PerformanceTarget) -> FleetPlacement:
        if intent.intent_id in self._host_of:
            raise AdmissionError(intent.intent_id, "already placed in fleet")
        placed, tried = self._place(
            intent, avoid=self.fleet.health.avoid_hosts(),
        )
        if placed is not None:
            self.admitted_count += 1
            return placed
        self.rejected_count += 1
        raise AdmissionError(
            intent.intent_id,
            f"no host admitted it ({tried} tried, "
            f"policy={self.policy.name})",
        )

    def _place(self, intent: PerformanceTarget,
               avoid: FrozenSet[str] = frozenset(),
               exclude: FrozenSet[str] = frozenset(),
               reachable_from: Optional[str] = None,
               ) -> Tuple[Optional[FleetPlacement], int]:
        """Probe-and-commit without the admitted/rejected accounting.

        *avoid* is the soft faulted-domain signal threaded into the
        policy ranking; *exclude* hard-removes hosts (the evacuation
        source); crashed hosts are always hard-removed; when
        *reachable_from* is given, hosts partitioned away from it are
        removed too (a migration leg cannot cross a cut).  Returns the
        placement (or ``None``) plus how many hosts were probed-or-
        rankable, for the rejection message.
        """
        health = self.fleet.health
        order = self.policy.rank_matrix(
            self.request_for(intent, avoid_hosts=avoid),
            self.telemetry.matrix(),
        )
        order = [
            h for h in order
            if h not in exclude and not health.is_crashed(h)
            and (reachable_from is None
                 or health.reachable(reachable_from, h))
        ]
        if self.max_attempts is not None:
            order = order[:self.max_attempts]
        # Probe in ranked order, but batched: maximal runs of consecutive
        # hosts owned by the same worker go out as one try_submit_seq op
        # (one pipe round-trip instead of one per probed host).  Serially
        # every host maps to the same (None) worker, so the whole ranking
        # is one run and the loop below degenerates to the classic
        # wake/try/notify sequence — the probe order, stop-at-first-
        # success semantics, and per-host event histories are identical
        # in both modes.
        fleet = self.fleet
        index = 0
        while index < len(order):
            widx = fleet.worker_index(order[index])
            end = index + 1
            while end < len(order) and fleet.worker_index(order[end]) == widx:
                end += 1
            run = order[index:end]
            attempts = [(host_id, fleet.remap_intent(intent, host_id))
                        for host_id in run]
            tried, placement = fleet.manager_try_submit_run(attempts)
            self.probe_count += tried
            if placement is not None:
                host_id = run[tried - 1]
                self._bind(intent, host_id)
                self.telemetry.invalidate(host_id)
                return FleetPlacement(host_id, placement), len(order)
            index = end
        return None, len(order)

    def place(self, intent: PerformanceTarget,
              avoid: FrozenSet[str] = frozenset(),
              exclude: FrozenSet[str] = frozenset(),
              reachable_from: Optional[str] = None,
              ) -> Optional[FleetPlacement]:
        """Place an intent outside the admission accounting.

        The recovery controller's re-placement path: an evacuee being
        re-homed was already counted admitted once, so this neither
        bumps ``admitted_count`` nor ``rejected_count``.  Returns
        ``None`` when no eligible host admits it.
        """
        if intent.intent_id in self._host_of:
            raise AdmissionError(intent.intent_id, "already placed in fleet")
        placed, _tried = self._place(intent, avoid=avoid, exclude=exclude,
                                     reachable_from=reachable_from)
        return placed

    def try_submit(self,
                   intent: PerformanceTarget) -> Optional[FleetPlacement]:
        """Like :meth:`submit` but returns ``None`` on fleet-wide reject."""
        try:
            return self.submit(intent)
        except AdmissionError:
            return None

    def release(self, intent_id: str) -> None:
        """Withdraw a fleet-placed intent from its host."""
        host_id = self.host_of(intent_id)
        self.fleet.wake(host_id)
        self.fleet.manager_release(host_id, intent_id)
        self.fleet.notify(host_id)  # release schedules enforcement too
        self._unbind(intent_id)
        self.telemetry.invalidate(host_id)
        self.released_count += 1

    # -- placement bookkeeping ----------------------------------------------

    def _bind(self, intent: PerformanceTarget, host_id: str) -> None:
        self._host_of[intent.intent_id] = host_id
        self._original_intent[intent.intent_id] = intent
        bucket = self._tenant_hosts.setdefault(intent.tenant_id, {})
        bucket[host_id] = bucket.get(host_id, 0) + 1

    def _unbind(self, intent_id: str) -> None:
        host_id = self._host_of.pop(intent_id)
        intent = self._original_intent.pop(intent_id)
        bucket = self._tenant_hosts.get(intent.tenant_id, {})
        remaining = bucket.get(host_id, 0) - 1
        if remaining > 0:
            bucket[host_id] = remaining
        else:
            bucket.pop(host_id, None)
        if not bucket:
            self._tenant_hosts.pop(intent.tenant_id, None)

    def rebind(self, intent_id: str, host_id: str) -> None:
        """Move the bookkeeping of an intent to a new host.

        Called by the :class:`~repro.fleet.migration.MigrationPlanner`
        after it has physically moved the placement; not for general use.
        """
        intent = self._original_intent[intent_id]
        self._unbind(intent_id)
        self._bind(intent, host_id)

    def forget(self, intent_id: str) -> None:
        """Drop the fleet bookkeeping of an intent *without* releasing it.

        The crash path: a dead host's reservations are void (there is no
        manager to release from in the real-world analogue), so the
        fault machinery releases host-locally and unbinds here, then
        re-places through :meth:`place`.  Not for general use — an
        intent forgotten while its host still serves it would leak.
        """
        self._unbind(intent_id)

    # -- queries -------------------------------------------------------------

    def request_for(self, intent: PerformanceTarget,
                    avoid_hosts: FrozenSet[str] = frozenset(),
                    ) -> PlacementRequest:
        """Canonicalize *intent* for policy consumption: attach keys from
        the fleet's reference vocabulary plus the tenant's current hosts
        (and the faulted-domain avoid-set, when the caller threads it)."""
        return PlacementRequest(
            intent=intent,
            src_key=self.fleet.canonical_device_key(intent.src),
            dst_key=(self.fleet.canonical_device_key(intent.dst)
                     if intent.dst is not None else None),
            tenant_hosts=frozenset(self.tenant_hosts(intent.tenant_id)),
            avoid_hosts=avoid_hosts,
        )

    def host_of(self, intent_id: str) -> str:
        """Which host carries *intent_id*."""
        try:
            return self._host_of[intent_id]
        except KeyError:
            raise AdmissionError(intent_id, "not placed in fleet") from None

    def has_intent(self, intent_id: str) -> bool:
        """Whether *intent_id* is currently placed somewhere."""
        return intent_id in self._host_of

    def original_intent(self, intent_id: str) -> PerformanceTarget:
        """The intent as submitted (reference-topology device ids)."""
        try:
            return self._original_intent[intent_id]
        except KeyError:
            raise AdmissionError(intent_id, "not placed in fleet") from None

    def tenant_hosts(self, tenant_id: str) -> Set[str]:
        """Hosts currently carrying intents of *tenant_id*."""
        return set(self._tenant_hosts.get(tenant_id, ()))

    def bindings(self) -> Dict[str, str]:
        """intent_id -> host_id for every fleet placement (a copy).

        The invariant oracle's ground truth for binding soundness.
        """
        return dict(self._host_of)

    def placements(self) -> List[FleetPlacement]:
        """Every fleet placement, in deterministic intent-id order."""
        return [
            FleetPlacement(host_id, placement)
            for _intent_id, host_id, placement
            in self.fleet.collect_placements(self._host_of)
        ]

    def placements_on(self, host_id: str) -> List[FleetPlacement]:
        """Fleet placements on one host, in intent-id order."""
        return [p for p in self.placements() if p.host_id == host_id]

    @property
    def rejection_rate(self) -> float:
        """Fleet-wide rejected / (admitted + rejected)."""
        decided = self.admitted_count + self.rejected_count
        return self.rejected_count / decided if decided else 0.0

    def describe(self) -> str:
        """Human-readable scheduler summary."""
        per_host: Dict[str, int] = {}
        for host_id in self._host_of.values():
            per_host[host_id] = per_host.get(host_id, 0) + 1
        lines = [
            f"ClusterScheduler(policy={self.policy.name}): "
            f"{self.admitted_count} admitted, {self.rejected_count} rejected "
            f"({self.rejection_rate:.1%}), {self.released_count} released"
        ]
        for host_id in self.fleet.host_ids():
            lines.append(f"  {host_id}: {per_host.get(host_id, 0)} intents")
        return "\n".join(lines)
