"""Fleet-wide telemetry rollup: push-invalidated per-host headroom.

The cluster scheduler cannot afford to walk every link of every host on
every placement decision, and it does not need to: admission is decided by
the per-host reservation ledgers, which change only on submit/release.
:class:`FleetTelemetry` aggregates each host's ground truth — ledger
reservations against the admission budget, live ``link_utilizations()``,
link health, and the monitor's latest verdict — into one compact
:class:`HostHeadroom` summary per host.

Freshness is push-driven, not time-driven: at :meth:`~FleetTelemetry.attach`
the rollup subscribes to the three signals that can change a summary —
the host manager's reservation changes
(:meth:`~repro.core.manager.HostNetworkManager.on_change`), the fabric's
rate re-solves (:meth:`~repro.sim.network.FabricNetwork.on_recompute`),
and the monitor's health verdicts — and marks the host *dirty*.
:meth:`~FleetTelemetry.headroom` recomputes lazily on the next read, so a
summary an external caller sees is always current; callers never choose
when to refresh (the old ``refresh()``/``max_age`` surface is deprecated).

For vectorized placement ranking the same summaries are exposed as a
:class:`HeadroomMatrix` — per-host columns of the placement-relevant
scalars in deterministic host-id order, mirroring how ``repro.sim.arrays``
vectorized water-filling.  Inter-host wire links are excluded from the
rollup itself (only their health is counted), so the scalar and matrix
views agree by construction.

This is the fleet-scale analogue of the paper's "fine-grained monitoring"
feeding the "holistic resource manager": per-host signals roll up into the
vectors a datacenter-level placement policy actually consumes.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import UnknownHostError
from ..host import Host
from ..sim.network import FORWARD, REVERSE
from ..topology.elements import DeviceType, LinkClass
from ..topology.graph import HostTopology


def canonical_device_keys(topology: HostTopology) -> Dict[str, str]:
    """Map device ids to fleet-portable ``"<type>:<index>"`` keys.

    The same (type, sorted per-type index) scheme intent remapping uses,
    so the n-th NIC of every host shares one key no matter what each
    host's topology calls it — which is what lets a policy compare one
    intent's attach links across a heterogeneous fleet.

    Memoized per topology instance, guarded by device count (devices are
    only ever added): telemetry, intent remapping, and every armed
    latency probe ask for the same map.
    """
    count = len(topology.devices())
    cached = getattr(topology, "_canonical_device_keys", None)
    if cached is not None and cached[0] == count:
        return cached[1]
    keys: Dict[str, str] = {}
    for dtype in DeviceType:
        for i, device_id in enumerate(
            sorted(d.device_id for d in topology.devices(dtype))
        ):
            keys[device_id] = f"{dtype.value}:{i}"
    topology._canonical_device_keys = (count, keys)
    return keys


@dataclass(frozen=True)
class HostHeadroom:
    """One host's placement-relevant state, summarized.

    All bandwidth figures are *admission* headroom — budget
    (``capacity * admission_headroom``) minus ledger reservations — not
    instantaneous flow rates: placement is a promise about reservations,
    and work-conserving traffic above the floors is free to burst.

    Attributes:
        host_id: The summarized host.
        updated_at: Host-clock time the summary was computed at.
        free_fraction_min: Worst directed link's free budget as a fraction
            of its capacity (can be negative under overcommit).
        free_fraction_mean: Mean free budget fraction over directed links.
        free_capacity_total: Sum of positive free budget over all directed
            links (bytes/s) — the coarse "how much fits here still".
        free_capacity_max_directed: Largest single directed link's free
            budget (bytes/s).  A pipe of bandwidth B cannot fit unless at
            least one link has B free, so this is the coarse viability
            test.
        free_capacity_min_directed: Smallest directed link's free budget
            (bytes/s, negative under overcommit).  When this is still ≥ B
            the host can take a B pipe on *any* path — no shared fabric
            link (UPI, memory bus) is anywhere near full — so it is the
            "probing this host will not be wasted" signal.
        attach_free: Free budget on each endpoint device's attach link
            (its most-constrained direction; the best link when a device
            has several), keyed by the canonical ``"<type>:<index>"``
            device key.  The attach link is where
            intra-host pipes actually bind — a 32 GB/s PCIe lane fills
            long before the memory bus behind it — so this is the signal
            that separates "this host is busy" from "this host cannot take
            *this* pipe".
        reserved_peak: Highest directed reserved/capacity fraction — the
            rebalancer's hot-spot metric.
        utilization_peak: Highest instantaneous link utilization (live
            flows, not reservations).
        placements: Number of admitted intents on the host.
        down_links: Links currently down.
        degraded_links: Links up but running below nominal capacity.
        healthy: The monitor's latest verdict (``True`` when unmonitored).
    """

    host_id: str
    updated_at: float
    free_fraction_min: float
    free_fraction_mean: float
    free_capacity_total: float
    free_capacity_max_directed: float
    free_capacity_min_directed: float
    reserved_peak: float
    utilization_peak: float
    placements: int
    down_links: int
    degraded_links: int
    healthy: bool
    attach_free: Mapping[str, float] = field(default_factory=dict)

    @property
    def available(self) -> bool:
        """Whether the host is a sane placement target at all."""
        return self.healthy and self.down_links == 0

    def can_fit(self, bandwidth: float,
                src_key: Optional[str] = None,
                dst_key: Optional[str] = None) -> bool:
        """Necessary (not sufficient) condition for a *bandwidth* pipe.

        With canonical endpoint keys the check is per attach link — the
        pipe's actual first/last hop must have the budget free; without
        them it falls back to the coarse any-link test.
        """
        if self.free_capacity_max_directed < bandwidth:
            return False
        for key in (src_key, dst_key):
            if key is None:
                continue
            free = self.attach_free.get(key)
            if free is not None and free < bandwidth:
                return False
        return True

    def has_path_slack(self, bandwidth: float) -> bool:
        """Sufficient condition: every directed link — so any path — has
        *bandwidth* free.  Probing a host that passes this cannot fail on
        a shared fabric link."""
        return self.free_capacity_min_directed >= bandwidth


class HeadroomMatrix:
    """Per-host headroom summaries as numpy columns.

    Rows are hosts in the order the summaries were given (the fleet's
    deterministic sorted-host-id order), so a stable sort over these
    columns reproduces the scalar policies' host-id tiebreak for free.
    Built from the same :class:`HostHeadroom` rollups the scalar path
    reads — in particular, inter-host wire links were already excluded
    when those were computed, so the two views cannot disagree.

    Attributes:
        headrooms: The source summaries (for scalar fallback paths).
        host_ids: Row order.
        free_capacity_total / free_capacity_max_directed /
        free_capacity_min_directed / reserved_peak: Float columns.
        available: Boolean column (monitor verdict and link health).
    """

    def __init__(self, headrooms: Sequence[HostHeadroom]) -> None:
        self.headrooms = list(headrooms)
        self.host_ids = [h.host_id for h in self.headrooms]
        n = len(self.headrooms)
        self.free_capacity_total = np.fromiter(
            (h.free_capacity_total for h in self.headrooms), float, n)
        self.free_capacity_max_directed = np.fromiter(
            (h.free_capacity_max_directed for h in self.headrooms), float, n)
        self.free_capacity_min_directed = np.fromiter(
            (h.free_capacity_min_directed for h in self.headrooms), float, n)
        self.reserved_peak = np.fromiter(
            (h.reserved_peak for h in self.headrooms), float, n)
        self.available = np.fromiter(
            (h.available for h in self.headrooms), bool, n)
        self._attach: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.headrooms)

    def attach_free(self, key: Optional[str]) -> np.ndarray:
        """Per-host free budget on attach link *key*.

        Hosts without the key get ``+inf`` — exactly the scalar
        :meth:`HostHeadroom.can_fit` behavior, where a missing attach key
        never disqualifies a host.  ``None`` (no canonical key) yields an
        all-``inf`` column for the same reason.
        """
        if key is None:
            return np.full(len(self.headrooms), math.inf)
        col = self._attach.get(key)
        if col is None:
            col = np.fromiter(
                (h.attach_free.get(key, math.inf) for h in self.headrooms),
                float, len(self.headrooms))
            self._attach[key] = col
        return col

    def fits(self, bandwidth: float, src_key: Optional[str] = None,
             dst_key: Optional[str] = None) -> np.ndarray:
        """Boolean column: :meth:`HostHeadroom.can_fit` per host."""
        ok = self.free_capacity_max_directed >= bandwidth
        if src_key is not None:
            ok = ok & (self.attach_free(src_key) >= bandwidth)
        if dst_key is not None:
            ok = ok & (self.attach_free(dst_key) >= bandwidth)
        return ok

    def has_path_slack(self, bandwidth: float) -> np.ndarray:
        """Boolean column: :meth:`HostHeadroom.has_path_slack` per host."""
        return self.free_capacity_min_directed >= bandwidth

    def avoid(self, hosts) -> np.ndarray:
        """Boolean column: host is in the *hosts* avoid-set.

        Empty set fast-path returns an all-``False`` column, so the
        common no-faults case costs one allocation, no membership tests.
        """
        if not hosts:
            return np.zeros(len(self.headrooms), dtype=bool)
        return np.fromiter(
            (host_id in hosts for host_id in self.host_ids),
            bool, len(self.headrooms))


class FleetTelemetry:
    """Push-invalidated per-host :class:`HostHeadroom` rollups.

    Args:
        max_age: Deprecated and ignored.  Summaries are invalidated by
            the events that change them (reservation changes, fabric
            re-solves, monitor verdicts) and recomputed lazily on read.
    """

    def __init__(self, max_age: Optional[float] = None) -> None:
        if max_age is not None:
            warnings.warn(
                "FleetTelemetry(max_age=...) is deprecated and ignored: "
                "summaries are push-invalidated and always current",
                DeprecationWarning, stacklevel=2,
            )
        self.max_age = max_age
        self._hosts: Dict[str, Host] = {}
        self._cache: Dict[str, HostHeadroom] = {}
        self._dirty: Dict[str, bool] = {}
        self._monitor_healthy: Dict[str, bool] = {}
        # Hosts marked faulted by the fleet fault model (crashed or
        # degraded): reported unhealthy regardless of monitor verdict.
        self._faulted: set = set()
        self._device_keys: Dict[str, Dict[str, str]] = {}
        # host_id -> [(canonical endpoint key, [incident link ids])].
        # Topology *structure* is fixed for a host's lifetime (only link
        # state mutates), so the endpoint incidence never needs the graph
        # walk after attach.
        self._endpoint_links: Dict[str, List[tuple]] = {}
        # host_id -> [(link, link_id, capacity)] for placement-fabric
        # (intra-host, capacity > 0) links, and the full link list for
        # health counts — both fixed at attach for the same reason.
        self._intra_links: Dict[str, List[tuple]] = {}
        self._all_links: Dict[str, list] = {}
        self.refresh_count = 0
        # Bumps on every recompute; the matrix cache key.
        self._version = 0
        self._matrix: Optional[HeadroomMatrix] = None
        self._matrix_version = -1

    # -- membership ----------------------------------------------------------

    def attach(self, host_id: str, host: Host) -> None:
        """Start rolling up *host* under *host_id*.

        Subscribes to every signal that can change the host's summary, so
        reads never need to guess at staleness.
        """
        self._hosts[host_id] = host
        self._dirty[host_id] = True
        self._monitor_healthy[host_id] = True
        device_keys = canonical_device_keys(host.topology)
        self._device_keys[host_id] = device_keys
        self._endpoint_links[host_id] = [
            (device_keys[device.device_id],
             [link.link_id
              for link in host.topology.incident_links(device.device_id)])
            for device in host.topology.endpoints()
        ]
        self._all_links[host_id] = list(host.topology.links())
        self._intra_links[host_id] = [
            (link, link.link_id, link.capacity)
            for link in self._all_links[host_id]
            if link.link_class is not LinkClass.INTER_HOST
            and link.capacity > 0
        ]
        host.manager.on_change(
            lambda hid=host_id: self._mark_dirty(hid))
        host.network.on_recompute(
            lambda hid=host_id: self._mark_dirty(hid))
        if host.monitor is not None:
            host.monitor.on_report(
                lambda report, hid=host_id: self._on_report(hid, report)
            )

    def detach(self, host_id: str) -> None:
        """Stop tracking *host_id* (subscriptions become no-ops)."""
        self._hosts.pop(host_id, None)
        self._cache.pop(host_id, None)
        self._dirty.pop(host_id, None)
        self._monitor_healthy.pop(host_id, None)
        self._faulted.discard(host_id)
        self._device_keys.pop(host_id, None)
        self._endpoint_links.pop(host_id, None)
        self._intra_links.pop(host_id, None)
        self._all_links.pop(host_id, None)
        self._version += 1

    def host_ids(self) -> List[str]:
        """Tracked host ids, sorted (the fleet's deterministic order)."""
        return sorted(self._hosts)

    def _mark_dirty(self, host_id: str) -> None:
        if host_id in self._hosts:
            self._dirty[host_id] = True

    def _on_report(self, host_id: str, report) -> None:
        self._monitor_healthy[host_id] = report.healthy
        # A verdict must reach the next placement decision immediately.
        self._mark_dirty(host_id)

    def set_fault(self, host_id: str, faulted: bool) -> None:
        """Mark *host_id* faulted (or clear the mark).

        The fleet fault model's signal into placement: a faulted host
        reports ``healthy=False`` — and hence ``available=False`` —
        until the mark is cleared, regardless of what its own monitor
        says.  Crashed hosts cannot run a monitor at all, and a degraded
        host's monitor may lag the fault; this mark is immediate.
        """
        if host_id not in self._hosts:
            raise UnknownHostError(host_id)
        if faulted:
            self._faulted.add(host_id)
        else:
            self._faulted.discard(host_id)
        self._mark_dirty(host_id)

    def is_faulted(self, host_id: str) -> bool:
        """Whether the fault model currently marks *host_id* faulted."""
        return host_id in self._faulted

    # -- the rollup ----------------------------------------------------------

    def headroom(self, host_id: str) -> HostHeadroom:
        """The current headroom summary of one host.

        Always current: recomputed lazily when any subscribed signal has
        marked the host dirty since the cached summary was built.
        """
        try:
            host = self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None
        # A deferred (coalesced) re-solve would fire our recompute
        # listener only when flushed; flush first so the dirty bit is
        # accurate before we trust the cache.
        host.network.flush_recompute()
        cached = self._cache.get(host_id)
        if cached is not None and not self._dirty.get(host_id, True):
            return cached
        return self._refresh(host_id)

    def headrooms(self) -> List[HostHeadroom]:
        """Summaries for every host, in deterministic host-id order."""
        return [self.headroom(host_id) for host_id in self.host_ids()]

    def matrix(self) -> HeadroomMatrix:
        """Every host's summary as one :class:`HeadroomMatrix` (cached
        until any summary changes)."""
        summaries = self.headrooms()
        if self._matrix is None or self._matrix_version != self._version:
            self._matrix = HeadroomMatrix(summaries)
            self._matrix_version = self._version
        return self._matrix

    def invalidate(self, host_id: Optional[str] = None) -> None:
        """Mark one host (or all) dirty, forcing recompute on next read.

        Subscriptions make explicit invalidation unnecessary for managed
        hosts; this remains for custom callers mutating host state behind
        the manager's back.
        """
        if host_id is None:
            for hid in self._hosts:
                self._dirty[hid] = True
        else:
            self._mark_dirty(host_id)

    def refresh(self, host_id: str) -> HostHeadroom:
        """Deprecated: summaries refresh themselves; read
        :meth:`headroom` instead."""
        warnings.warn(
            "FleetTelemetry.refresh() is deprecated: summaries are "
            "push-invalidated; call headroom() (always current)",
            DeprecationWarning, stacklevel=2,
        )
        return self._refresh(host_id)

    def _refresh(self, host_id: str) -> HostHeadroom:
        """Recompute and cache one host's summary from ground truth."""
        try:
            host = self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None
        manager = host.manager
        reserved_map = manager.ledger.reserved_map
        budget_fraction = manager.admission.headroom

        # Health counts walk every link (the INTER_HOST wire to the
        # outside world is not placement fabric, but its health matters).
        down = 0
        degraded = 0
        for link in self._all_links[host_id]:
            if not link.up:
                down += 1
            elif link.effective_capacity < link.capacity:
                degraded += 1

        # The rollup proper walks only the intra-host placement fabric.
        # This is the hottest loop in fleet scheduling (one pass per
        # dirty host per placement decision), hence the raw-comparison
        # style over min()/max() calls and per-direction method calls.
        n_fracs = 0
        sum_fracs = 0.0
        min_frac = float("inf")
        free_total = 0.0
        free_max = 0.0
        free_min = float("inf")
        reserved_peak = 0.0
        link_free: Dict[str, float] = {}  # tightest direction per up link
        for link, link_id, capacity in self._intra_links[host_id]:
            if not link.up:
                continue
            budget = capacity * budget_fraction
            r_fwd = reserved_map.get((link_id, FORWARD), 0.0)
            r_rev = reserved_map.get((link_id, REVERSE), 0.0)
            free_fwd = budget - r_fwd
            free_rev = budget - r_rev
            if free_rev < free_fwd:
                lo, hi = free_rev, free_fwd
            else:
                lo, hi = free_fwd, free_rev
            n_fracs += 2
            sum_fracs += (free_fwd + free_rev) / capacity
            frac_lo = lo / capacity
            if frac_lo < min_frac:
                min_frac = frac_lo
            if free_fwd > 0.0:
                free_total += free_fwd
            if free_rev > 0.0:
                free_total += free_rev
            if hi > free_max:
                free_max = hi
            if lo < free_min:
                free_min = lo
            peak = (r_fwd if r_fwd > r_rev else r_rev) / capacity
            if peak > reserved_peak:
                reserved_peak = peak
            link_free[link_id] = lo

        attach_free: Dict[str, float] = {}
        for key, link_ids in self._endpoint_links[host_id]:
            frees = [
                link_free[link_id]
                for link_id in link_ids
                if link_id in link_free
            ]
            if frees:  # devices with no intra-host attach stay unkeyed
                attach_free[key] = max(frees)

        if host.network.active_flows():
            utilizations = host.network.link_utilizations()
            utilization_peak = max(utilizations.values(), default=0.0)
        else:
            utilization_peak = 0.0  # no flows: nothing to walk
        summary = HostHeadroom(
            host_id=host_id,
            updated_at=host.now,
            free_fraction_min=min_frac if n_fracs else 0.0,
            free_fraction_mean=sum_fracs / n_fracs if n_fracs else 0.0,
            free_capacity_total=free_total,
            free_capacity_max_directed=free_max,
            free_capacity_min_directed=free_min if n_fracs else 0.0,
            reserved_peak=reserved_peak,
            utilization_peak=utilization_peak,
            placements=len(manager.placements()),
            down_links=down,
            degraded_links=degraded,
            healthy=(self._monitor_healthy.get(host_id, True)
                     and host_id not in self._faulted),
            attach_free=attach_free,
        )
        self._cache[host_id] = summary
        self._dirty[host_id] = False
        self.refresh_count += 1
        self._version += 1
        return summary

    def describe(self) -> str:
        """Human-readable one-line-per-host rollup."""
        lines = [f"FleetTelemetry: {len(self._hosts)} hosts, "
                 f"{self.refresh_count} refreshes"]
        lines.extend(_headroom_lines(self.headrooms()))
        return "\n".join(lines)


def _headroom_lines(summaries: Sequence[HostHeadroom]) -> List[str]:
    """The per-host describe() lines both telemetry frontends share."""
    lines = []
    for summary in summaries:
        flags = []
        if summary.down_links:
            flags.append(f"{summary.down_links} links down")
        if summary.degraded_links:
            flags.append(f"{summary.degraded_links} degraded")
        if not summary.healthy:
            flags.append("UNHEALTHY")
        lines.append(
            f"  {summary.host_id}: {summary.placements} placements, "
            f"free(min/mean)={summary.free_fraction_min:.2f}/"
            f"{summary.free_fraction_mean:.2f}, "
            f"peak reserved={summary.reserved_peak:.2f}"
            + (f" [{', '.join(flags)}]" if flags else "")
        )
    return lines


class ParallelFleetTelemetry:
    """The telemetry frontend of a process-parallel fleet.

    Same read surface as :class:`FleetTelemetry` — ``headroom`` /
    ``headrooms`` / ``matrix`` / ``set_fault`` / ``invalidate`` — but the
    rollups are computed where the ground truth lives: each worker runs a
    real :class:`FleetTelemetry` over its shard, and this frontend caches
    the :class:`HostHeadroom` summaries parent-side, refetching only
    hosts marked stale.

    Staleness mirrors the serial push-invalidation exactly: every worker
    reply piggybacks the hosts whose managers or fabrics changed during
    the op (the same ``on_change``/``on_recompute`` signals the serial
    rollup subscribes to), and the fleet's mutation sites call
    :meth:`invalidate` explicitly just as they do serially.  A read
    therefore sees summaries byte-equal to what the serial rollup would
    compute at the same point — which is what keeps parallel placement
    ranking bit-identical to serial.

    Args:
        backend: The fleet's :class:`~repro.fleet.parallel
            .ParallelBackend` (duck-typed: needs ``worker_of``,
            ``workers``, ``call``/``scatter``, and ``take_dirty``).
    """

    def __init__(self, backend) -> None:
        self._backend = backend
        self._host_ids: List[str] = sorted(backend.worker_of)
        self._cache: Dict[str, HostHeadroom] = {}
        self._dirty: set = set(self._host_ids)
        self._faulted: set = set()
        #: Summaries fetched from workers (the serial counter's analogue).
        self.refresh_count = 0
        self._version = 0
        self._matrix: Optional[HeadroomMatrix] = None
        self._matrix_version = -1

    def host_ids(self) -> List[str]:
        """Tracked host ids, sorted (the fleet's deterministic order)."""
        return list(self._host_ids)

    def _known(self, host_id: str) -> None:
        if host_id not in self._backend.worker_of:
            raise UnknownHostError(host_id)

    def _pull(self) -> None:
        """Absorb the dirty-host deltas accumulated on worker replies."""
        self._dirty |= self._backend.take_dirty()

    def _fetch(self, host_ids: Sequence[str]) -> None:
        """Refetch summaries for *host_ids*, one scatter round-trip.

        All owning workers compute their shard's summaries concurrently
        (the payloads go out before any reply is awaited), instead of
        the old one-blocking-round-trip-per-worker loop.
        """
        per_worker: Dict[int, List[str]] = {}
        for host_id in host_ids:
            widx = self._backend.worker_of[host_id]
            per_worker.setdefault(widx, []).append(host_id)
        results = self._backend.scatter(
            "headrooms",
            {widx: {"host_ids": shard_ids}
             for widx, shard_ids in per_worker.items()})
        for widx in sorted(per_worker):
            fresh = results[widx]
            self._cache.update(fresh)
            self.refresh_count += len(fresh)
        self._dirty.difference_update(host_ids)
        self._version += 1

    # -- the FleetTelemetry read surface -------------------------------------

    def headroom(self, host_id: str) -> HostHeadroom:
        """The current headroom summary of one host (always current)."""
        self._known(host_id)
        self._pull()
        if host_id in self._dirty or host_id not in self._cache:
            self._fetch([host_id])
        return self._cache[host_id]

    def headrooms(self) -> List[HostHeadroom]:
        """Summaries for every host, in deterministic host-id order."""
        self._pull()
        stale = [host_id for host_id in self._host_ids
                 if host_id in self._dirty or host_id not in self._cache]
        if stale:
            self._fetch(stale)
        return [self._cache[host_id] for host_id in self._host_ids]

    def matrix(self) -> HeadroomMatrix:
        """Every host's summary as one :class:`HeadroomMatrix` (cached
        until any summary changes)."""
        summaries = self.headrooms()
        if self._matrix is None or self._matrix_version != self._version:
            self._matrix = HeadroomMatrix(summaries)
            self._matrix_version = self._version
        return self._matrix

    def invalidate(self, host_id: Optional[str] = None) -> None:
        """Mark one host (or all) stale, forcing a refetch on next read."""
        if host_id is None:
            self._dirty.update(self._host_ids)
        elif host_id in self._backend.worker_of:
            self._dirty.add(host_id)

    def set_fault(self, host_id: str, faulted: bool) -> None:
        """Mark *host_id* faulted (or clear the mark) — forwarded to the
        owning worker's rollup, mirrored here for :meth:`is_faulted`."""
        self._known(host_id)
        if faulted:
            self._faulted.add(host_id)
        else:
            self._faulted.discard(host_id)
        self._backend.call(host_id, "set_fault",
                           {"host_id": host_id, "faulted": faulted})
        self._dirty.add(host_id)

    def is_faulted(self, host_id: str) -> bool:
        """Whether the fault model currently marks *host_id* faulted."""
        return host_id in self._faulted

    def describe(self) -> str:
        """Human-readable one-line-per-host rollup."""
        lines = [f"FleetTelemetry: {len(self._host_ids)} hosts across "
                 f"{self._backend.workers} workers, "
                 f"{self.refresh_count} summaries fetched"]
        lines.extend(_headroom_lines(self.headrooms()))
        return "\n".join(lines)
