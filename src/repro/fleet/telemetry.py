"""Fleet-wide telemetry rollup: cached per-host headroom vectors.

The cluster scheduler cannot afford to walk every link of every host on
every placement decision, and it does not need to: admission is decided by
the per-host reservation ledgers, which change only on submit/release.
:class:`FleetTelemetry` aggregates each host's ground truth — ledger
reservations against the admission budget, live ``link_utilizations()``,
link health, and the monitor's latest verdict — into one compact
:class:`HostHeadroom` summary per host, cached against the host's own
simulated clock and recomputed only when stale or explicitly invalidated
(the scheduler invalidates a host after placing on or releasing from it).

This is the fleet-scale analogue of the paper's "fine-grained monitoring"
feeding the "holistic resource manager": per-host signals roll up into the
vectors a datacenter-level placement policy actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import UnknownHostError
from ..host import Host
from ..sim.network import FORWARD, REVERSE
from ..topology.elements import DeviceType, LinkClass
from ..topology.graph import HostTopology


def canonical_device_keys(topology: HostTopology) -> Dict[str, str]:
    """Map device ids to fleet-portable ``"<type>:<index>"`` keys.

    The same (type, sorted per-type index) scheme intent remapping uses,
    so the n-th NIC of every host shares one key no matter what each
    host's topology calls it — which is what lets a policy compare one
    intent's attach links across a heterogeneous fleet.
    """
    keys: Dict[str, str] = {}
    for dtype in DeviceType:
        for i, device_id in enumerate(
            sorted(d.device_id for d in topology.devices(dtype))
        ):
            keys[device_id] = f"{dtype.value}:{i}"
    return keys


@dataclass(frozen=True)
class HostHeadroom:
    """One host's placement-relevant state, summarized.

    All bandwidth figures are *admission* headroom — budget
    (``capacity * admission_headroom``) minus ledger reservations — not
    instantaneous flow rates: placement is a promise about reservations,
    and work-conserving traffic above the floors is free to burst.

    Attributes:
        host_id: The summarized host.
        updated_at: Host-clock time the summary was computed at.
        free_fraction_min: Worst directed link's free budget as a fraction
            of its capacity (can be negative under overcommit).
        free_fraction_mean: Mean free budget fraction over directed links.
        free_capacity_total: Sum of positive free budget over all directed
            links (bytes/s) — the coarse "how much fits here still".
        free_capacity_max_directed: Largest single directed link's free
            budget (bytes/s).  A pipe of bandwidth B cannot fit unless at
            least one link has B free, so this is the coarse viability
            test.
        free_capacity_min_directed: Smallest directed link's free budget
            (bytes/s, negative under overcommit).  When this is still ≥ B
            the host can take a B pipe on *any* path — no shared fabric
            link (UPI, memory bus) is anywhere near full — so it is the
            "probing this host will not be wasted" signal.
        attach_free: Free budget on each endpoint device's attach link
            (its most-constrained direction; the best link when a device
            has several), keyed by the canonical ``"<type>:<index>"``
            device key.  The attach link is where
            intra-host pipes actually bind — a 32 GB/s PCIe lane fills
            long before the memory bus behind it — so this is the signal
            that separates "this host is busy" from "this host cannot take
            *this* pipe".
        reserved_peak: Highest directed reserved/capacity fraction — the
            rebalancer's hot-spot metric.
        utilization_peak: Highest instantaneous link utilization (live
            flows, not reservations).
        placements: Number of admitted intents on the host.
        down_links: Links currently down.
        degraded_links: Links up but running below nominal capacity.
        healthy: The monitor's latest verdict (``True`` when unmonitored).
    """

    host_id: str
    updated_at: float
    free_fraction_min: float
    free_fraction_mean: float
    free_capacity_total: float
    free_capacity_max_directed: float
    free_capacity_min_directed: float
    reserved_peak: float
    utilization_peak: float
    placements: int
    down_links: int
    degraded_links: int
    healthy: bool
    attach_free: Mapping[str, float] = field(default_factory=dict)

    @property
    def available(self) -> bool:
        """Whether the host is a sane placement target at all."""
        return self.healthy and self.down_links == 0

    def can_fit(self, bandwidth: float,
                src_key: Optional[str] = None,
                dst_key: Optional[str] = None) -> bool:
        """Necessary (not sufficient) condition for a *bandwidth* pipe.

        With canonical endpoint keys the check is per attach link — the
        pipe's actual first/last hop must have the budget free; without
        them it falls back to the coarse any-link test.
        """
        if self.free_capacity_max_directed < bandwidth:
            return False
        for key in (src_key, dst_key):
            if key is None:
                continue
            free = self.attach_free.get(key)
            if free is not None and free < bandwidth:
                return False
        return True

    def has_path_slack(self, bandwidth: float) -> bool:
        """Sufficient condition: every directed link — so any path — has
        *bandwidth* free.  Probing a host that passes this cannot fail on
        a shared fabric link."""
        return self.free_capacity_min_directed >= bandwidth


class FleetTelemetry:
    """Cached per-host :class:`HostHeadroom` rollups.

    Args:
        max_age: How long (simulated seconds, per the *host's* clock) a
            cached summary stays fresh.  ``0`` recomputes on every read.
    """

    def __init__(self, max_age: float = 0.001) -> None:
        self.max_age = max_age
        self._hosts: Dict[str, Host] = {}
        self._cache: Dict[str, HostHeadroom] = {}
        self._monitor_healthy: Dict[str, bool] = {}
        self._device_keys: Dict[str, Dict[str, str]] = {}
        self.refresh_count = 0

    # -- membership ----------------------------------------------------------

    def attach(self, host_id: str, host: Host) -> None:
        """Start rolling up *host* under *host_id*."""
        self._hosts[host_id] = host
        self._monitor_healthy[host_id] = True
        self._device_keys[host_id] = canonical_device_keys(host.topology)
        if host.monitor is not None:
            host.monitor.on_report(
                lambda report, hid=host_id: self._on_report(hid, report)
            )

    def detach(self, host_id: str) -> None:
        """Stop tracking *host_id*."""
        self._hosts.pop(host_id, None)
        self._cache.pop(host_id, None)
        self._monitor_healthy.pop(host_id, None)
        self._device_keys.pop(host_id, None)

    def host_ids(self) -> List[str]:
        """Tracked host ids, sorted (the fleet's deterministic order)."""
        return sorted(self._hosts)

    def _on_report(self, host_id: str, report) -> None:
        self._monitor_healthy[host_id] = report.healthy
        if not report.healthy:
            # An unhealthy verdict must reach the next placement decision
            # immediately, not after the cache ages out.
            self._cache.pop(host_id, None)

    # -- the rollup ----------------------------------------------------------

    def headroom(self, host_id: str) -> HostHeadroom:
        """The (cached) headroom summary of one host."""
        try:
            host = self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None
        cached = self._cache.get(host_id)
        if cached is not None and host.now - cached.updated_at <= self.max_age:
            return cached
        return self.refresh(host_id)

    def headrooms(self) -> List[HostHeadroom]:
        """Summaries for every host, in deterministic host-id order."""
        return [self.headroom(host_id) for host_id in self.host_ids()]

    def invalidate(self, host_id: Optional[str] = None) -> None:
        """Drop the cached summary of one host (or all of them).

        The scheduler calls this after any reservation change it makes, so
        back-to-back placements see each other even within ``max_age``.
        """
        if host_id is None:
            self._cache.clear()
        else:
            self._cache.pop(host_id, None)

    def refresh(self, host_id: str) -> HostHeadroom:
        """Recompute and cache one host's summary from ground truth."""
        try:
            host = self._hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None
        manager = host.manager
        ledger = manager.ledger
        budget_fraction = manager.admission.headroom

        free_fracs: List[float] = []
        free_total = 0.0
        free_max = 0.0
        free_min = float("inf")
        reserved_peak = 0.0
        down = 0
        degraded = 0
        link_free: Dict[str, float] = {}  # tightest direction per up link
        for link in host.topology.links():
            if not link.up:
                down += 1
                continue
            if link.effective_capacity < link.capacity:
                degraded += 1
            if link.link_class is LinkClass.INTER_HOST:
                # The wire to the outside world is not intra-host
                # placement fabric; only its health matters here.
                continue
            capacity = link.capacity
            if capacity <= 0:
                continue
            budget = capacity * budget_fraction
            tight_free = float("inf")
            for direction in (FORWARD, REVERSE):
                reserved = ledger.reserved(link.link_id, direction)
                free = budget - reserved
                free_fracs.append(free / capacity)
                free_total += max(free, 0.0)
                free_max = max(free_max, free)
                free_min = min(free_min, free)
                tight_free = min(tight_free, free)
                reserved_peak = max(reserved_peak, reserved / capacity)
            link_free[link.link_id] = tight_free

        device_keys = self._device_keys[host_id]
        attach_free: Dict[str, float] = {}
        for device in host.topology.endpoints():
            frees = [
                link_free[link.link_id]
                for link in host.topology.incident_links(device.device_id)
                if link.link_id in link_free
            ]
            if frees:  # devices with no intra-host attach stay unkeyed
                attach_free[device_keys[device.device_id]] = max(frees)

        utilizations = host.network.link_utilizations()
        summary = HostHeadroom(
            host_id=host_id,
            updated_at=host.now,
            free_fraction_min=min(free_fracs) if free_fracs else 0.0,
            free_fraction_mean=(sum(free_fracs) / len(free_fracs)
                                if free_fracs else 0.0),
            free_capacity_total=free_total,
            free_capacity_max_directed=free_max,
            free_capacity_min_directed=(free_min if free_fracs else 0.0),
            reserved_peak=reserved_peak,
            utilization_peak=max(utilizations.values(), default=0.0),
            placements=len(manager.placements()),
            down_links=down,
            degraded_links=degraded,
            healthy=self._monitor_healthy.get(host_id, True),
            attach_free=attach_free,
        )
        self._cache[host_id] = summary
        self.refresh_count += 1
        return summary

    def describe(self) -> str:
        """Human-readable one-line-per-host rollup."""
        lines = [f"FleetTelemetry: {len(self._hosts)} hosts, "
                 f"{self.refresh_count} refreshes"]
        for summary in self.headrooms():
            flags = []
            if summary.down_links:
                flags.append(f"{summary.down_links} links down")
            if summary.degraded_links:
                flags.append(f"{summary.degraded_links} degraded")
            if not summary.healthy:
                flags.append("UNHEALTHY")
            lines.append(
                f"  {summary.host_id}: {summary.placements} placements, "
                f"free(min/mean)={summary.free_fraction_min:.2f}/"
                f"{summary.free_fraction_mean:.2f}, "
                f"peak reserved={summary.reserved_peak:.2f}"
                + (f" [{', '.join(flags)}]" if flags else "")
            )
        return "\n".join(lines)
