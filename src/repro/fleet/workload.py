"""Deterministic fleet churn workloads.

One seeded generator shared by the ``python -m repro fleet run`` CLI, the
``bench_fleet_placement`` regression gate, and the determinism tests, so
all three drive byte-identical event sequences for a given config.

The workload is the paper's multi-tenant cloud at fleet scale: tenants
"come and go" as a marked Poisson process of performance intents.  Sizes
are deliberately bimodal — a churning crowd of small pipes plus a heavy
tail of near-link-capacity ones — because that is the regime where
placement policy decides the rejection rate: packers that keep contiguous
per-link headroom admit the big intents that blind placement strands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.intents import PerformanceTarget, pipe
from ..errors import FleetError
from ..sim.rng import make_rng
from ..topology.elements import DeviceType
from ..units import Gbps
from .cluster import Fleet


@dataclass(frozen=True)
class FleetChurnConfig:
    """Knobs for one seeded churn run.

    Attributes:
        seed: Master seed; everything derives from it.
        tenants: Size of the tenant pool intents are drawn from.
        horizon: Simulated seconds of churn.
        arrival_rate: Intent arrivals per simulated second (fleet-wide).
        mean_holding: Mean intent lifetime (exponential).  By default
            sessions outliving the horizon are simply never released,
            which truncation-biases utilization and lifetime stats; see
            ``drain``.
        small_bandwidth: (lo, hi) bytes/s of the churning crowd.
        large_bandwidth: (lo, hi) bytes/s of the heavy tail.
        large_fraction: Probability an arrival is heavy-tail.
        bidirectional_fraction: Probability a pipe guards both directions.
        drain: When ``True``, every session still live at the horizon is
            released exactly at horizon end, so ``released`` equals
            ``admitted`` and end-of-run per-host counts measure policy,
            not truncation.  The arrival/size draws are unchanged — a
            drained run admits and rejects identically to an undrained
            one with the same seed.
    """

    seed: int = 0
    tenants: int = 12
    horizon: float = 0.4
    arrival_rate: float = 4000.0
    mean_holding: float = 0.08
    small_bandwidth: Tuple[float, float] = (Gbps(5), Gbps(40))
    large_bandwidth: Tuple[float, float] = (Gbps(120), Gbps(200))
    large_fraction: float = 0.2
    bidirectional_fraction: float = 0.25
    drain: bool = False


@dataclass
class FleetChurnReport:
    """Outcome of one churn run.

    Attributes:
        config: The driving config.
        submitted / admitted / rejected / released: Intent counters.
        migrations: Committed cross-host moves during the run.
        placements: Final ``(intent_id, host_id)`` pairs, sorted — the
            determinism signature two same-seed runs must agree on.
        per_host: Final intent count per host.
    """

    config: FleetChurnConfig
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    released: int = 0
    migrations: int = 0
    placements: List[Tuple[str, str]] = field(default_factory=list)
    per_host: Dict[str, int] = field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        """Rejected fraction of all placement decisions."""
        return self.rejected / self.submitted if self.submitted else 0.0

    def describe(self) -> str:
        """Human-readable run summary."""
        lines = [
            f"churn: {self.submitted} intents over "
            f"{self.config.horizon:g}s (seed={self.config.seed}): "
            f"{self.admitted} admitted, {self.rejected} rejected "
            f"({self.rejection_rate:.1%}), {self.released} released, "
            f"{self.migrations} migrations"
        ]
        for host_id in sorted(self.per_host):
            lines.append(f"  {host_id}: {self.per_host[host_id]} "
                         f"intents at end")
        return "\n".join(lines)


def generate_events(config: FleetChurnConfig,
                    fleet: Fleet) -> List[Tuple[float, int, str, object]]:
    """The run's full event list: ``(time, seq, kind, payload)`` sorted.

    ``kind`` is ``"arrive"`` (payload: the intent) or ``"depart"``
    (payload: the intent id).  Endpoints are drawn from the fleet's
    *reference* topology — NIC/GPU sources into DIMM sinks, the paper's
    canonical I/O-to-memory pipes — and remapped per host at admission.
    """
    reference = fleet.reference_topology
    sources = sorted(
        d.device_id for t in (DeviceType.NIC, DeviceType.GPU)
        for d in reference.devices(t)
    )
    sinks = sorted(d.device_id for d in reference.devices(DeviceType.DIMM))
    if not sources or not sinks:
        raise FleetError(
            f"reference topology {reference.name!r} lacks NIC/GPU sources "
            f"or DIMM sinks for the churn workload"
        )

    rng = make_rng(config.seed, "fleet-churn")
    events: List[Tuple[float, int, str, object]] = []
    t = 0.0
    seq = 0
    index = 0
    while True:
        t += rng.expovariate(config.arrival_rate)
        if t >= config.horizon:
            break
        if rng.random() < config.large_fraction:
            lo, hi = config.large_bandwidth
        else:
            lo, hi = config.small_bandwidth
        intent = pipe(
            f"i{index:05d}",
            f"t{rng.randrange(config.tenants):02d}",
            src=rng.choice(sources),
            dst=rng.choice(sinks),
            bandwidth=rng.uniform(lo, hi),
            bidirectional=rng.random() < config.bidirectional_fraction,
        )
        events.append((t, seq, "arrive", intent))
        seq += 1
        departure = t + rng.expovariate(1.0 / config.mean_holding)
        if departure < config.horizon:
            events.append((departure, seq, "depart", intent.intent_id))
            seq += 1
        elif config.drain:
            # Clamp to the horizon instead of dropping: the RNG draw
            # above happens either way, so drained and undrained runs
            # stay event-for-event identical until the horizon.
            events.append((config.horizon, seq, "depart",
                           intent.intent_id))
            seq += 1
        index += 1
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def run_churn(fleet: Fleet,
              config: Optional[FleetChurnConfig] = None) -> FleetChurnReport:
    """Drive *fleet* through one seeded churn run.

    The fleet advances to each event time under whatever clock discipline
    it was built with (event-driven by default — same seeded results as
    lockstep, without waking idle hosts); arrivals go through the cluster
    scheduler (rejections are final — no retry — so the rejection rate
    cleanly measures the placement policy), departures release whatever
    is still placed, wherever migration may have moved it.
    """
    config = config or FleetChurnConfig()
    report = FleetChurnReport(config=config)
    for time, _seq, kind, payload in generate_events(config, fleet):
        fleet.advance_to(time)
        if kind == "arrive":
            intent: PerformanceTarget = payload
            report.submitted += 1
            if fleet.try_submit(intent) is not None:
                report.admitted += 1
            else:
                report.rejected += 1
        else:
            intent_id: str = payload
            if fleet.scheduler.has_intent(intent_id):
                fleet.release(intent_id)
                report.released += 1
    fleet.advance_to(config.horizon)
    report.migrations = len(fleet.planner.migrations(ok_only=True))
    report.placements = [
        (p.intent_id, p.host_id) for p in fleet.placements()
    ]
    for _intent_id, host_id in report.placements:
        report.per_host[host_id] = report.per_host.get(host_id, 0) + 1
    return report
