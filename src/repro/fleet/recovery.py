"""Fleet self-healing: evacuate sessions off failing hosts.

The fleet-scale mirror of the per-host
:class:`~repro.resilience.controller.RecoveryController`: where that one
re-places intents *within* a fabric, :class:`FleetRecoveryController`
moves them *between* hosts when a whole host fails.

Two evacuation modes, chosen by what the fault left behind:

* **crash** — the source host is gone, so there is nothing to migrate:
  its fleet placements are released (a dead host's reservations are
  void), unbound from the scheduler, and re-placed fresh on surviving
  hosts via :meth:`~repro.fleet.scheduler.ClusterScheduler.place`.
* **degrade** — the source host is alive but sick: sessions are *live
  migrated* off it through the
  :class:`~repro.fleet.migration.MigrationPlanner` (atomic, rollback on
  failure), so a session never stops being served while it moves.

Either way, evacuation order is highest-value (bandwidth) first — when
headroom is scarce, the big sessions grab it and the leftovers are the
lowest-value ones, which is the graceful-degradation ordering: what
eventually sheds is what was worth least.  Placement candidates exclude
crashed hosts, respect active partitions, and carry the failure-domain
avoid-set, so evacuees land outside the faulted domain whenever any
other domain fits them.

Evacuations that fail (no host admits right now) park in a bounded
retry queue with exponential backoff and a give-up timeout.  Retries
are pumped deterministically by the
:class:`~repro.fleet.faults.FleetFaultInjector` drive loop — no RNG, no
wall clock — so campaigns stay bit-identical across clock disciplines.
A session whose retry budget expires is **shed** (crash case — it has no
host) or left degraded in place (degrade case — it is still served,
just on a sick host).  The planner also hands this controller any
session orphaned by a failed migration rollback (see
``MigrationPlanner.recovery``), closing the never-lose-a-session loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..core.intents import PerformanceTarget
from ..errors import AdmissionError, FleetError, MigrationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Fleet
    from .scheduler import FleetPlacement

#: Floating-point slack when comparing retry due-times.
_RETRY_EPS = 1e-12


@dataclass(frozen=True)
class FleetRecoveryConfig:
    """Knobs for fleet-level evacuation and retry.

    Attributes:
        max_retries: Re-placement attempts per evacuee after the initial
            failure before giving up.
        retry_backoff: First retry delay in simulated seconds.
        backoff_growth: Exponential backoff multiplier per retry.
        retry_timeout: Give-up horizon (seconds after the first failed
            attempt); whichever of retries/timeout trips first ends the
            session's evacuation.
        evacuate_degraded: Whether degrade faults trigger live
            migration off the host (crashes always evacuate).
    """

    max_retries: int = 8
    retry_backoff: float = 0.004
    backoff_growth: float = 2.0
    retry_timeout: float = 0.5
    evacuate_degraded: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FleetError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff <= 0:
            raise FleetError(
                f"retry_backoff must be > 0, got {self.retry_backoff}")
        if self.backoff_growth < 1.0:
            raise FleetError(
                f"backoff_growth must be >= 1, got {self.backoff_growth}")
        if self.retry_timeout <= 0:
            raise FleetError(
                f"retry_timeout must be > 0, got {self.retry_timeout}")

    @classmethod
    def for_horizon(cls, horizon: float,
                    **overrides) -> "FleetRecoveryConfig":
        """Defaults scaled to a workload *horizon* (trace replays span
        seconds to hours; the absolute defaults suit sub-second chaos)."""
        scaled = {
            "retry_backoff": horizon * 0.01,
            "retry_timeout": horizon * 1.25,
        }
        scaled.update(overrides)
        return cls(**scaled)


@dataclass(frozen=True)
class EvacuationRecord:
    """One evacuation decision, for the audit log.

    Attributes:
        kind: ``"evacuate"`` (moved), ``"requeue"`` (parked for retry),
            ``"retry"`` (a retry attempt), ``"shed"`` (gave up, session
            lost), ``"exhaust"`` (gave up, session stays degraded in
            place), ``"cancel"`` (session ended while parked), or
            ``"healed"`` (source recovered before the retry fired).
        time: Fleet time of the decision.
        intent_id: The session.
        src: The host being evacuated.
        dst: Where it landed (``None`` when it did not).
        ok: Whether the session is placed after this decision.
        detail: Human-readable specifics.
    """

    kind: str
    time: float
    intent_id: str
    src: str
    dst: Optional[str]
    ok: bool
    detail: str = ""


@dataclass
class _Pending:
    """One parked evacuee awaiting its next re-placement attempt."""

    intent: PerformanceTarget
    src_host: str
    live: bool  # True: still placed on a degraded host (migrate later)
    attempts: int
    first_failed_at: float
    next_try: float


class FleetRecoveryController:
    """Evacuates sessions off crashed/degraded hosts, with bounded retry.

    Attaching the controller registers it as the migration planner's
    orphan sink (``fleet.planner.recovery``), so a failed migration whose
    rollback also fails requeues the session here instead of losing it.

    Args:
        fleet: The fleet to heal.
        config: Retry/backoff/timeout knobs.
    """

    def __init__(self, fleet: "Fleet",
                 config: Optional[FleetRecoveryConfig] = None) -> None:
        self.fleet = fleet
        self.config = config or FleetRecoveryConfig()
        fleet.planner.recovery = self
        self._heap: List[Tuple[float, int, _Pending]] = []
        self._pending: Dict[str, _Pending] = {}
        self._seq = 0
        self.records: List[EvacuationRecord] = []
        self._shed_listeners: List[
            Callable[[PerformanceTarget], None]] = []
        self.evacuated = 0  # sessions successfully moved off a faulted host
        self.requeued = 0  # sessions that needed at least one retry
        self.retries = 0  # retry attempts performed
        self.retries_exhausted = 0  # sessions whose retry budget expired
        self.shed = 0  # sessions lost after exhausting retries (crash path)
        self.cancelled = 0  # parked sessions whose lifetime ended first
        self.healed_in_place = 0  # degrade ended before the retry fired

    # -- observation ---------------------------------------------------------

    def on_shed(self,
                listener: Callable[[PerformanceTarget], None]) -> None:
        """Call *listener* with each intent the controller gives up on
        (replay uses this to score availability)."""
        self._shed_listeners.append(listener)

    def is_pending(self, intent_id: str) -> bool:
        """Whether *intent_id* is parked awaiting re-placement (not
        placed anywhere right now)."""
        entry = self._pending.get(intent_id)
        return entry is not None and not entry.live

    @property
    def pending_replacements(self) -> int:
        """Parked sessions that currently hold no placement."""
        return sum(1 for e in self._pending.values() if not e.live)

    @property
    def pending_migrations(self) -> int:
        """Parked sessions still placed on a degraded host."""
        return sum(1 for e in self._pending.values() if e.live)

    def next_due(self) -> Optional[float]:
        """Fleet time of the earliest parked retry (``None`` when idle)."""
        while self._heap:
            t, _seq, entry = self._heap[0]
            if self._pending.get(entry.intent.intent_id) is entry:
                return t
            heapq.heappop(self._heap)  # stale: cancelled or superseded
        return None

    # -- evacuation entry points ---------------------------------------------

    def evacuate_host(self, host_id: str, crash: bool = True) -> None:
        """Move every fleet session off *host_id*.

        Crash: release-then-replace (the host is dead).  Degrade: live
        migration (the host still serves).  Highest-value first, so
        scarce surviving headroom goes to the sessions worth most.
        """
        scheduler = self.fleet.scheduler
        victims = sorted(
            scheduler.placements_on(host_id),
            key=lambda p: (-p.placement.intent.bandwidth, p.intent_id),
        )
        if not crash:
            if not self.config.evacuate_degraded:
                return
            for fp in victims:
                self._migrate_off(fp.intent_id, host_id,
                                  attempts=0,
                                  first_failed_at=self.fleet.now)
            return
        evacuees: List[PerformanceTarget] = []
        for fp in victims:
            intent = scheduler.original_intent(fp.intent_id)
            # A pending live-migration entry for this session is
            # superseded: the crash path owns it now.
            self._pending.pop(fp.intent_id, None)
            self.fleet.manager_release(host_id, fp.intent_id)
            scheduler.forget(fp.intent_id)
            evacuees.append(intent)
        self.fleet.notify(host_id)
        self.fleet.telemetry.invalidate(host_id)
        for intent in evacuees:
            self._replace(intent, host_id, attempts=0,
                          first_failed_at=self.fleet.now)

    def requeue(self, intent: PerformanceTarget, src_host: str,
                reason: str = "") -> None:
        """Park a session that lost its placement outside the fault path
        (the migration planner's orphan hand-off)."""
        self._park(intent, src_host, live=False, attempts=0,
                   first_failed_at=self.fleet.now, reason=reason)

    def cancel(self, intent_id: str) -> bool:
        """Drop a parked re-placement because the session's lifetime
        ended (its departure/completion came due while it waited).

        Returns whether anything was cancelled.  Live entries are not
        cancellable here — a live session still placed is released
        through the normal fleet path.
        """
        entry = self._pending.get(intent_id)
        if entry is None or entry.live:
            return False
        del self._pending[intent_id]
        self.cancelled += 1
        self._record("cancel", intent_id, entry.src_host, None, ok=False,
                     detail="session ended while awaiting re-placement")
        return True

    # -- the retry pump ------------------------------------------------------

    def process(self, now: float) -> int:
        """Run every parked retry due by *now*; returns attempts made.

        Called by the fault injector's drive loop at each interleave
        point — deterministic because due-times are pure backoff
        arithmetic and the queue orders by (time, sequence).
        """
        attempted = 0
        while self._heap and self._heap[0][0] <= now + _RETRY_EPS:
            _t, _seq, entry = heapq.heappop(self._heap)
            intent_id = entry.intent.intent_id
            if self._pending.get(intent_id) is not entry:
                continue  # cancelled or superseded while parked
            del self._pending[intent_id]
            self.retries += 1
            attempted += 1
            if entry.live:
                self._retry_live(entry)
            else:
                self._replace(entry.intent, entry.src_host,
                              attempts=entry.attempts,
                              first_failed_at=entry.first_failed_at)
        return attempted

    # -- placement attempts --------------------------------------------------

    def _replace(self, intent: PerformanceTarget, src_host: str,
                 attempts: int,
                 first_failed_at: float) -> Optional["FleetPlacement"]:
        """One re-placement attempt for a session with no host."""
        placed = self.fleet.scheduler.place(
            intent,
            avoid=self.fleet.health.avoid_hosts(),
            exclude=frozenset((src_host,)),
            reachable_from=src_host,
        )
        if placed is not None:
            self.evacuated += 1
            self._record("evacuate" if attempts == 0 else "retry",
                         intent.intent_id, src_host, placed.host_id,
                         ok=True)
            return placed
        self._park(intent, src_host, live=False, attempts=attempts,
                   first_failed_at=first_failed_at)
        return None

    def _migrate_off(self, intent_id: str, src_host: str, attempts: int,
                     first_failed_at: float) -> Optional["FleetPlacement"]:
        """One live-migration attempt off a degraded host."""
        scheduler = self.fleet.scheduler
        health = self.fleet.health
        intent = scheduler.original_intent(intent_id)
        candidates = [
            h for h in scheduler.policy.rank_matrix(
                scheduler.request_for(
                    intent, avoid_hosts=health.avoid_hosts()),
                self.fleet.telemetry.matrix(),
            )
            if h != src_host and not health.is_crashed(h)
            and health.reachable(src_host, h)
        ]
        if scheduler.max_attempts is not None:
            candidates = candidates[:scheduler.max_attempts]
        for dst in candidates:
            try:
                placed = self.fleet.planner.migrate(intent_id, dst,
                                                    kind="evacuate")
            except (MigrationError, AdmissionError):
                continue
            self.evacuated += 1
            self._record("evacuate" if attempts == 0 else "retry",
                         intent_id, src_host, dst, ok=True)
            return placed
        self._park(intent, src_host, live=True, attempts=attempts,
                   first_failed_at=first_failed_at)
        return None

    def _retry_live(self, entry: _Pending) -> None:
        """A parked live entry came due: the world may have changed."""
        intent_id = entry.intent.intent_id
        scheduler = self.fleet.scheduler
        if (not scheduler.has_intent(intent_id)
                or scheduler.host_of(intent_id) != entry.src_host):
            return  # released, or the crash path already moved it
        if not self.fleet.health.is_degraded(entry.src_host):
            self.healed_in_place += 1
            self._record("healed", intent_id, entry.src_host,
                         entry.src_host, ok=True,
                         detail="host restored before the retry fired")
            return
        self._migrate_off(intent_id, entry.src_host,
                          attempts=entry.attempts,
                          first_failed_at=entry.first_failed_at)

    # -- parking / giving up -------------------------------------------------

    def _park(self, intent: PerformanceTarget, src_host: str, live: bool,
              attempts: int, first_failed_at: float,
              reason: str = "") -> None:
        now = self.fleet.now
        attempts += 1
        cfg = self.config
        out_of_retries = attempts > cfg.max_retries
        out_of_time = (now - first_failed_at) > cfg.retry_timeout + _RETRY_EPS
        if out_of_retries or out_of_time:
            self._give_up(intent, src_host, live,
                          "retries" if out_of_retries else "timeout")
            return
        delay = cfg.retry_backoff * cfg.backoff_growth ** (attempts - 1)
        entry = _Pending(intent=intent, src_host=src_host, live=live,
                         attempts=attempts,
                         first_failed_at=first_failed_at,
                         next_try=now + delay)
        self._pending[intent.intent_id] = entry
        heapq.heappush(self._heap, (entry.next_try, self._seq, entry))
        self._seq += 1
        if attempts == 1:
            self.requeued += 1
            self._record("requeue", intent.intent_id, src_host, None,
                         ok=live, detail=reason or
                         f"no host admitted it; retry at "
                         f"{entry.next_try:.6f}s")

    def _give_up(self, intent: PerformanceTarget, src_host: str,
                 live: bool, why: str) -> None:
        self.retries_exhausted += 1
        if live:
            # Still placed on the degraded host: served, just not moved.
            self._record("exhaust", intent.intent_id, src_host, src_host,
                         ok=True,
                         detail=f"gave up ({why}); stays degraded in place")
            return
        self.shed += 1
        self._record("shed", intent.intent_id, src_host, None, ok=False,
                     detail=f"gave up ({why}); session lost")
        for listener in self._shed_listeners:
            listener(intent)

    # -- reporting -----------------------------------------------------------

    def _record(self, kind: str, intent_id: str, src: str,
                dst: Optional[str], ok: bool, detail: str = "") -> None:
        self.records.append(EvacuationRecord(
            kind=kind, time=self.fleet.now, intent_id=intent_id,
            src=src, dst=dst, ok=ok, detail=detail,
        ))

    def counters(self) -> Dict[str, int]:
        """All recovery counters, keyed for report embedding."""
        return {
            "evacuated": self.evacuated,
            "requeued": self.requeued,
            "retries": self.retries,
            "retries_exhausted": self.retries_exhausted,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "healed_in_place": self.healed_in_place,
            "pending_replacements": self.pending_replacements,
            "pending_migrations": self.pending_migrations,
        }

    def describe(self) -> str:
        """Human-readable recovery summary."""
        return (
            f"FleetRecoveryController: {self.evacuated} evacuated, "
            f"{self.requeued} requeued ({self.retries} retries), "
            f"{self.shed} shed, {self.healed_in_place} healed in place, "
            f"{self.pending_replacements}+{self.pending_migrations} pending"
        )
