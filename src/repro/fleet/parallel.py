"""Process-parallel fleet execution: the parent side.

The fleet's control plane (scheduler, planner, recovery, fault
timelines, health) stays in the parent process; host simulations are
sharded across long-lived worker processes (:mod:`repro.fleet.worker`)
and driven over pipes with the compact protocol in
:mod:`repro.fleet.protocol`.  Two classes live here:

* :class:`ParallelBackend` — owns the worker processes and pipes, routes
  per-host ops to the owning worker, broadcasts fleet-wide ops with a
  send-all-then-receive-all round (the only barrier in the system), and
  maintains the piggybacked mirrors every reply refreshes: each
  worker's minimum pending-event time, the set of hosts whose
  telemetry went stale, and — when ``slo=`` is armed — the latency-probe
  samples accumulated since the last reply.
* :class:`ParallelFleetClock` — the :class:`~repro.fleet.clock.FleetClock`
  discipline over workers.  The serial event clock's lazy
  ``(peek_time, host_id)`` heap becomes a *heap over per-worker minima*:
  an advance is one broadcast round to exactly the workers whose minimum
  is due, because a host's events can only schedule more events on the
  same host (hosts share no fabric), so each worker drains its own heap
  to the target with no cross-worker interaction.  ``wake`` is a logical
  no-op — every mutating op carries fleet ``now`` and the worker wakes
  the target host first (see :mod:`repro.fleet.worker` for why that
  folding is exact).

Workers are forked, not spawned: host factories close over topology
builders that need not pickle, and fork ships them for free.  That makes
the backend POSIX-only, which the constructor reports as a
:class:`~repro.errors.FleetError` rather than a deep pickle traceback.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..errors import FleetError, UnknownHostError
from .clock import _CLOCK_EPS, FleetClock
from .protocol import ERR, FATAL, decode_error, shard_hosts
from .worker import worker_main

#: Seconds to wait for a worker to exit cleanly at shutdown before
#: escalating to terminate().
_JOIN_TIMEOUT = 5.0


class ParallelBackend:
    """Worker-process pool plus the message plumbing the fleet rides.

    Args:
        host_ids: Every host in the fleet (sharded deterministically via
            :func:`~repro.fleet.protocol.shard_hosts`; empty shards are
            dropped, so ``workers`` is an upper bound).
        workers: Requested worker count.
        factory: Zero-argument topology factory (crosses the fork, so it
            need not pickle).
        start: Initial host-engine time.
        host_kwargs: Extra :class:`~repro.host.Host` keyword arguments
            (``resilience`` excluded — the fleet rejects it up front).
    """

    def __init__(self, host_ids: Sequence[str], workers: int,
                 factory: Callable, start: float,
                 host_kwargs: Dict[str, Any]) -> None:
        self.shards = [s for s in shard_hosts(host_ids, workers) if s]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - POSIX-only repo, but be kind
            raise FleetError(
                "parallel fleet execution requires the fork start method "
                "(POSIX only)"
            ) from None
        self.worker_of: Dict[str, int] = {}
        #: Per-worker earliest pending host-event time (None = idle
        #: shard).  Exact at all times: it rides on every reply, and a
        #: shard's events only change through ops routed to that worker.
        self.min_peeks: List[Optional[float]] = [None] * len(self.shards)
        self._dirty: Set[str] = set()
        #: Latency-probe samples piggybacked on replies since the last
        #: take_slo() (empty unless the fleet armed slo=).
        self._slo: List[tuple] = []
        self._conns: list = []
        self._procs: list = []
        self._alive = [True] * len(self.shards)
        self._shut_down = False
        for widx, shard in enumerate(self.shards):
            for host_id in shard:
                self.worker_of[host_id] = widx
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn, widx, shard, factory, start, host_kwargs),
                name=f"fleet-worker-{widx}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        for widx in range(len(self.shards)):
            self._recv(widx)  # construction ack (or a build traceback)

    @property
    def workers(self) -> int:
        """Actual worker count (after empty-shard dropping)."""
        return len(self.shards)

    # -- plumbing ------------------------------------------------------------

    def _worker_failed(self, widx: int, why: str) -> None:
        self._alive[widx] = False
        hosts = ", ".join(self.shards[widx])
        raise FleetError(f"fleet worker {widx} (hosts: {hosts}) {why}")

    def _send(self, widx: int, op: str, payload: dict) -> None:
        if not self._alive[widx]:
            self._worker_failed(widx, "is already dead")
        try:
            self._conns[widx].send((op, payload))
        except (BrokenPipeError, OSError):
            self._worker_failed(
                widx, f"died before accepting {op!r} "
                      f"(exitcode {self._procs[widx].exitcode})")

    def _recv(self, widx: int):
        try:
            status, value, min_peek, dirty, slo = self._conns[widx].recv()
        except (EOFError, OSError):
            self._alive[widx] = False
            self._worker_failed(
                widx, "died mid-operation without replying "
                      f"(exitcode {self._procs[widx].exitcode})")
        if status == FATAL:
            self._alive[widx] = False
            hosts = ", ".join(self.shards[widx])
            raise FleetError(
                f"fleet worker {widx} (hosts: {hosts}) failed:\n{value}")
        self.min_peeks[widx] = min_peek
        self._dirty.update(dirty)
        self._slo.extend(slo)
        if status == ERR:
            raise decode_error(*value)
        return value

    def call(self, host_id: str, op: str, payload: dict):
        """One op on the worker owning *host_id*; returns its result."""
        widx = self.worker_of.get(host_id)
        if widx is None:
            raise UnknownHostError(host_id)
        self._send(widx, op, payload)
        return self._recv(widx)

    def call_worker(self, widx: int, op: str, payload: dict):
        """One op on worker *widx* directly (fleet-scoped reads)."""
        self._send(widx, op, payload)
        return self._recv(widx)

    def broadcast(self, op: str, payload: dict,
                  widxs: Optional[Sequence[int]] = None) -> list:
        """Send *op* to the given workers (default all), then collect.

        Send-all-then-receive-all: the workers run concurrently and this
        is the planner sync-point barrier.  All replies are drained even
        when one raises, so the pipes stay in lockstep with the op
        stream; the first error is re-raised afterwards.
        """
        targets = (list(range(len(self.shards)))
                   if widxs is None else list(widxs))
        for widx in targets:
            self._send(widx, op, payload)
        results = []
        first_exc: Optional[BaseException] = None
        for widx in targets:
            try:
                results.append(self._recv(widx))
            except Exception as exc:
                if first_exc is None:
                    first_exc = exc
                results.append(None)
        if first_exc is not None:
            raise first_exc
        return results

    def scatter(self, op: str, payloads: Dict[int, dict]) -> Dict[int, Any]:
        """Send *op* with a per-worker payload, then collect all replies.

        The batched cousin of :meth:`broadcast` for reads whose payload
        differs per worker (placement-bulk fetches, headroom refreshes):
        one pipe round-trip per worker instead of one per item.  Like
        broadcast, every reply is drained even when one raises — the
        pipes stay in lockstep with the op stream — and the first error
        re-raises afterwards.
        """
        targets = sorted(payloads)
        for widx in targets:
            self._send(widx, op, payloads[widx])
        results: Dict[int, Any] = {}
        first_exc: Optional[BaseException] = None
        for widx in targets:
            try:
                results[widx] = self._recv(widx)
            except Exception as exc:
                if first_exc is None:
                    first_exc = exc
                results[widx] = None
        if first_exc is not None:
            raise first_exc
        return results

    def take_dirty(self) -> Set[str]:
        """Hosts whose telemetry changed since the last take (and clear)."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def take_slo(self) -> List[tuple]:
        """Host-tagged probe samples piggybacked since the last take
        (and clear) — ``(time, host_id, tenant, path, value)`` tuples."""
        samples = self._slo
        self._slo = []
        return samples

    # -- lifecycle -----------------------------------------------------------

    def collect_traces(self) -> Dict[int, list]:
        """Each live worker's tracer ring, as raw records per worker."""
        traces: Dict[int, list] = {}
        for widx in range(len(self.shards)):
            if not self._alive[widx]:
                continue
            traces[widx] = self.call_worker(widx, "collect_trace", {})
        return traces

    def shutdown(self) -> None:
        """Stop every worker; escalate to terminate() for stragglers."""
        if self._shut_down:
            return
        self._shut_down = True
        for widx, conn in enumerate(self._conns):
            if not self._alive[widx]:
                continue
            try:
                conn.send(("shutdown", {}))
            except OSError:
                self._alive[widx] = False
        for widx, conn in enumerate(self._conns):
            if not self._alive[widx]:
                continue
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()


class ParallelFleetClock(FleetClock):
    """Fleet time over sharded workers: a heap over per-worker minima.

    The serial event-driven clock re-validates a lazy fleet-wide heap
    entry by peeking one engine at a time; here each worker maintains
    that heap for its own shard and the parent only tracks each shard's
    *minimum* (refreshed on every reply).  ``advance_to(t)`` is then a
    single broadcast round to the workers whose minimum is due — sound
    because hosts cannot schedule events on each other, so no worker's
    advance can create work for another before the next sync point.

    When fleet-level control needs exact boundary cadence (a rebalance
    threshold is armed, escalations are queued, or the fleet was built
    with the lockstep discipline) the advance runs quantum by quantum,
    broadcasting one boundary slice and running
    :meth:`~repro.fleet.migration.MigrationPlanner.control` at each —
    the same cadence and ordering as the serial clocks.
    """

    name = "parallel"

    def __init__(self, fleet, quantum: float, start: float,
                 backend: ParallelBackend,
                 force_boundaries: bool = False) -> None:
        super().__init__(fleet, quantum, start)
        self._backend = backend
        self._force_boundaries = force_boundaries
        self.name = (f"parallel[{'lockstep' if force_boundaries else 'event'}"
                     f" x{backend.workers}]")

    def _resolve_engines(self, fleet) -> dict:
        return {}  # engines live in the workers, not this process

    def _known(self, host_id: str) -> None:
        if host_id not in self._backend.worker_of:
            raise UnknownHostError(host_id)

    def wake(self, host_id: str, t: Optional[float] = None) -> int:
        """Logical no-op: every worker op wakes its target host itself.

        The parent always advances fleet time before issuing ops and ops
        only schedule strictly-future events, so the fold is exact — the
        worker-side wake processes the same events at the same local
        times the serial pre-interaction wake would have.
        """
        self._known(host_id)
        return 0

    def notify(self, host_id: str) -> None:
        """No-op: min_peeks refresh on the mutating op's own reply."""

    def deactivate(self, host_id: str) -> None:
        self._known(host_id)
        self._backend.call(host_id, "deactivate",
                           {"host_id": host_id, "now": self._now})
        self._inactive.add(host_id)

    def reactivate(self, host_id: str) -> int:
        self._known(host_id)
        self._inactive.discard(host_id)
        return self._backend.call(host_id, "reactivate",
                                  {"host_id": host_id, "now": self._now})

    def sync_hosts(self, t: Optional[float] = None) -> int:
        target = self._now if t is None else t
        return sum(self._backend.broadcast("sync", {"t": target}))

    def _needs_boundaries(self) -> bool:
        # Per-host recovery controllers cannot exist here (the fleet
        # rejects resilience= with parallel=), so the serial event
        # clock's _any_recovery term is identically False.
        planner = self.fleet.planner
        if planner.rebalance_threshold is not None:
            return True
        return bool(planner.pending_escalations)

    def advance_to(self, t: float) -> int:
        self._check_target(t)
        if self._force_boundaries or self._needs_boundaries():
            return self._advance_boundaries(t)
        due = [widx for widx, min_peek in enumerate(self._backend.min_peeks)
               if min_peek is not None and min_peek <= t + _CLOCK_EPS]
        processed = 0
        if due:
            processed = sum(
                self._backend.broadcast("advance_events", {"t": t}, due))
        if t > self._now:
            self._now = t
        return processed

    def _advance_boundaries(self, t: float) -> int:
        """Quantum cadence: one boundary broadcast, then fleet control."""
        processed = 0
        while self._now < t - _CLOCK_EPS:
            boundary = min(t, self._now + self.quantum)
            processed += sum(
                self._backend.broadcast("advance_boundary", {"t": boundary}))
            self._now = boundary
            self.fleet.planner.control()
        return processed
