"""The worker-process side of process-parallel fleet execution.

:func:`worker_main` is the entry point each ``fleet-worker-N`` process
runs: it builds the :class:`~repro.host.Host` instances for its shard
(post-fork, so nothing host-sized ever crosses the pipe), then serves
the parent's ops until told to shut down.  The parent keeps *all*
control-plane state — scheduler bindings, planner queues, fleet health,
fault timelines — and the worker keeps *only* what is host-local: the
engines, ledgers, fabrics, a real :class:`~repro.fleet.telemetry
.FleetTelemetry` over its shard, and the per-host failure-injector state
for degrade faults.

Determinism hinges on two properties of this split:

* **Order.**  Every mutating op is issued by the parent in exactly the
  order the serial fleet would have performed it, and each op replays
  the serial call sequence locally — ``wake`` the host to fleet time,
  apply the manager/injector call, ``notify`` the shard clock — so a
  host's event history is identical instruction-for-instruction.
* **Wake folding.**  The parent's ``Fleet.wake`` is a no-op in parallel
  mode; instead every op carries fleet ``now`` and wakes its target host
  first.  This is sound because the parent always advances fleet time
  *before* issuing ops, and ops only schedule strictly-future host
  events (decision latencies and arbiter periods are positive), so the
  folded wake processes exactly the events the serial pre-interaction
  wake would have.

:class:`_ShardClock` mirrors the serial
:class:`~repro.fleet.clock.EventDrivenFleetClock` heap discipline over
just this shard — same lazy priming, same stale-entry revalidation, same
``(time, host_id)`` tie-break — so a parallel advance processes each
host's events at the same local timestamps the serial clock would.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import heapq

from ..errors import HostNetError, UnknownHostError
from ..host import Host
from ..monitor.failures import FailureInjector
from ..resilience.invariants import check_invariants
from ..topology.elements import LinkClass
from ..trace import TRACER
from .clock import _CLOCK_EPS
from .protocol import ERR, FATAL, OK, encode_error
from .telemetry import FleetTelemetry


class _ShardClock:
    """The per-worker slice of the event-driven fleet clock.

    Keeps the same lazy ``(next_event_time, host_id)`` heap the serial
    :class:`~repro.fleet.clock.EventDrivenFleetClock` keeps fleet-wide,
    restricted to this worker's hosts.  The parent holds only each
    worker's *minimum* (piggybacked on every reply), so the fleet-wide
    heap becomes a heap over per-worker minima without any extra
    round-trips.
    """

    def __init__(self, hosts: Dict[str, Host]) -> None:
        self._engines = {host_id: hosts[host_id].engine
                         for host_id in sorted(hosts)}
        self._inactive: set = set()
        self._heap: List[Tuple[float, str]] = []
        self._primed = False

    def _engine(self, host_id: str):
        try:
            return self._engines[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None

    def min_peek(self) -> Optional[float]:
        """Earliest pending event time over this shard's active hosts.

        Computed by scan, not from the heap: the heap is lazy and may be
        stale or unprimed, and the parent's advance planning needs an
        exact answer on every reply.
        """
        earliest: Optional[float] = None
        for host_id, engine in self._engines.items():
            if host_id in self._inactive:
                continue
            t_ev = engine.peek_time()
            if t_ev is not None and (earliest is None or t_ev < earliest):
                earliest = t_ev
        return earliest

    def wake(self, host_id: str, target: float) -> int:
        if host_id in self._inactive:
            return 0  # crashed: frozen in time until reactivated
        engine = self._engine(host_id)
        processed = (engine.run_until(target)
                     if target >= engine.now else 0)
        if self._primed:
            t_ev = engine.peek_time()
            if t_ev is not None:
                heapq.heappush(self._heap, (t_ev, host_id))
        return processed

    def notify(self, host_id: str) -> None:
        if not self._primed or host_id in self._inactive:
            return
        t_ev = self._engine(host_id).peek_time()
        if t_ev is not None:
            heapq.heappush(self._heap, (t_ev, host_id))

    def deactivate(self, host_id: str, now: float) -> None:
        # The serial injector wakes a host to the crash instant before
        # freezing it; fold that wake in here so pending pre-crash
        # events (in-flight admission decisions, arbiter ticks) run at
        # the same local times they would serially.
        self.wake(host_id, now)
        self._engine(host_id)
        self._inactive.add(host_id)

    def reactivate(self, host_id: str, now: float) -> int:
        self._inactive.discard(host_id)
        return self.wake(host_id, now)

    def _prime(self) -> None:
        self._heap = []
        for host_id, engine in self._engines.items():
            if host_id in self._inactive:
                continue
            t_ev = engine.peek_time()
            if t_ev is not None:
                self._heap.append((t_ev, host_id))
        heapq.heapify(self._heap)
        self._primed = True

    def advance_events(self, t: float) -> int:
        """Run every shard event due at or before *t* (event discipline)."""
        if not self._primed:
            self._prime()
        heap = self._heap
        engines = self._engines
        processed = 0
        while heap and heap[0][0] <= t + _CLOCK_EPS:
            t_ev, host_id = heap[0]
            if host_id in self._inactive:
                heapq.heappop(heap)
                continue
            engine = engines[host_id]
            actual = engine.peek_time()
            if actual != t_ev:
                heapq.heappop(heap)
                if actual is not None:
                    heapq.heappush(heap, (actual, host_id))
                continue
            heapq.heappop(heap)
            processed += engine.run_until(t_ev)
            nxt = engine.peek_time()
            if nxt is not None:
                heapq.heappush(heap, (nxt, host_id))
        return processed

    def advance_boundary(self, t: float) -> int:
        """Run every active host to *t* (one lockstep boundary slice)."""
        self._primed = False
        processed = 0
        for host_id, engine in self._engines.items():
            if host_id in self._inactive:
                continue
            processed += engine.run_until(t)
        return processed

    def sync(self, t: float) -> int:
        """Bring every active host's local clock up to *t*."""
        processed = 0
        for host_id in self._engines:
            processed += self.wake(host_id, t)
        return processed


class _Worker:
    """One worker's host shard plus the op table the parent drives."""

    def __init__(self, host_ids: Sequence[str], factory: Callable,
                 start: float, host_kwargs: Dict[str, Any]) -> None:
        self.hosts: Dict[str, Host] = {}
        self.telemetry = FleetTelemetry()
        # Hosts whose telemetry-relevant state changed since the last
        # reply.  Subscribes to the same two signals the serial
        # FleetTelemetry push-invalidates on (reservation changes and
        # fabric re-solves; there are no monitors — resilience is
        # rejected with parallel=), so the parent's staleness mirror is
        # exactly as fresh as the serial one.
        self._dirty_delta: set = set()
        for host_id in sorted(host_ids):
            host = Host(factory(), start=start, resilience=None,
                        **host_kwargs)
            self.hosts[host_id] = host
            self.telemetry.attach(host_id, host)
            host.manager.on_change(
                lambda hid=host_id: self._dirty_delta.add(hid))
            host.network.on_recompute(
                lambda hid=host_id: self._dirty_delta.add(hid))
        self.clock = _ShardClock(self.hosts)
        self._injectors: Dict[str, FailureInjector] = {}
        # host_id -> active degrade failures (at most one degrade per
        # host; the parent's injector skips already-faulted hosts).
        self._degrades: Dict[str, list] = {}

    def take_dirty(self) -> tuple:
        """Drain the since-last-reply dirty-host delta."""
        if not self._dirty_delta:
            return ()
        dirty = tuple(self._dirty_delta)
        self._dirty_delta.clear()
        return dirty

    def take_slo(self) -> tuple:
        """Drain since-last-reply latency-probe samples, host-tagged.

        Samples only appear while host events execute (the probe rides
        each host's own engine), and every reply ships the accumulated
        delta, so after an advance to *t* the parent holds every sample
        stamped at or before *t* — the completeness property
        :class:`~repro.slo.monitor.FleetSloMonitor` relies on.
        ``self.hosts`` was built in sorted host order, so the tagged
        tuples come out host-ordered within equal timestamps for free.
        """
        samples = []
        for host_id, host in self.hosts.items():
            probe = host.slo_probe
            if probe is None:
                continue
            for t, tenant, path, value in probe.take_delta():
                samples.append((t, host_id, tenant, path, value))
        return tuple(samples)

    def _host(self, host_id: str) -> Host:
        try:
            return self.hosts[host_id]
        except KeyError:
            raise UnknownHostError(host_id) from None

    def _injector(self, host_id: str) -> FailureInjector:
        injector = self._injectors.get(host_id)
        if injector is None:
            injector = FailureInjector(self._host(host_id).network)
            self._injectors[host_id] = injector
        return injector

    # -- time ----------------------------------------------------------------

    def op_advance_events(self, p) -> int:
        return self.clock.advance_events(p["t"])

    def op_advance_boundary(self, p) -> int:
        return self.clock.advance_boundary(p["t"])

    def op_sync(self, p) -> int:
        return self.clock.sync(p["t"])

    def op_deactivate(self, p) -> None:
        self.clock.deactivate(p["host_id"], p["now"])

    def op_reactivate(self, p) -> int:
        return self.clock.reactivate(p["host_id"], p["now"])

    # -- manager surface ------------------------------------------------------

    def op_try_submit(self, p):
        host_id = p["host_id"]
        host = self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            return host.manager.try_submit(p["intent"])
        finally:
            self.clock.notify(host_id)

    def op_try_submit_seq(self, p):
        """Probe a ranked run of this shard's hosts in one round-trip.

        Replays the scheduler's serial probe loop — wake the host to
        fleet ``now``, ``try_submit``, notify the shard clock — for each
        ``(host_id, intent)`` attempt in order, stopping at the first
        admission.  Returns ``(tried, placement-or-None)``; the caller
        maps ``tried`` back to the admitting host.
        """
        now = p["now"]
        tried = 0
        for host_id, intent in p["attempts"]:
            host = self._host(host_id)
            self.clock.wake(host_id, now)
            tried += 1
            try:
                placement = host.manager.try_submit(intent)
            finally:
                self.clock.notify(host_id)
            if placement is not None:
                return tried, placement
        return tried, None

    def op_submit(self, p):
        host_id = p["host_id"]
        host = self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            return host.manager.submit(p["intent"])
        finally:
            self.clock.notify(host_id)

    def op_release(self, p) -> None:
        host_id = p["host_id"]
        host = self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            host.manager.release(p["intent_id"])
        finally:
            self.clock.notify(host_id)

    def op_reinstate(self, p) -> None:
        host_id = p["host_id"]
        host = self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            host.manager.reinstate(p["placement"])
        finally:
            self.clock.notify(host_id)

    def op_placement(self, p):
        return self._host(p["host_id"]).manager.placement(p["intent_id"])

    def op_placements_bulk(self, p) -> list:
        return [self._host(host_id).manager.placement(intent_id)
                for host_id, intent_id in p["pairs"]]

    # -- audit reads ----------------------------------------------------------

    def op_placed_ids(self, p) -> Dict[str, List[str]]:
        return {
            host_id: [pl.intent.intent_id
                      for pl in host.manager.placements()]
            for host_id, host in self.hosts.items()
        }

    def op_reserved_total(self, p) -> float:
        host = self._host(p["host_id"])
        return sum(host.manager.ledger.reserved_map.values())

    def op_ledger_sigs(self, p) -> Dict[str, tuple]:
        return {
            host_id: tuple(sorted(host.manager.ledger.reserved_map.items()))
            for host_id, host in self.hosts.items()
        }

    def op_deep_check(self, p) -> List[tuple]:
        exclude = set(p["exclude"])
        out = []
        for host_id, host in sorted(self.hosts.items()):
            if host_id in exclude:
                continue
            for v in check_invariants(host.network, manager=host.manager,
                                      controller=host.recovery,
                                      rate_tol=p["rate_tol"]):
                out.append((host_id, v.name, v.detail, v.time))
        return out

    # -- telemetry ------------------------------------------------------------

    def op_headrooms(self, p) -> dict:
        return {host_id: self.telemetry.headroom(host_id)
                for host_id in p["host_ids"]}

    def op_set_fault(self, p) -> None:
        self.telemetry.set_fault(p["host_id"], p["faulted"])

    # -- fault model -----------------------------------------------------------

    def op_degrade_links(self, p) -> None:
        host_id = p["host_id"]
        host = self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            injector = self._injector(host_id)
            failures = self._degrades.setdefault(host_id, [])
            for link in host.topology.links():
                if (link.link_class is LinkClass.INTER_HOST
                        or link.capacity <= 0):
                    continue
                failures.append(
                    injector.degrade_link(link.link_id, p["factor"]))
        finally:
            self.clock.notify(host_id)

    def op_restore_links(self, p) -> None:
        host_id = p["host_id"]
        self._host(host_id)
        self.clock.wake(host_id, p["now"])
        try:
            injector = self._injector(host_id)
            for failure in self._degrades.pop(host_id, []):
                injector.clear(failure)
        finally:
            self.clock.notify(host_id)

    # -- lifecycle -------------------------------------------------------------

    def op_collect_trace(self, p) -> list:
        return TRACER.raw_records()

    def op_shutdown(self, p) -> None:
        for host in self.hosts.values():
            host.shutdown()


def worker_main(conn, worker_id: int, host_ids: Sequence[str],
                factory: Callable, start: float,
                host_kwargs: Dict[str, Any]) -> None:
    """Serve fleet ops for one host shard until shutdown or EOF.

    Replies ``(OK, result, min_peek, dirty, slo)`` on success, ``(ERR,
    encoded exception, min_peek, dirty, slo)`` when the op raised a
    library error the parent re-raises in place (admission rejections,
    migration rollbacks), and ``(FATAL, traceback, None, (), ())`` on
    anything unexpected — after which the parent tears the fleet down
    rather than trusting the shard.  Three mirrors ride on every reply
    so the parent never needs a poll round-trip: the shard's minimum
    pending-event time, the hosts whose telemetry went stale during the
    op, and the latency-probe samples accumulated since the last reply
    (empty unless the fleet armed ``slo=``).
    """
    try:
        worker = _Worker(host_ids, factory, start, host_kwargs)
    except BaseException:  # pragma: no cover - construction never fails
        try:
            conn.send((FATAL, traceback.format_exc(), None, (), ()))
        finally:
            conn.close()
        return
    conn.send((OK, None, worker.clock.min_peek(),
               worker.take_dirty(), worker.take_slo()))  # construction ack
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        try:
            result = getattr(worker, f"op_{op}")(payload)
        except HostNetError as exc:
            conn.send((ERR, encode_error(exc), worker.clock.min_peek(),
                       worker.take_dirty(), worker.take_slo()))
            continue
        except BaseException:
            try:
                conn.send((FATAL, traceback.format_exc(), None, (), ()))
            except OSError:  # pragma: no cover - parent died mid-reply
                pass
            break
        conn.send((OK, result, worker.clock.min_peek(),
                   worker.take_dirty(), worker.take_slo()))
        if op == "shutdown":
            break
    conn.close()
