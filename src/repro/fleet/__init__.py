"""``repro.fleet`` — the multi-host cluster layer.

Composes many :class:`~repro.host.Host` sessions into one schedulable
fleet: lockstep clock coordination (:class:`Fleet`), cached per-host
headroom rollups (:class:`FleetTelemetry`), headroom-aware admission with
pluggable policies (:class:`ClusterScheduler`), and atomic cross-host
live migration (:class:`MigrationPlanner`).  See DESIGN.md §11.
"""

from .cluster import Fleet
from .migration import MigrationPlanner, MigrationRecord
from .placement import (
    PLACEMENT_POLICIES,
    BestFitHeadroomPolicy,
    FirstFitPolicy,
    PlacementPolicy,
    PlacementRequest,
    SpreadByTenantPolicy,
    make_policy,
)
from .scheduler import ClusterScheduler, FleetPlacement
from .telemetry import FleetTelemetry, HostHeadroom
from .workload import (
    FleetChurnConfig,
    FleetChurnReport,
    generate_events,
    run_churn,
)

__all__ = [
    "Fleet",
    "FleetTelemetry",
    "HostHeadroom",
    "ClusterScheduler",
    "FleetPlacement",
    "MigrationPlanner",
    "MigrationRecord",
    "PlacementPolicy",
    "PlacementRequest",
    "FirstFitPolicy",
    "BestFitHeadroomPolicy",
    "SpreadByTenantPolicy",
    "PLACEMENT_POLICIES",
    "make_policy",
    "FleetChurnConfig",
    "FleetChurnReport",
    "generate_events",
    "run_churn",
]
