"""``repro.fleet`` — the multi-host cluster layer.

Composes many :class:`~repro.host.Host` sessions into one schedulable
fleet: event-driven (or lockstep) clock coordination (:class:`Fleet`,
:class:`FleetClock`), push-invalidated per-host headroom rollups
(:class:`FleetTelemetry`), headroom-aware admission with pluggable
policies ranked over a vectorized matrix (:class:`ClusterScheduler`), and
atomic cross-host live migration (:class:`MigrationPlanner`).  See
DESIGN.md §11–12.
"""

from .clock import (
    FLEET_CLOCKS,
    EventDrivenFleetClock,
    FleetClock,
    LockstepFleetClock,
    make_clock,
)
from .cluster import Fleet
from .migration import MigrationPlanner, MigrationRecord
from .placement import (
    PLACEMENT_POLICIES,
    BestFitHeadroomPolicy,
    FirstFitPolicy,
    PlacementPolicy,
    PlacementRequest,
    SpreadByTenantPolicy,
    make_policy,
)
from .scheduler import ClusterScheduler, FleetPlacement
from .telemetry import FleetTelemetry, HeadroomMatrix, HostHeadroom
from .workload import (
    FleetChurnConfig,
    FleetChurnReport,
    generate_events,
    run_churn,
)

__all__ = [
    "Fleet",
    "FleetClock",
    "LockstepFleetClock",
    "EventDrivenFleetClock",
    "FLEET_CLOCKS",
    "make_clock",
    "FleetTelemetry",
    "HeadroomMatrix",
    "HostHeadroom",
    "ClusterScheduler",
    "FleetPlacement",
    "MigrationPlanner",
    "MigrationRecord",
    "PlacementPolicy",
    "PlacementRequest",
    "FirstFitPolicy",
    "BestFitHeadroomPolicy",
    "SpreadByTenantPolicy",
    "PLACEMENT_POLICIES",
    "make_policy",
    "FleetChurnConfig",
    "FleetChurnReport",
    "generate_events",
    "run_churn",
]
