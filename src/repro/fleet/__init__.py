"""``repro.fleet`` — the multi-host cluster layer.

Composes many :class:`~repro.host.Host` sessions into one schedulable
fleet: event-driven (or lockstep) clock coordination (:class:`Fleet`,
:class:`FleetClock`), push-invalidated per-host headroom rollups
(:class:`FleetTelemetry`), headroom-aware admission with pluggable
policies ranked over a vectorized matrix (:class:`ClusterScheduler`), and
atomic cross-host live migration (:class:`MigrationPlanner`).  On top of
that, a seeded fleet fault model — host crashes, capacity degradations,
domain partitions (:class:`FleetFaultInjector`, :class:`FleetHealth`) —
with self-healing evacuation (:class:`FleetRecoveryController`), a
fleet-wide invariant oracle (:func:`check_fleet_invariants`), and a
chaos-campaign harness (:func:`run_fleet_campaign`).  Host simulations
can be sharded across worker processes (``Fleet(parallel=N)``) behind a
deterministic message-passing boundary (:class:`ParallelFleetClock`,
:func:`shard_hosts`).  See DESIGN.md §11–12, §14, and §15.
"""

from .chaos import FleetChaosConfig, FleetChaosReport, run_fleet_campaign
from .clock import (
    FLEET_CLOCKS,
    EventDrivenFleetClock,
    FleetClock,
    LockstepFleetClock,
    make_clock,
)
from .cluster import Fleet
from .faults import (
    FleetFaultConfig,
    FleetFaultEvent,
    FleetFaultInjector,
    FleetFaultRecord,
    FleetFaultSchedule,
    FleetHealth,
    generate_fault_schedule,
)
from .invariants import check_fleet_invariants
from .migration import MigrationPlanner, MigrationRecord
from .parallel import ParallelBackend, ParallelFleetClock
from .protocol import shard_hosts
from .recovery import (
    EvacuationRecord,
    FleetRecoveryConfig,
    FleetRecoveryController,
)
from .placement import (
    PLACEMENT_POLICIES,
    BestFitHeadroomPolicy,
    FirstFitPolicy,
    PlacementPolicy,
    PlacementRequest,
    SpreadByTenantPolicy,
    make_policy,
)
from .scheduler import ClusterScheduler, FleetPlacement
from .telemetry import (
    FleetTelemetry,
    HeadroomMatrix,
    HostHeadroom,
    ParallelFleetTelemetry,
)
from .workload import (
    FleetChurnConfig,
    FleetChurnReport,
    generate_events,
    run_churn,
)

__all__ = [
    "Fleet",
    "FleetClock",
    "LockstepFleetClock",
    "EventDrivenFleetClock",
    "FLEET_CLOCKS",
    "make_clock",
    "ParallelBackend",
    "ParallelFleetClock",
    "ParallelFleetTelemetry",
    "shard_hosts",
    "FleetTelemetry",
    "HeadroomMatrix",
    "HostHeadroom",
    "ClusterScheduler",
    "FleetPlacement",
    "MigrationPlanner",
    "MigrationRecord",
    "PlacementPolicy",
    "PlacementRequest",
    "FirstFitPolicy",
    "BestFitHeadroomPolicy",
    "SpreadByTenantPolicy",
    "PLACEMENT_POLICIES",
    "make_policy",
    "FleetChurnConfig",
    "FleetChurnReport",
    "generate_events",
    "run_churn",
    "FleetHealth",
    "FleetFaultConfig",
    "FleetFaultEvent",
    "FleetFaultSchedule",
    "FleetFaultInjector",
    "FleetFaultRecord",
    "generate_fault_schedule",
    "FleetRecoveryConfig",
    "FleetRecoveryController",
    "EvacuationRecord",
    "check_fleet_invariants",
    "FleetChaosConfig",
    "FleetChaosReport",
    "run_fleet_campaign",
]
