"""Pluggable fleet placement policies.

A policy is a pure ranking function: given a placement request and the
fleet's per-host :class:`~repro.fleet.telemetry.HostHeadroom` vectors, it
returns host ids in the order the scheduler should try them.  The
scheduler probes hosts in that order and takes the first that admits, so a
policy never has to predict admission exactly — it only has to put the
right host early (and under a bounded probe budget, putting the right host
early is the whole game).

Shipped policies:

* ``first-fit`` — stable host-id order, blind to load.  The baseline every
  headroom-aware policy is measured against (``bench_fleet_placement``).
* ``best-fit`` — classic tightest-fit, by headroom: among hosts whose
  attach links can still take the pipe, try the *fullest* first,
  preserving contiguous capacity on emptier hosts for the large intents
  that would otherwise be unplaceable.
* ``spread`` — tenant anti-affinity: avoid hosts already carrying the
  tenant, then balance by headroom, so one host failure degrades each
  tenant at most once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Type, Union

import numpy as np

from ..core.intents import PerformanceTarget
from ..errors import FleetError
from .telemetry import HeadroomMatrix, HostHeadroom


@dataclass(frozen=True)
class PlacementRequest:
    """One intent, pre-canonicalized for policy consumption.

    Attributes:
        intent: The intent being placed (reference-topology device ids).
        src_key: Canonical ``"<type>:<index>"`` key of the source device,
            matching :attr:`HostHeadroom.attach_free`; ``None`` when the
            device is not in the reference vocabulary.
        dst_key: Same for the destination device.
        tenant_hosts: Hosts already holding intents of this tenant.
        avoid_hosts: Hosts in a faulted failure domain (see
            :meth:`~repro.fleet.faults.FleetHealth.avoid_hosts`).  A
            *soft* signal: headroom-aware policies rank these hosts
            last among otherwise-equal candidates, so evacuees land
            outside the faulted domain whenever anywhere else fits —
            but a tainted host still beats rejection.
    """

    intent: PerformanceTarget
    src_key: Optional[str] = None
    dst_key: Optional[str] = None
    tenant_hosts: FrozenSet[str] = frozenset()
    avoid_hosts: FrozenSet[str] = frozenset()

    @property
    def bandwidth(self) -> float:
        """Requested bandwidth floor (bytes/s)."""
        return self.intent.bandwidth

    def fits(self, headroom: HostHeadroom) -> bool:
        """Whether *headroom* says this pipe's attach links are open."""
        return headroom.can_fit(self.bandwidth, self.src_key, self.dst_key)


class PlacementPolicy:
    """Ranks candidate hosts for one request (strategy interface).

    Subclasses implement :meth:`rank`; ``name`` identifies the policy in
    CLI flags, traces, and ``describe()`` output.
    """

    name = "abstract"

    def rank(self, request: PlacementRequest,
             headrooms: Sequence[HostHeadroom]) -> List[str]:
        """Host ids in placement-attempt order.

        Args:
            request: The intent plus its canonical attach keys.
            headrooms: Current per-host summaries (deterministic order).
        """
        raise NotImplementedError

    def rank_matrix(self, request: PlacementRequest,
                    matrix: HeadroomMatrix) -> List[str]:
        """Host ids in placement-attempt order, from the vectorized view.

        The scheduler's hot path: shipped policies override this with a
        stable :func:`numpy.lexsort` over the matrix columns that
        reproduces :meth:`rank` exactly (asserted per policy in the test
        suite).  The default falls back to the scalar ranking, so a
        custom policy only has to implement :meth:`rank`.
        """
        return self.rank(request, matrix.headrooms)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FirstFitPolicy(PlacementPolicy):
    """Try hosts in stable id order; take the first that admits.

    Deliberately blind: no telemetry is consulted — and no
    ``avoid_hosts`` signal either, so under faults this baseline keeps
    probing tainted domains first.  That blindness is the point: it is
    what the headroom-aware policies' availability numbers are measured
    against.  (Crashed hosts are still hard-filtered by the scheduler.)
    """

    name = "first-fit"

    def rank(self, request: PlacementRequest,
             headrooms: Sequence[HostHeadroom]) -> List[str]:
        return sorted(h.host_id for h in headrooms)

    def rank_matrix(self, request: PlacementRequest,
                    matrix: HeadroomMatrix) -> List[str]:
        return sorted(matrix.host_ids)


class BestFitHeadroomPolicy(PlacementPolicy):
    """Tightest viable host first (classic best-fit, decided by headroom).

    Hosts are bucketed by the headroom vector, best bucket first:

    1. attach links open *and* path slack everywhere — probing cannot
       fail on a shared fabric link (UPI, memory bus), so the tightest
       such host is the classic best-fit choice;
    2. attach links open but some fabric link is hot — the probe may
       bounce off a shared bottleneck, so these come after;
    3. hosts flagged by the monitor or whose attach links are full — a
       last resort (the summary is an estimate, so they are still tried).

    Within a bucket, fullest-first: small intents pack into already-busy
    hosts and empty hosts stay contiguous for the large ones.

    ``avoid_hosts`` (faulted failure domains) ranks immediately after
    the fits test: a fitting host in a tainted domain still beats a
    non-fitting clean one — under a bounded probe budget, demoting
    tainted-but-fitting hosts below non-fitting ones would turn faults
    into rejections — but among fitting hosts, clean domains win.
    """

    name = "best-fit"

    def rank(self, request: PlacementRequest,
             headrooms: Sequence[HostHeadroom]) -> List[str]:
        def key(h: HostHeadroom):
            return (
                not request.fits(h),
                h.host_id in request.avoid_hosts,
                not h.available,
                not h.has_path_slack(request.bandwidth),
                h.free_capacity_total,  # fullest viable host first
                h.host_id,
            )

        return [h.host_id for h in sorted(headrooms, key=key)]

    def rank_matrix(self, request: PlacementRequest,
                    matrix: HeadroomMatrix) -> List[str]:
        bandwidth = request.bandwidth
        # lexsort: last key is primary; the matrix's sorted-host-id row
        # order plus sort stability supplies the host_id tiebreak.
        order = np.lexsort((
            matrix.free_capacity_total,
            ~matrix.has_path_slack(bandwidth),
            ~matrix.available,
            matrix.avoid(request.avoid_hosts),
            ~matrix.fits(bandwidth, request.src_key, request.dst_key),
        ))
        return [matrix.host_ids[i] for i in order]


class SpreadByTenantPolicy(PlacementPolicy):
    """Tenant anti-affinity, then balance by headroom.

    Hosts not yet carrying the tenant come first (emptiest viable first,
    to keep the fleet level); hosts already carrying it are the fallback,
    so a tenant larger than the fleet still places.

    ``avoid_hosts`` (faulted failure domains) is this policy's *primary*
    key — spread exists to bound blast radius, and a tainted domain is
    exactly the blast radius to stay out of, even at the cost of
    co-locating a tenant.
    """

    name = "spread"

    def rank(self, request: PlacementRequest,
             headrooms: Sequence[HostHeadroom]) -> List[str]:
        def key(h: HostHeadroom):
            return (
                h.host_id in request.avoid_hosts,
                h.host_id in request.tenant_hosts,
                not h.available,
                not request.fits(h),
                -h.free_capacity_total,  # emptiest first: level the fleet
                h.host_id,
            )

        return [h.host_id for h in sorted(headrooms, key=key)]

    def rank_matrix(self, request: PlacementRequest,
                    matrix: HeadroomMatrix) -> List[str]:
        in_tenant = np.fromiter(
            (host_id in request.tenant_hosts for host_id in matrix.host_ids),
            bool, len(matrix))
        order = np.lexsort((
            -matrix.free_capacity_total,
            ~matrix.fits(request.bandwidth, request.src_key,
                         request.dst_key),
            ~matrix.available,
            in_tenant,
            matrix.avoid(request.avoid_hosts),
        ))
        return [matrix.host_ids[i] for i in order]


#: Registry used by the CLI, the Fleet constructor, and the benchmark.
PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    FirstFitPolicy.name: FirstFitPolicy,
    BestFitHeadroomPolicy.name: BestFitHeadroomPolicy,
    SpreadByTenantPolicy.name: SpreadByTenantPolicy,
}


def make_policy(policy: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy name (or pass an instance through).

    Underscore spellings (``best_fit``) are accepted as aliases for the
    canonical dashed names, so CLI users and configs written either way
    resolve to the same policy.
    """
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return PLACEMENT_POLICIES[policy.replace("_", "-")]()
    except (KeyError, AttributeError):
        raise FleetError(
            f"unknown placement policy {policy!r}; "
            f"choices: {sorted(PLACEMENT_POLICIES)}"
        ) from None
