"""Periodic telemetry collection with explicit fabric cost (§3.1 Q2).

The collector samples every link's counters on a fixed period and derives
utilization rates.  Q2's dilemma is modelled head-on:

* ``processing="local"`` — samples stay in the per-device ring buffers;
  no fabric traffic, but the operator only gets local history;
* ``processing="ship"`` — each cycle's samples are shipped as a real
  system-tenant flow to a collection point (a DIMM), consuming memory-bus
  and PCIe bandwidth that tenants would otherwise use.  The overhead is
  measurable with the collector's own counters (E5).

Metric naming scheme: ``link_util.<link_id>``, ``link_rate.<link_id>`` and
``tenant_rate.<tenant>.<link_id>`` (per-tenant only when the counter source
supports it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TelemetryError
from ..sim.engine import PeriodicTask
from ..trace.recorder import TRACER
from ..sim.network import SYSTEM_TENANT, FabricNetwork
from ..topology.routing import shortest_path
from .counters import CounterBank, CounterSource
from .storage import MetricStore


def link_util_metric(link_id: str) -> str:
    """Metric name for a link's sampled utilization."""
    return f"link_util.{link_id}"


def link_rate_metric(link_id: str) -> str:
    """Metric name for a link's sampled byte rate."""
    return f"link_rate.{link_id}"


def tenant_rate_metric(tenant_id: str, link_id: str) -> str:
    """Metric name for one tenant's sampled byte rate on one link."""
    return f"tenant_rate.{tenant_id}.{link_id}"


class TelemetryCollector:
    """Samples fabric counters on a period and stores derived rates.

    Args:
        network: The fabric to monitor.
        store: Destination :class:`MetricStore`.
        source: Counter source determining fidelity (see §3.1 Q1).
        period: Sampling period in seconds.
        processing: ``"local"`` or ``"ship"`` (see module docstring).
        ship_from / ship_to: Endpoints of the shipping flow when
            ``processing="ship"`` (defaults: first NIC -> first DIMM).
        tenants: Tenant ids to attribute when the source supports it.
        clamp_utilization: Clamp recorded ``link_util.*`` samples at 1.0
            (dashboard convention).  Anomaly scoring passes ``False`` so
            oversubscription — stale caps, counter skew — stays visible to
            the detectors instead of saturating at 1.0.
    """

    def __init__(
        self,
        network: FabricNetwork,
        store: Optional[MetricStore] = None,
        source: CounterSource = CounterSource.HARDWARE,
        period: float = 0.01,
        processing: str = "local",
        ship_from: Optional[str] = None,
        ship_to: Optional[str] = None,
        tenants: Optional[List[str]] = None,
        clamp_utilization: bool = True,
    ) -> None:
        if period <= 0:
            raise TelemetryError(f"period must be > 0, got {period}")
        if processing not in ("local", "ship"):
            raise TelemetryError(f"unknown processing mode {processing!r}")
        self.network = network
        self.store = store if store is not None else MetricStore()
        self.bank = CounterBank(network, source)
        self.period = period
        self.processing = processing
        self.tenants = list(tenants or [])
        self.clamp_utilization = clamp_utilization
        self._task: Optional[PeriodicTask] = None
        self._last_bytes: Dict[str, float] = {}
        self._last_tenant_bytes: Dict[str, float] = {}
        self._last_sample_time: Optional[float] = None

        self.cycles = 0
        self.shipped_bytes = 0.0

        if processing == "ship":
            topo = network.topology
            if ship_from is None:
                from ..topology.elements import DeviceType

                nic_devs = topo.devices(DeviceType.NIC)
                dimm_devs = topo.devices(DeviceType.DIMM)
                if not nic_devs or not dimm_devs:
                    raise TelemetryError(
                        "ship mode needs a NIC and a DIMM (or explicit "
                        "ship_from/ship_to)"
                    )
                ship_from = nic_devs[0].device_id
                ship_to = ship_to or dimm_devs[0].device_id
            elif ship_to is None:
                raise TelemetryError("ship_from given without ship_to")
            self._ship_path = shortest_path(network.topology, ship_from, ship_to)
        else:
            self._ship_path = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sampling (first sample after one period)."""
        if self._task is not None:
            raise TelemetryError("collector already started")
        self._task = self.network.engine.schedule_every(
            self.period, self._sample, label="telemetry-sample"
        )

    def stop(self) -> None:
        """Stop sampling."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def set_period(self, period: float) -> None:
        """Change the sampling period, effective next cycle."""
        if period <= 0:
            raise TelemetryError(f"period must be > 0, got {period}")
        self.period = period
        if self._task is not None:
            self._task.reschedule(period)

    # -- sampling ------------------------------------------------------------

    def _sample(self) -> None:
        if not TRACER.enabled:
            return self._sample_untracked()
        with TRACER.span("telemetry", "sample",
                         {"links": len(self.network.topology.links())}):
            self._sample_untracked()

    def _sample_untracked(self) -> None:
        now = self.network.engine.now
        elapsed = (now - self._last_sample_time
                   if self._last_sample_time is not None else self.period)
        self._last_sample_time = now
        if elapsed <= 0:
            return
        self.cycles += 1
        record_count = 0

        for link in self.network.topology.links():
            rates = {}
            for direction in ("fwd", "rev"):
                key = f"{link.link_id}|{direction}"
                cumulative = self.bank.link_bytes(link.link_id, direction)
                previous = self._last_bytes.get(key, 0.0)
                rates[direction] = max(cumulative - previous, 0.0) / elapsed
                self._last_bytes[key] = cumulative
            total_rate = rates["fwd"] + rates["rev"]
            # The sampled view divides by *advertised* capacity: a silently
            # degraded link looks underutilized, which is exactly why
            # counters alone cannot localize such failures (E4).
            busiest = max(rates.values())
            utilization = busiest / link.capacity if link.capacity else 0.0
            if self.clamp_utilization:
                utilization = min(utilization, 1.0)
            self.store.record(link_rate_metric(link.link_id), now, total_rate)
            self.store.record(link_util_metric(link.link_id), now,
                              utilization)
            record_count += 2

        if self.tenants and self.bank.supports_per_tenant():
            for tenant_id in self.tenants:
                for link in self.network.topology.links():
                    key = f"{tenant_id}.{link.link_id}"
                    cumulative = self.bank.tenant_link_bytes(
                        tenant_id, link.link_id
                    )
                    previous = self._last_tenant_bytes.get(key, 0.0)
                    rate = max(cumulative - previous, 0.0) / elapsed
                    self._last_tenant_bytes[key] = cumulative
                    self.store.record(
                        tenant_rate_metric(tenant_id, link.link_id), now, rate
                    )
                    record_count += 1

        if self._ship_path is not None and record_count:
            batch = record_count * self.bank.spec.record_bytes
            self.shipped_bytes += batch
            self.network.start_transfer(
                SYSTEM_TENANT, self._ship_path, size=batch,
                tags={"app": "telemetry-ship"},
            )

    # -- queries -------------------------------------------------------------

    def overhead_rate(self) -> float:
        """Average fabric bytes/s consumed by telemetry shipping so far."""
        now = self.network.engine.now
        if now <= 0:
            return 0.0
        return self.shipped_bytes / now

    def latest_utilization(self, link_id: str) -> float:
        """Most recent sampled utilization of *link_id* (0.0 if unsampled)."""
        metric = link_util_metric(link_id)
        if not self.store.has_metric(metric):
            return 0.0
        return self.store.latest(metric)[1]
