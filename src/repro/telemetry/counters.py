"""Counter sources and their fidelity limits (§3.1 Q1).

The paper's Q1 asks *where monitoring data should come from* and observes
the trade-off concretely:

* **hardware counters** (Intel PCM/RDT-style) are accurate about totals but
  coarse-grained: no per-tenant attribution, and a limited read frequency;
* **software interception** is flexible and tenant-aware but blind to
  hardware internals and taxes the CPU;
* **future hardware** could offer per-tenant, high-frequency counters — at
  a silicon cost vendors may not pay.

:class:`CounterBank` wraps the simulator's ground-truth accounting and
*degrades* it according to the selected :class:`CounterSource`'s
:class:`SourceSpec`, so experiments measure exactly what each data source
would let an operator see (E11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import TelemetryError
from ..sim.network import FabricNetwork
from ..units import ms, us


class CounterSource(enum.Enum):
    """Where monitoring data is collected from."""

    HARDWARE = "hardware"
    SOFTWARE = "software"
    FUTURE_HARDWARE = "future_hardware"


@dataclass(frozen=True)
class SourceSpec:
    """Fidelity and cost envelope of one counter source.

    Attributes:
        per_tenant: Whether per-tenant attribution is available.
        min_read_interval: Reads closer together than this return the
            previously latched value (hardware counter access frequency
            limits).
        quantum: Byte counters are reported in multiples of this.
        record_bytes: Size of one exported sample record (shipping cost).
        visibility: Fraction of fabric byte activity the source can see.
            Software interception misses device-internal traffic (e.g.
            NIC cache refills, page walks), so it under-reports.
    """

    per_tenant: bool
    min_read_interval: float
    quantum: float
    record_bytes: float
    visibility: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.visibility <= 1:
            raise ValueError("visibility must be in (0, 1]")
        if self.min_read_interval < 0 or self.quantum < 0:
            raise ValueError("intervals and quanta must be >= 0")


#: Calibrated specs per source (PCM-style hardware: 100ms reads, 64B-line
#: quantised, tenant-blind; software shim: flexible but 10% blind; future
#: hardware: everything, fast).
SOURCE_SPECS: Dict[CounterSource, SourceSpec] = {
    CounterSource.HARDWARE: SourceSpec(
        per_tenant=False, min_read_interval=ms(100), quantum=64.0,
        record_bytes=64.0, visibility=1.0,
    ),
    CounterSource.SOFTWARE: SourceSpec(
        per_tenant=True, min_read_interval=us(100), quantum=1.0,
        record_bytes=128.0, visibility=0.90,
    ),
    CounterSource.FUTURE_HARDWARE: SourceSpec(
        per_tenant=True, min_read_interval=us(10), quantum=64.0,
        record_bytes=64.0, visibility=1.0,
    ),
}


class CounterBank:
    """Degraded view over the fabric's ground-truth byte counters.

    Reads are *latched*: a read earlier than ``min_read_interval`` after
    the previous one returns the stale latched value, exactly like polling
    a rate-limited hardware counter too fast.
    """

    def __init__(self, network: FabricNetwork,
                 source: CounterSource = CounterSource.HARDWARE,
                 spec: Optional[SourceSpec] = None) -> None:
        self.network = network
        self.source = source
        self.spec = spec or SOURCE_SPECS[source]
        self._latched: Dict[Tuple[str, ...], Tuple[float, float]] = {}
        self.reads = 0

    def _quantize(self, value: float) -> float:
        if self.spec.quantum <= 0:
            return value
        return (value // self.spec.quantum) * self.spec.quantum

    def _latch(self, key: Tuple[str, ...], fresh: float) -> float:
        now = self.network.engine.now
        self.reads += 1
        held = self._latched.get(key)
        # small epsilon so a read exactly one interval later is fresh even
        # under float rounding
        if held is not None and \
                now - held[0] < self.spec.min_read_interval - 1e-12:
            return held[1]
        value = self._quantize(fresh * self.spec.visibility)
        self._latched[key] = (now, value)
        return value

    def link_bytes(self, link_id: str,
                   direction: Optional[str] = None) -> float:
        """Cumulative bytes on *link_id* as this source reports them.

        *direction* (``"fwd"``/``"rev"``) selects one direction, matching
        real rx/tx counters; ``None`` reports the sum.
        """
        return self._latch(("link", link_id, direction or "both"),
                           self.network.link_bytes(link_id, direction))

    def tenant_link_bytes(self, tenant_id: str, link_id: str) -> float:
        """Per-tenant cumulative bytes, if the source supports attribution.

        Raises :class:`TelemetryError` for tenant-blind sources — callers
        must handle the capability gap explicitly, not read zeros.
        """
        if not self.spec.per_tenant:
            raise TelemetryError(
                f"counter source {self.source.value!r} has no per-tenant "
                f"attribution (§3.1 Q1)"
            )
        return self._latch(
            ("tenant", tenant_id, link_id),
            self.network.tenant_link_bytes(tenant_id, link_id),
        )

    def supports_per_tenant(self) -> bool:
        """Whether :meth:`tenant_link_bytes` is available."""
        return self.spec.per_tenant
