"""Operator-facing summaries over live fabric state and stored telemetry.

These are the "informative network usage statistics" §3.1 asks for: current
utilization tables, per-tenant usage breakdowns, and top-talker rankings —
the raw material for dashboards and for the anomaly platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.network import FabricNetwork
from ..topology.elements import LinkClass
from ..units import to_Gbps


@dataclass(frozen=True)
class LinkUsage:
    """One row of the utilization table."""

    link_id: str
    link_class: LinkClass
    capacity: float
    rate: float
    utilization: float
    healthy: bool

    def format_row(self) -> str:
        """Fixed-width human-readable row."""
        flag = "" if self.healthy else "  [DEGRADED]"
        return (f"{self.link_id:<24} {self.link_class.value:<16} "
                f"{to_Gbps(self.rate):>8.1f} / {to_Gbps(self.capacity):>8.1f} "
                f"Gbps  {self.utilization:>5.1%}{flag}")


def utilization_table(network: FabricNetwork,
                      link_class: Optional[LinkClass] = None) -> List[LinkUsage]:
    """Current usage of every link, sorted by utilization (descending)."""
    rows = []
    for link in network.topology.links(link_class):
        rows.append(
            LinkUsage(
                link_id=link.link_id,
                link_class=link.link_class,
                capacity=link.capacity,
                rate=network.link_rate(link.link_id),
                utilization=network.link_utilization(link.link_id),
                healthy=link.healthy,
            )
        )
    rows.sort(key=lambda r: r.utilization, reverse=True)
    return rows


def per_tenant_usage(network: FabricNetwork,
                     tenants: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """Instantaneous per-tenant rate on every link the tenant touches.

    Returns ``{tenant_id: {link_id: bytes_per_second}}`` with zero-rate
    entries omitted.
    """
    usage: Dict[str, Dict[str, float]] = {}
    for tenant_id in tenants:
        per_link: Dict[str, float] = {}
        for link in network.topology.links():
            rate = network.tenant_link_rate(tenant_id, link.link_id)
            if rate > 0:
                per_link[link.link_id] = rate
        usage[tenant_id] = per_link
    return usage


def top_talkers(network: FabricNetwork, tenants: Sequence[str],
                link_id: str, k: int = 3) -> List[tuple]:
    """The *k* tenants using the most bandwidth on *link_id* right now."""
    ranked = sorted(
        ((network.tenant_link_rate(t, link_id), t) for t in tenants),
        reverse=True,
    )
    return [(tenant, rate) for rate, tenant in ranked[:k] if rate > 0]


def hottest_links(network: FabricNetwork, k: int = 5) -> List[LinkUsage]:
    """The *k* most utilized links right now."""
    return utilization_table(network)[:k]
