"""Fine-grained telemetry: counter sources, collection, storage, views."""

from .collector import (
    TelemetryCollector,
    link_rate_metric,
    link_util_metric,
    tenant_rate_metric,
)
from .counters import SOURCE_SPECS, CounterBank, CounterSource, SourceSpec
from .storage import MetricStore
from .views import (
    LinkUsage,
    hottest_links,
    per_tenant_usage,
    top_talkers,
    utilization_table,
)

__all__ = [
    "CounterSource",
    "SourceSpec",
    "SOURCE_SPECS",
    "CounterBank",
    "MetricStore",
    "TelemetryCollector",
    "link_util_metric",
    "link_rate_metric",
    "tenant_rate_metric",
    "LinkUsage",
    "utilization_table",
    "per_tenant_usage",
    "top_talkers",
    "hottest_links",
]
