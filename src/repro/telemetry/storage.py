"""Bounded in-memory storage for telemetry samples (§3.1 Q2).

Monitoring data must live somewhere; this store models the *local* option:
ring buffers with a fixed per-metric capacity, so long runs cost constant
memory and the collector can report how much history a given buffer size
actually retains (the storage half of Q2's dilemma).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import UnknownMetricError


class MetricStore:
    """Named ring-buffer time series.

    Args:
        capacity: Maximum samples retained per metric (oldest evicted).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._series: Dict[str, Deque[Tuple[float, float]]] = {}
        self.samples_recorded = 0
        self.samples_evicted = 0

    def record(self, metric: str, t: float, value: float) -> None:
        """Append one sample to *metric*'s ring."""
        ring = self._series.get(metric)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._series[metric] = ring
        if len(ring) == self.capacity:
            self.samples_evicted += 1
        ring.append((t, value))
        self.samples_recorded += 1

    def metrics(self) -> List[str]:
        """All metric names seen so far, sorted."""
        return sorted(self._series)

    def has_metric(self, metric: str) -> bool:
        """Whether any sample was recorded under *metric*."""
        return metric in self._series

    def series(self, metric: str) -> List[Tuple[float, float]]:
        """All retained (time, value) samples of *metric*, oldest first."""
        try:
            return list(self._series[metric])
        except KeyError:
            raise UnknownMetricError(metric) from None

    def values(self, metric: str) -> List[float]:
        """Just the values of *metric*'s retained samples."""
        return [v for _, v in self.series(metric)]

    def latest(self, metric: str) -> Tuple[float, float]:
        """Most recent (time, value) of *metric*."""
        samples = self.series(metric)
        if not samples:
            raise UnknownMetricError(metric)
        return samples[-1]

    def window(self, metric: str, start: float,
               end: float) -> List[Tuple[float, float]]:
        """Samples of *metric* with ``start <= t <= end``."""
        return [(t, v) for t, v in self.series(metric) if start <= t <= end]

    def memory_bytes(self, bytes_per_sample: float = 16.0) -> float:
        """Approximate resident size of all retained samples."""
        retained = sum(len(ring) for ring in self._series.values())
        return retained * bytes_per_sample

    def to_csv(self, metrics: Optional[List[str]] = None) -> str:
        """Export retained samples as CSV (``metric,time,value`` rows).

        The operator-facing escape hatch: telemetry leaves the simulation
        in a form any external tooling ingests.  Rows are ordered by
        metric name, then time.
        """
        names = metrics if metrics is not None else self.metrics()
        lines = ["metric,time,value"]
        for name in names:
            for t, v in self.series(name):
                lines.append(f"{name},{t!r},{v!r}")
        return "\n".join(lines) + "\n"
