"""Unit helpers for the ``repro`` library.

Internally the library uses two canonical units everywhere:

* **time** — seconds, as ``float``;
* **bandwidth** — bytes per second, as ``float``.

The intra-host networking literature mixes Gbps (bits), GBps (bytes), and
nanosecond/microsecond latencies freely (the paper's Figure 1 does this in a
single table), which is a classic source of off-by-8 bugs.  To keep raw magic
numbers from crossing module boundaries, construct quantities with these
helpers (``Gbps(200)``, ``us(2)``) and render them for humans with the
``format_*`` functions.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time: canonical unit is seconds.
# --------------------------------------------------------------------------

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9


def seconds(value: float) -> float:
    """Return *value* seconds expressed in canonical time units (seconds)."""
    return float(value)


def ms(value: float) -> float:
    """Return *value* milliseconds in seconds."""
    return float(value) * MILLISECOND


def us(value: float) -> float:
    """Return *value* microseconds in seconds."""
    return float(value) * MICROSECOND


def ns(value: float) -> float:
    """Return *value* nanoseconds in seconds."""
    return float(value) * NANOSECOND


def to_ms(t: float) -> float:
    """Convert *t* seconds to milliseconds."""
    return t / MILLISECOND


def to_us(t: float) -> float:
    """Convert *t* seconds to microseconds."""
    return t / MICROSECOND


def to_ns(t: float) -> float:
    """Convert *t* seconds to nanoseconds."""
    return t / NANOSECOND


# --------------------------------------------------------------------------
# Data sizes: canonical unit is bytes.
# --------------------------------------------------------------------------

BYTE = 1.0
KiB = 1024.0
MiB = 1024.0 ** 2
GiB = 1024.0 ** 3
KB = 1e3
MB = 1e6
GB = 1e9


def kib(value: float) -> float:
    """Return *value* KiB in bytes."""
    return float(value) * KiB


def mib(value: float) -> float:
    """Return *value* MiB in bytes."""
    return float(value) * MiB


def gib(value: float) -> float:
    """Return *value* GiB in bytes."""
    return float(value) * GiB


# --------------------------------------------------------------------------
# Bandwidth: canonical unit is bytes per second.
# --------------------------------------------------------------------------

BITS_PER_BYTE = 8.0


def bps(value: float) -> float:
    """Return *value* bits/second in bytes/second."""
    return float(value) / BITS_PER_BYTE


def Kbps(value: float) -> float:
    """Return *value* kilobits/second in bytes/second."""
    return bps(value * 1e3)


def Mbps(value: float) -> float:
    """Return *value* megabits/second in bytes/second."""
    return bps(value * 1e6)


def Gbps(value: float) -> float:
    """Return *value* gigabits/second in bytes/second."""
    return bps(value * 1e9)


def MBps(value: float) -> float:
    """Return *value* megabytes/second in bytes/second."""
    return float(value) * 1e6


def GBps(value: float) -> float:
    """Return *value* gigabytes/second in bytes/second."""
    return float(value) * 1e9


def to_Gbps(bandwidth: float) -> float:
    """Convert *bandwidth* (bytes/second) to gigabits/second."""
    return bandwidth * BITS_PER_BYTE / 1e9


def to_GBps(bandwidth: float) -> float:
    """Convert *bandwidth* (bytes/second) to gigabytes/second."""
    return bandwidth / 1e9


def to_MBps(bandwidth: float) -> float:
    """Convert *bandwidth* (bytes/second) to megabytes/second."""
    return bandwidth / 1e6


# --------------------------------------------------------------------------
# Human-readable formatting.
# --------------------------------------------------------------------------


def format_time(t: float) -> str:
    """Render *t* seconds with an auto-selected human unit.

    >>> format_time(1.3e-7)
    '130.0ns'
    """
    if t < 0:
        return "-" + format_time(-t)
    if t < MICROSECOND:
        return f"{to_ns(t):.1f}ns"
    if t < MILLISECOND:
        return f"{to_us(t):.1f}us"
    if t < SECOND:
        return f"{to_ms(t):.2f}ms"
    return f"{t:.3f}s"


def format_bandwidth(bandwidth: float) -> str:
    """Render *bandwidth* (bytes/second) in Gbps, the common fabric unit.

    >>> format_bandwidth(Gbps(200))
    '200.0Gbps'
    """
    return f"{to_Gbps(bandwidth):.1f}Gbps"


def format_bytes(n: float) -> str:
    """Render a byte count with an auto-selected binary unit."""
    if n < 0:
        return "-" + format_bytes(-n)
    if n < KiB:
        return f"{n:.0f}B"
    if n < MiB:
        return f"{n / KiB:.1f}KiB"
    if n < GiB:
        return f"{n / MiB:.1f}MiB"
    return f"{n / GiB:.2f}GiB"
