"""Automated troubleshooting: compose the diagnostic tools into a verdict.

§3.1: "data center operators can manually *or automatically* use these
tools ... to pinpoint the root cause of the performance issues efficiently."
:func:`troubleshoot` is that automation: given a complaint ("traffic from A
to B is slow"), it runs hosttrace to find the worst hop, cross-checks with
hostping against an expected baseline, optionally measures achievable
bandwidth with hostperf, and issues a structured verdict naming the
bottleneck element and the likely cause class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.network import FabricNetwork
from ..units import format_bandwidth, format_time
from .hostperf import PerfReport, hostperf
from .hostping import PingReport, hostping
from .hosttrace import TraceReport, hosttrace


class CauseClass(enum.Enum):
    """Root-cause classes the automated diagnosis distinguishes."""

    HEALTHY = "healthy"
    CONGESTION = "congestion"  # high utilization on a healthy link
    DEGRADED_LINK = "degraded_link"  # link flagged unhealthy
    PATH_DOWN = "path_down"  # probes lost entirely


@dataclass
class Diagnosis:
    """Structured outcome of one :func:`troubleshoot` run.

    Attributes:
        src / dst: The complained-about pair.
        cause: The inferred :class:`CauseClass`.
        culprit_link: The blamed link, when one stands out.
        trace: The hosttrace evidence.
        ping: The hostping evidence.
        perf: The hostperf evidence, when bandwidth was measured.
        notes: Human-readable reasoning steps, in order.
    """

    src: str
    dst: str
    cause: CauseClass
    culprit_link: Optional[str]
    trace: TraceReport
    ping: PingReport
    perf: Optional[PerfReport] = None
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line report an operator would read."""
        lines = [
            f"DIAGNOSIS {self.src} -> {self.dst}: {self.cause.value}"
            + (f" at {self.culprit_link}" if self.culprit_link else "")
        ]
        lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def troubleshoot(
    network: FabricNetwork,
    src: str,
    dst: str,
    expected_rtt: Optional[float] = None,
    rtt_inflation_threshold: float = 3.0,
    congestion_threshold: float = 0.85,
    measure_bandwidth: bool = False,
    ping_count: int = 5,
) -> Diagnosis:
    """Automatically diagnose slow traffic from *src* to *dst*.

    Args:
        expected_rtt: Known-good RTT for the pair; when ``None``, the
            zero-load spec (sum of base latencies, doubled) is used.
        rtt_inflation_threshold: Measured/expected RTT ratio above which
            the pair is considered unhealthy.
        congestion_threshold: Utilization above which a hop is blamed on
            congestion rather than degradation.
        measure_bandwidth: Also run hostperf (perturbs the fabric).
    """
    notes: List[str] = []

    ping = hostping(network, src, dst, count=ping_count)
    trace = hosttrace(network, src, dst)
    baseline = expected_rtt if expected_rtt is not None \
        else 2.0 * trace.path.base_latency
    notes.append(f"expected rtt {format_time(baseline)}")

    perf: Optional[PerfReport] = None
    if measure_bandwidth:
        perf = hostperf(network, src, dst)
        notes.append(f"hostperf achieved {format_bandwidth(perf.achieved_rate)}")

    if ping.received == 0:
        down = [h for h in trace.hops if not h.healthy]
        culprit = down[0].link_id if down else None
        notes.append("all probes lost: path is down")
        return Diagnosis(src=src, dst=dst, cause=CauseClass.PATH_DOWN,
                         culprit_link=culprit, trace=trace, ping=ping,
                         perf=perf, notes=notes)

    measured = ping.summary.p50 if ping.summary else float("inf")
    notes.append(f"measured rtt p50 {format_time(measured)}")

    if measured <= baseline * rtt_inflation_threshold:
        notes.append("rtt within tolerance: no fabric issue found")
        return Diagnosis(src=src, dst=dst, cause=CauseClass.HEALTHY,
                         culprit_link=None, trace=trace, ping=ping,
                         perf=perf, notes=notes)

    worst = trace.worst_hop()
    notes.append(
        f"worst hop {worst.link_id}: {format_time(worst.measured_latency)} "
        f"(x{worst.inflation:.1f} of base, util {worst.utilization:.0%})"
    )
    if not worst.healthy:
        cause = CauseClass.DEGRADED_LINK
        notes.append("worst hop is flagged unhealthy: hardware degradation")
    elif worst.utilization >= congestion_threshold:
        cause = CauseClass.CONGESTION
        notes.append("worst hop is saturated: congestion")
    else:
        # Inflated RTT but no obviously sick hop: blame the worst one as
        # degraded (silent failures don't set health flags).
        cause = CauseClass.DEGRADED_LINK
        notes.append(
            "no saturated hop, yet rtt inflated: silent degradation suspected"
        )
    return Diagnosis(src=src, dst=dst, cause=cause,
                     culprit_link=worst.link_id, trace=trace, ping=ping,
                     perf=perf, notes=notes)
