"""``hostperf`` — intra-host iperf: measure achievable path bandwidth.

Launches a real elastic probe flow between two devices, runs the simulation
for the measurement window, and reports the achieved rate.  Because the
probe is a genuine flow, it competes fairly with (and perturbs) background
traffic — exactly like iperf on a production network, which is why the
toolkit runs it last during automated troubleshooting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import MonitorError
from ..sim.network import SYSTEM_TENANT, FabricNetwork
from ..topology.routing import Path, shortest_path, widest_path
from ..units import format_bandwidth


@dataclass(frozen=True)
class PerfReport:
    """Result of one :func:`hostperf` run.

    Attributes:
        src / dst: Measured device pair.
        path: Fabric path probed.
        duration: Measurement window (seconds).
        bytes_moved: Probe bytes transferred in the window.
        achieved_rate: bytes_moved / duration.
        bottleneck_capacity: The path's spec bottleneck for comparison.
    """

    src: str
    dst: str
    path: Path
    duration: float
    bytes_moved: float
    achieved_rate: float
    bottleneck_capacity: float

    @property
    def efficiency(self) -> float:
        """Achieved rate as a fraction of the spec bottleneck."""
        if self.bottleneck_capacity <= 0:
            return 0.0
        return self.achieved_rate / self.bottleneck_capacity

    def describe(self) -> str:
        """iperf-style human-readable output."""
        return (
            f"HOSTPERF {self.src} -> {self.dst} via {self.path}\n"
            f"achieved {format_bandwidth(self.achieved_rate)} over "
            f"{self.duration:.3f}s "
            f"({self.efficiency:.0%} of spec bottleneck "
            f"{format_bandwidth(self.bottleneck_capacity)})"
        )


def hostperf(
    network: FabricNetwork,
    src: str,
    dst: str,
    duration: float = 0.05,
    demand: Optional[float] = None,
    use_widest_path: bool = False,
) -> PerfReport:
    """Measure achievable bandwidth from *src* to *dst*.

    Args:
        network: The live fabric.
        duration: Measurement window in simulated seconds (the engine is
            advanced by this much).
        demand: Probe offered rate; ``None`` means elastic (grab the full
            fair share).
        use_widest_path: Probe the max-capacity path instead of the
            min-latency path.
    """
    if duration <= 0:
        raise MonitorError(f"duration must be > 0, got {duration}")
    pick = widest_path if use_widest_path else shortest_path
    path = pick(network.topology, src, dst)
    flow = network.start_transfer(
        SYSTEM_TENANT, path, size=None,
        demand=demand if demand is not None else float("inf"),
        tags={"app": "hostperf"},
    )
    start = network.engine.now
    network.engine.run_until(start + duration)
    cancelled = network.cancel_flow(flow.flow_id)
    moved = cancelled.bytes_sent
    return PerfReport(
        src=src, dst=dst, path=path, duration=duration,
        bytes_moved=moved, achieved_rate=moved / duration,
        bottleneck_capacity=path.bottleneck_capacity,
    )
