"""``hostshark`` — transaction capture for the intra-host fabric.

The wireshark analogue §3.1 asks for: subscribes to flow start/completion
events on the fabric and records them with their metadata, supporting
display filters over tenant, device, link, and tags.  Capture is passive —
it observes the fluid simulator's control events and costs the fabric
nothing (a tcpdump on the control path, not the data path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.flows import Flow
from ..sim.network import FabricNetwork


@dataclass(frozen=True)
class CaptureRecord:
    """One captured fabric event.

    Attributes:
        time: Event time.
        event: ``"start"`` or ``"complete"``.
        flow_id / tenant_id: Flow identity.
        src / dst: Flow endpoints.
        links: Links the flow crosses.
        size: Flow size (``None`` for persistent flows).
        bytes_sent: Bytes moved at event time.
        rate: Assigned rate at event time.
        tags: The flow's free-form tags.
    """

    time: float
    event: str
    flow_id: str
    tenant_id: str
    src: str
    dst: str
    links: tuple
    size: Optional[float]
    bytes_sent: float
    rate: float
    tags: Dict[str, str]


class HostShark:
    """Flow-event capture with display filters.

    Args:
        network: The fabric to attach to.
        max_records: Ring size; oldest records are dropped beyond it.
    """

    def __init__(self, network: FabricNetwork, max_records: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.network = network
        self.max_records = max_records
        self._records: List[CaptureRecord] = []
        self._capturing = False
        network.on_flow_start(self._on_start)
        network.on_flow_complete(self._on_complete)

    # -- capture lifecycle ------------------------------------------------------

    def start_capture(self) -> None:
        """Begin recording events."""
        self._capturing = True

    def stop_capture(self) -> None:
        """Stop recording (already captured records are kept)."""
        self._capturing = False

    def clear(self) -> None:
        """Drop all captured records."""
        self._records.clear()

    # -- event sinks --------------------------------------------------------------

    def _record(self, flow: Flow, event: str) -> None:
        if not self._capturing:
            return
        self._records.append(
            CaptureRecord(
                time=self.network.engine.now,
                event=event,
                flow_id=flow.flow_id,
                tenant_id=flow.tenant_id,
                src=flow.path.src,
                dst=flow.path.dst,
                links=flow.path.links,
                size=flow.size,
                bytes_sent=flow.bytes_sent,
                rate=flow.current_rate,
                tags=dict(flow.tags),
            )
        )
        if len(self._records) > self.max_records:
            del self._records[: len(self._records) - self.max_records]

    def _on_start(self, flow: Flow) -> None:
        self._record(flow, "start")

    def _on_complete(self, flow: Flow) -> None:
        self._record(flow, "complete")

    # -- filters --------------------------------------------------------------------

    def records(
        self,
        tenant: Optional[str] = None,
        device: Optional[str] = None,
        link: Optional[str] = None,
        event: Optional[str] = None,
        tag: Optional[Dict[str, str]] = None,
        predicate: Optional[Callable[[CaptureRecord], bool]] = None,
    ) -> List[CaptureRecord]:
        """Captured records matching every given filter (AND semantics)."""
        result = []
        for record in self._records:
            if tenant is not None and record.tenant_id != tenant:
                continue
            if device is not None and device not in (record.src, record.dst):
                continue
            if link is not None and link not in record.links:
                continue
            if event is not None and record.event != event:
                continue
            if tag is not None and any(
                record.tags.get(k) != v for k, v in tag.items()
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def __len__(self) -> int:
        return len(self._records)

    def summary_by_tenant(self) -> Dict[str, int]:
        """Captured event count per tenant."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.tenant_id] = counts.get(record.tenant_id, 0) + 1
        return counts
