"""``hosttrace`` — per-hop latency breakdown (intra-host traceroute).

Walks the fabric path hop by hop and attributes latency to each link under
current load, the way Zambre et al. [56] break down message latency with a
PCIe analyzer.  The output makes a congested or degraded hop jump out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.network import FabricNetwork
from ..topology.routing import Path, shortest_path
from ..units import format_time


@dataclass(frozen=True)
class HopReport:
    """Latency attribution for one hop.

    Attributes:
        link_id: The link crossed.
        from_device / to_device: Hop endpoints.
        base_latency: Zero-load spec latency of the link.
        measured_latency: Latency under current utilization (including any
            failure-injected extra latency).
        utilization: Link utilization at trace time.
        healthy: The link's health flag.
    """

    link_id: str
    from_device: str
    to_device: str
    base_latency: float
    measured_latency: float
    utilization: float
    healthy: bool

    @property
    def inflation(self) -> float:
        """measured / base (1.0 when unloaded and healthy)."""
        if self.base_latency <= 0:
            return 1.0
        return self.measured_latency / self.base_latency


@dataclass(frozen=True)
class TraceReport:
    """Result of one :func:`hosttrace` run."""

    src: str
    dst: str
    path: Path
    hops: List[HopReport]

    @property
    def total_latency(self) -> float:
        """Sum of measured per-hop latencies."""
        return sum(h.measured_latency for h in self.hops)

    def worst_hop(self) -> HopReport:
        """The hop contributing the largest measured latency."""
        if not self.hops:
            raise ValueError("trace has no hops (src == dst)")
        return max(self.hops, key=lambda h: h.measured_latency)

    def describe(self) -> str:
        """traceroute-style human-readable output."""
        lines = [f"HOSTTRACE {self.src} -> {self.dst} "
                 f"({len(self.hops)} hops, "
                 f"total {format_time(self.total_latency)})"]
        for i, hop in enumerate(self.hops, start=1):
            flag = "" if hop.healthy else "  [DEGRADED]"
            lines.append(
                f" {i:>2}. {hop.from_device} -> {hop.to_device} "
                f"[{hop.link_id}]  {format_time(hop.measured_latency)} "
                f"(base {format_time(hop.base_latency)}, "
                f"util {hop.utilization:.0%}){flag}"
            )
        return "\n".join(lines)


def hosttrace(network: FabricNetwork, src: str, dst: str) -> TraceReport:
    """Trace the path from *src* to *dst* and attribute latency per hop.

    Traces the physical path even when a hop is down (the degraded hop is
    exactly what the operator needs to see).
    """
    path = shortest_path(network.topology, src, dst, healthy_only=False)
    model = network.latency_model
    hops: List[HopReport] = []
    for i, link_id in enumerate(path.links):
        link = network.topology.link(link_id)
        rho = network.link_utilization(link_id)
        hops.append(
            HopReport(
                link_id=link_id,
                from_device=path.devices[i],
                to_device=path.devices[i + 1],
                base_latency=link.base_latency,
                measured_latency=model.link_latency(link.effective_latency, rho),
                utilization=rho,
                healthy=link.healthy,
            )
        )
    return TraceReport(src=src, dst=dst, path=path, hops=hops)
