"""``hostping`` — intra-host ping (§3.1's diagnostic-tool proposal, [40]).

Measures the round-trip latency between two intra-host devices over the
fabric path they would actually use, under whatever load the fabric is
carrying right now.  The analogue of Hostping's RDMA loopback probes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import MonitorError
from ..sim.network import FabricNetwork
from ..stats import Summary, summarize
from ..topology.routing import Path, shortest_path
from ..units import format_time


@dataclass(frozen=True)
class PingReport:
    """Result of one :func:`hostping` run.

    Attributes:
        src / dst: Probed devices.
        path: Fabric path probed.
        sent / received: Probe counts (lost probes had a down path).
        rtts: Individual round-trip samples (seconds), successful only.
        summary: Percentile summary of *rtts* (``None`` if all lost).
    """

    src: str
    dst: str
    path: Path
    sent: int
    received: int
    rtts: List[float]
    summary: Optional[Summary]

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost."""
        return 1.0 - (self.received / self.sent) if self.sent else 0.0

    def describe(self) -> str:
        """ping-style human-readable output."""
        lines = [f"HOSTPING {self.src} -> {self.dst} via {self.path}"]
        lines.append(
            f"{self.sent} probes sent, {self.received} received, "
            f"{self.loss_rate:.0%} loss"
        )
        if self.summary is not None:
            lines.append(
                f"rtt p50/p95/p99 = {format_time(self.summary.p50)}/"
                f"{format_time(self.summary.p95)}/{format_time(self.summary.p99)}"
            )
        return "\n".join(lines)


def hostping(
    network: FabricNetwork,
    src: str,
    dst: str,
    count: int = 10,
    probe_bytes: float = 64.0,
    interval: float = 0.001,
    seed: int = 0,
) -> PingReport:
    """Ping *dst* from *src* *count* times, one probe per *interval*.

    The engine is advanced by ``count * interval`` — the run observes the
    live fabric as background traffic evolves.  Probes whose path is down
    count as lost.
    """
    if count < 1:
        raise MonitorError(f"count must be >= 1, got {count}")
    # Probe the physical path even if part of it is down: a dead hop shows
    # up as loss, the way real ping reports 100% loss rather than no-route.
    path = shortest_path(network.topology, src, dst, healthy_only=False)
    rng = random.Random(seed)
    rtts: List[float] = []
    lost = 0
    for _ in range(count):
        rtt = network.round_trip_latency(path, probe_bytes, probe_bytes)
        if math.isinf(rtt):
            lost += 1
        else:
            rtts.append(rtt * (1.0 + rng.uniform(-0.02, 0.02)))
        network.engine.run_until(network.engine.now + interval)
    return PingReport(
        src=src, dst=dst, path=path, sent=count, received=count - lost,
        rtts=rtts, summary=summarize(rtts) if rtts else None,
    )
