"""Diagnostic tools: hostping, hosttrace, hostperf, hostshark, troubleshoot."""

from .config_advisor import (
    ConfigSignature,
    Finding,
    advise,
    measure_signature,
)
from .hostperf import PerfReport, hostperf
from .hostping import PingReport, hostping
from .hostshark import CaptureRecord, HostShark
from .hosttrace import HopReport, TraceReport, hosttrace
from .toolkit import CauseClass, Diagnosis, troubleshoot

__all__ = [
    "PingReport",
    "hostping",
    "HopReport",
    "TraceReport",
    "hosttrace",
    "PerfReport",
    "hostperf",
    "CaptureRecord",
    "HostShark",
    "CauseClass",
    "Diagnosis",
    "troubleshoot",
    "ConfigSignature",
    "Finding",
    "measure_signature",
    "advise",
]
