"""Configuration advisor: diagnose misconfiguration from measurements.

§2 lists the host configuration space as a major debugging burden — the
same hardware performs very differently under DDIO/IOMMU/ordering/NUMA
settings, and nothing announces a bad setting.  The advisor measures a
host's *performance signature* with the diagnostic tools and compares it
against the signature the recommended configuration would produce,
emitting findings that name the likely misconfiguration (E13).

Signature components (all measured, not read from the config):

* **rtt_penalty** — extra NIC->memory round-trip latency vs the spec path;
* **pcie_efficiency** — hostperf achieved rate over the spec x16 rate;
* **membus_amplification** — memory-bus bytes per inbound DMA byte at a
  probe rate, from the DDIO occupancy model's steady state;
* **crosses_socket** — whether NIC DMA lands on the remote NUMA node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..devices.configured import ConfiguredHost
from ..topology.elements import DeviceType
from ..units import GBps, Gbps, to_us, us
from .hostperf import hostperf
from .hostping import hostping

#: Probe rate used for the DDIO amplification measurement.
_DDIO_PROBE_RATE = GBps(20)

#: Mean consume delay assumed for the amplification probe.
_DDIO_CONSUME_DELAY = us(100)


@dataclass(frozen=True)
class ConfigSignature:
    """Measured performance signature of a configured host.

    All probes run on the NIC -> *local* DIMM path so the PCIe/latency
    components are not confounded by NUMA placement; placement itself is
    captured separately by ``crosses_socket``.
    """

    local_rtt: float  # measured NIC->local-DIMM round trip (seconds)
    pcie_efficiency: float  # achieved / advertised x16 rate in (0, 1]
    membus_amplification: float  # memory-bus bytes per DMA byte
    crosses_socket: bool  # NIC DMA lands on the remote NUMA node


@dataclass(frozen=True)
class Finding:
    """One advisor conclusion.

    Attributes:
        suspected: Name of the suspected misconfiguration (matches the
            keys of :data:`repro.devices.config.MISCONFIGURATIONS`).
        evidence: Human-readable measurement that triggered it.
        severity: Rough impact score (bigger = worse).
    """

    suspected: str
    evidence: str
    severity: float


def measure_signature(host: ConfiguredHost) -> ConfigSignature:
    """Probe *host* and compute its :class:`ConfigSignature`."""
    network = host.network
    topology = network.topology
    nics = topology.devices(DeviceType.NIC)
    if not nics:
        raise ValueError("signature probes need a NIC")
    nic = nics[0].device_id
    dma_target = host.dma_target_dimm(nic)
    socket = topology.socket_of(nic)
    local_dimms = [d for d in topology.devices(DeviceType.DIMM)
                   if d.socket == socket]
    probe_target = (local_dimms[0].device_id if local_dimms
                    else dma_target)

    ping = hostping(network, nic, probe_target, count=5)
    measured_rtt = ping.summary.p50 if ping.summary else float("inf")

    perf = hostperf(network, nic, probe_target, duration=0.01)
    efficiency = min(perf.achieved_rate / Gbps(256), 1.0)

    report = host.ddio.steady_state(_DDIO_PROBE_RATE, _DDIO_CONSUME_DELAY)
    amplification = 1.0 + (report.membus_extra_rate / _DDIO_PROBE_RATE
                           if _DDIO_PROBE_RATE else 0.0)

    crosses = not topology.same_socket(nic, dma_target)
    return ConfigSignature(
        local_rtt=measured_rtt,
        pcie_efficiency=efficiency,
        membus_amplification=amplification,
        crosses_socket=crosses,
    )


def advise(signature: ConfigSignature,
           baseline: ConfigSignature) -> List[Finding]:
    """Compare a measured signature against the known-good baseline.

    Thresholds are generous (2x the baseline noise) so a healthy host
    produces no findings.
    """
    findings: List[Finding] = []

    if signature.crosses_socket and not baseline.crosses_socket:
        findings.append(Finding(
            suspected="remote_numa",
            evidence="NIC DMA lands on the remote NUMA node "
                     "(path crosses the inter-socket link)",
            severity=3.0,
        ))

    amp_excess = signature.membus_amplification \
        - baseline.membus_amplification
    if amp_excess > 0.5:
        findings.append(Finding(
            suspected="ddio_off",
            evidence=f"memory-bus amplification "
                     f"{signature.membus_amplification:.1f}x vs "
                     f"{baseline.membus_amplification:.1f}x expected "
                     f"(inbound DMA bouncing through DRAM)",
            severity=amp_excess,
        ))

    efficiency_loss = baseline.pcie_efficiency - signature.pcie_efficiency
    if efficiency_loss > 0.05:
        # distinguish ordering stalls from undersized payloads by depth:
        # strict ordering costs ~15%; a 128B max payload costs ~8% extra
        # TLP header overhead relative to the 256B spec.
        suspected = ("strict_ordering" if efficiency_loss > 0.12
                     else "tiny_payload")
        findings.append(Finding(
            suspected=suspected,
            evidence=f"PCIe efficiency {signature.pcie_efficiency:.0%} vs "
                     f"{baseline.pcie_efficiency:.0%} expected",
            severity=efficiency_loss * 10,
        ))

    rtt_excess = signature.local_rtt - baseline.local_rtt
    if rtt_excess > us(5):
        findings.append(Finding(
            suspected="heavy_moderation",
            evidence=f"small-op RTT {to_us(rtt_excess):.1f}us beyond the "
                     f"baseline (interrupt coalescing or translation "
                     f"stalls)",
            severity=to_us(rtt_excess),
        ))

    findings.sort(key=lambda f: f.severity, reverse=True)
    return findings
