"""Fairness and interference metrics for experiment analysis.

The QoS literature the paper draws on (FairCloud, EyeQ, ElasticSwitch)
evaluates allocations with a small set of standard metrics; having them in
the library keeps benchmark post-processing uniform and testable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index over *allocations*.

    1.0 means perfectly equal; ``1/n`` means one party has everything.
    Zero-length input raises; all-zero input returns 1.0 (vacuously fair).
    """
    if not allocations:
        raise ValueError("jain_index of empty allocation set")
    if any(a < 0 for a in allocations):
        raise ValueError("allocations must be >= 0")
    total = sum(allocations)
    squares = sum(a * a for a in allocations)
    # squares can underflow to 0 for denormal allocations even when the
    # total does not; both cases are "effectively nothing allocated".
    if total == 0 or squares == 0:
        return 1.0
    return min((total * total) / (len(allocations) * squares), 1.0)


def weighted_jain_index(allocations: Mapping[str, float],
                        weights: Mapping[str, float]) -> float:
    """Jain's index over allocations normalized by entitlement weights.

    A tenant with twice the weight is *supposed* to get twice the share;
    this index is 1.0 exactly when everyone gets allocation proportional
    to weight.
    """
    if not allocations:
        raise ValueError("weighted_jain_index of empty allocation set")
    normalized = []
    for tenant, allocation in allocations.items():
        weight = weights.get(tenant, 1.0)
        if weight <= 0:
            raise ValueError(f"weight for {tenant!r} must be > 0")
        normalized.append(allocation / weight)
    return jain_index(normalized)


def slowdown(alone: float, shared: float) -> float:
    """Interference slowdown of a latency metric: shared / alone.

    1.0 = no interference; 10.0 = the co-located tail is 10x worse.
    """
    if alone <= 0:
        raise ValueError("alone metric must be > 0")
    return shared / alone


def goodput_retention(alone: float, shared: float) -> float:
    """Fraction of run-alone throughput retained under co-location."""
    if alone <= 0:
        raise ValueError("alone throughput must be > 0")
    return min(shared / alone, 1.0)


def isolation_scorecard(
    alone_latency: float,
    shared_latency: Mapping[str, float],
    alone_throughput: float,
    shared_throughput: Mapping[str, float],
) -> Dict[str, Dict[str, float]]:
    """Per-policy scorecard: latency slowdown and goodput retention.

    Input maps are keyed by policy name; output is
    ``{policy: {"slowdown": x, "retention": y}}``.
    """
    policies = set(shared_latency) | set(shared_throughput)
    card: Dict[str, Dict[str, float]] = {}
    for policy in sorted(policies):
        entry: Dict[str, float] = {}
        if policy in shared_latency:
            entry["slowdown"] = slowdown(alone_latency,
                                         shared_latency[policy])
        if policy in shared_throughput:
            entry["retention"] = goodput_retention(
                alone_throughput, shared_throughput[policy]
            )
        card[policy] = entry
    return card
