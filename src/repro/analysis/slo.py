"""SLO compliance analysis over recorded latency samples and rate series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..stats import percentile


@dataclass(frozen=True)
class SloReport:
    """Compliance of a latency sample set against a target.

    Attributes:
        slo: The latency bound (seconds).
        samples: Number of samples evaluated.
        compliance: Fraction of samples within the SLO.
        p99: The sample p99 (the usual SLO yardstick).
        worst: The worst observed sample.
    """

    slo: float
    samples: int
    compliance: float
    p99: float
    worst: float

    @property
    def met(self) -> bool:
        """Whether the p99 is within the SLO (the standard criterion)."""
        return self.p99 <= self.slo


def evaluate_slo(latencies: Sequence[float], slo: float) -> SloReport:
    """Score *latencies* against *slo*; raises on empty input."""
    if not latencies:
        raise ValueError("evaluate_slo of empty sample set")
    if slo <= 0:
        raise ValueError("slo must be > 0")
    within = sum(1 for sample in latencies if sample <= slo)
    return SloReport(
        slo=slo,
        samples=len(latencies),
        compliance=within / len(latencies),
        p99=percentile(latencies, 99),
        worst=max(latencies),
    )


def violation_episodes(
    series: Sequence[Tuple[float, float]],
    floor: float,
    tolerance: float = 0.95,
) -> List[Tuple[float, float]]:
    """Contiguous time spans where a guaranteed rate dipped below floor.

    Args:
        series: (time, rate) samples, time-ordered.
        floor: The guaranteed rate.
        tolerance: A sample violates when ``rate < floor * tolerance``.

    Returns:
        ``(start, end)`` spans.  A violation at the last sample closes at
        that sample's time.
    """
    episodes: List[Tuple[float, float]] = []
    start = None
    last_time = None
    for t, rate in series:
        if last_time is not None and t < last_time:
            raise ValueError("series must be time-ordered")
        last_time = t
        violating = rate < floor * tolerance
        if violating and start is None:
            start = t
        elif not violating and start is not None:
            episodes.append((start, t))
            start = None
    if start is not None and last_time is not None:
        episodes.append((start, last_time))
    return episodes


def violation_time_fraction(
    series: Sequence[Tuple[float, float]],
    floor: float,
    tolerance: float = 0.95,
) -> float:
    """Fraction of the observed span spent in violation."""
    if len(series) < 2:
        return 0.0
    span = series[-1][0] - series[0][0]
    if span <= 0:
        return 0.0
    violated = sum(end - start for start, end
                   in violation_episodes(series, floor, tolerance))
    return violated / span
