"""SLO compliance analysis over recorded latency samples and rate series.

This is the *offline* counterpart of the live :mod:`repro.slo` pipeline:
the same :class:`~repro.slo.objective.SloObjective` vocabulary (a
percentile bound with an error budget), scored in one pass over a
recorded sample list instead of streamed through probes and burn-rate
trackers.  The pre-unification ``evaluate_slo`` / ``SloReport`` entry
points survive as warn-once deprecation shims.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..slo.objective import SloObjective
from ..stats import percentile


@dataclass(frozen=True)
class ObjectiveReport:
    """Batch compliance of a latency sample set against one objective.

    Attributes:
        objective: The :class:`SloObjective` scored.
        samples: Number of samples evaluated.
        attainment: Good-sample fraction (samples within the bound) —
            the same statistic :meth:`FleetSloMonitor.attainment`
            tracks live.
        achieved: The objective's target percentile over the samples.
        worst: The worst observed sample.
    """

    objective: SloObjective
    samples: int
    attainment: float
    achieved: float
    worst: float

    @property
    def met(self) -> bool:
        """Whether the achieved percentile is within the bound (the
        standard criterion)."""
        return self.achieved <= self.objective.bound


def evaluate_objective(latencies: Sequence[float],
                       objective: SloObjective) -> ObjectiveReport:
    """Score recorded *latencies* against *objective*; raises on empty
    input."""
    if not latencies:
        raise ValueError("evaluate_objective of empty sample set")
    good = sum(1 for sample in latencies if not objective.is_bad(sample))
    return ObjectiveReport(
        objective=objective,
        samples=len(latencies),
        attainment=good / len(latencies),
        achieved=percentile(latencies, objective.percentile),
        worst=max(latencies),
    )


@dataclass(frozen=True)
class SloReport:
    """Deprecated report shape; produced only by the
    :func:`evaluate_slo` shim.  Use :class:`ObjectiveReport`.

    Attributes:
        slo: The latency bound (seconds).
        samples: Number of samples evaluated.
        compliance: Fraction of samples within the SLO.
        p99: The sample p99 (the usual SLO yardstick).
        worst: The worst observed sample.
    """

    slo: float
    samples: int
    compliance: float
    p99: float
    worst: float

    @property
    def met(self) -> bool:
        """Whether the p99 is within the SLO (the standard criterion)."""
        return self.p99 <= self.slo


def evaluate_slo(latencies: Sequence[float], slo: float) -> SloReport:
    """Deprecated: build an :class:`SloObjective` and call
    :func:`evaluate_objective` (the live monitors' vocabulary)."""
    warnings.warn(
        "evaluate_slo() is deprecated; build an SloObjective and call "
        "evaluate_objective() (the same vocabulary repro.slo evaluates "
        "live)",
        DeprecationWarning, stacklevel=2,
    )
    if not latencies:
        raise ValueError("evaluate_slo of empty sample set")
    if slo <= 0:
        raise ValueError("slo must be > 0")
    report = evaluate_objective(latencies, SloObjective("legacy-p99", slo))
    return SloReport(slo=slo, samples=report.samples,
                     compliance=report.attainment, p99=report.achieved,
                     worst=report.worst)


def violation_episodes(
    series: Sequence[Tuple[float, float]],
    floor: float,
    tolerance: float = 0.95,
) -> List[Tuple[float, float]]:
    """Contiguous time spans where a guaranteed rate dipped below floor.

    Args:
        series: (time, rate) samples, time-ordered.
        floor: The guaranteed rate.
        tolerance: A sample violates when ``rate < floor * tolerance``.

    Returns:
        ``(start, end)`` spans.  A violation at the last sample closes at
        that sample's time.
    """
    episodes: List[Tuple[float, float]] = []
    start = None
    last_time = None
    for t, rate in series:
        if last_time is not None and t < last_time:
            raise ValueError("series must be time-ordered")
        last_time = t
        violating = rate < floor * tolerance
        if violating and start is None:
            start = t
        elif not violating and start is not None:
            episodes.append((start, t))
            start = None
    if start is not None and last_time is not None:
        episodes.append((start, last_time))
    return episodes


def violation_time_fraction(
    series: Sequence[Tuple[float, float]],
    floor: float,
    tolerance: float = 0.95,
) -> float:
    """Fraction of the observed span spent in violation."""
    if len(series) < 2:
        return 0.0
    span = series[-1][0] - series[0][0]
    if span <= 0:
        return 0.0
    violated = sum(end - start for start, end
                   in violation_episodes(series, floor, tolerance))
    return violated / span
