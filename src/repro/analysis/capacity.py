"""Capacity and reservation reporting over a managed host."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.manager import HostNetworkManager
from ..topology.elements import LinkClass
from ..units import to_Gbps


@dataclass(frozen=True)
class LinkCapacityRow:
    """One link's capacity accounting."""

    link_id: str
    link_class: LinkClass
    capacity: float
    reserved: float
    used: float

    @property
    def reserved_fraction(self) -> float:
        """Reserved over per-direction capacity (may exceed 1 with
        bidirectional reservations; reported raw)."""
        if self.capacity <= 0:
            return float("inf")
        return self.reserved / self.capacity

    @property
    def used_fraction(self) -> float:
        """Carried traffic over both-direction capacity."""
        if self.capacity <= 0:
            return float("inf")
        return self.used / (2 * self.capacity)


def capacity_report(manager: HostNetworkManager) -> List[LinkCapacityRow]:
    """Reserved vs used per link, sorted by reserved fraction."""
    network = manager.network
    rows = []
    for link in network.topology.links():
        rows.append(
            LinkCapacityRow(
                link_id=link.link_id,
                link_class=link.link_class,
                capacity=link.capacity,
                reserved=manager.ledger.reserved_total(link.link_id),
                used=network.link_rate(link.link_id),
            )
        )
    rows.sort(key=lambda r: r.reserved_fraction, reverse=True)
    return rows


def stranded_bandwidth(manager: HostNetworkManager) -> Dict[str, float]:
    """Per-link reserved-but-unused bandwidth (bytes/s), nonzero only.

    The quantity work-conserving arbitration exists to recover (E6).
    """
    stranded: Dict[str, float] = {}
    for row in capacity_report(manager):
        idle = max(row.reserved - row.used, 0.0)
        if idle > 0:
            stranded[row.link_id] = idle
    return stranded


def format_capacity_report(rows: List[LinkCapacityRow],
                           limit: int = 10) -> str:
    """Fixed-width text rendering of the top *limit* rows."""
    lines = [f"{'link':<24} {'class':<16} {'reserved':>10} {'used':>10} "
             f"{'capacity':>10}"]
    for row in rows[:limit]:
        lines.append(
            f"{row.link_id:<24} {row.link_class.value:<16} "
            f"{to_Gbps(row.reserved):>8.1f}G {to_Gbps(row.used):>8.1f}G "
            f"{to_Gbps(row.capacity):>8.1f}G"
        )
    return "\n".join(lines)
