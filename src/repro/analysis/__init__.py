"""Offline analysis: fairness indices, SLO compliance, capacity reports."""

from .capacity import (
    LinkCapacityRow,
    capacity_report,
    format_capacity_report,
    stranded_bandwidth,
)
from .fairness import (
    goodput_retention,
    isolation_scorecard,
    jain_index,
    slowdown,
    weighted_jain_index,
)
from .slo import (
    ObjectiveReport,
    SloReport,
    evaluate_objective,
    evaluate_slo,
    violation_episodes,
    violation_time_fraction,
)

__all__ = [
    "jain_index",
    "weighted_jain_index",
    "slowdown",
    "goodput_retention",
    "isolation_scorecard",
    "ObjectiveReport",
    "evaluate_objective",
    "SloReport",
    "evaluate_slo",
    "violation_episodes",
    "violation_time_fraction",
    "LinkCapacityRow",
    "capacity_report",
    "stranded_bandwidth",
    "format_capacity_report",
]
