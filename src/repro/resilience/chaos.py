"""Seeded chaos campaigns: randomized fault storms with an oracle.

A campaign builds a resilient :class:`~repro.host.Host`, admits a base
workload (one persistent flow per placement), then injects a seeded,
randomized sequence of failures — every :class:`FailureKind`, overlapping
in time, each with a scheduled repair — and audits the system after every
event has had ``settle_rounds`` recovery ticks to react:

* the :mod:`~repro.resilience.invariants` suite must stay clean
  (no traffic over down links, no stranded placements, conservation,
  floor protection, ledger consistency);
* after the last repair, the fabric must return *bit-exact* to its
  pre-fault baseline and every degradation record must be restored.

Everything is driven by one ``random.Random(seed)`` plus the simulation
engine's deterministic event order, so a campaign is exactly reproducible:
same seed, same report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.intents import pipe
from ..host import Host
from ..monitor.failures import FailureInjector, FailureKind
from ..topology.graph import HostTopology
from ..topology.presets import cascade_lake_2s
from ..topology.routing import k_shortest_paths
from .controller import RecoveryConfig
from .invariants import (
    InvariantViolation,
    check_invariants,
    diff_snapshots,
    snapshot_fabric,
)


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's shape.

    Attributes:
        seed: Master seed; fully determines the fault storm.
        faults: How many failures to inject.
        warmup: Seconds of healthy running before the first fault (the
            baseline snapshot is taken at the end of warmup).
        fault_spacing: Mean gap between consecutive injections (seconds);
            the actual gaps are uniform in ``[0.5, 1.5] *`` this, small
            enough that failures overlap with the repair delays below.
        repair_delay: ``(min, max)`` seconds each fault stays active.
        settle_rounds: Recovery ticks allowed between an event and its
            invariant audit (the paper-level SLO: affected intents must
            be re-placed or explicitly degraded within this many rounds).
        workload_intents: Base workload size (pipe intents + flows).
        bandwidth_fraction: Each intent asks for this fraction of its
            shortest path's bottleneck capacity.
        flap_period: Half-period of injected link flaps; kept well under
            the recovery config's ``flap_window`` so quarantine engages.
        recovery: Recovery controller tuning for the campaign host.
    """

    seed: int = 0
    faults: int = 20
    warmup: float = 0.02
    fault_spacing: float = 0.01
    repair_delay: tuple = (0.015, 0.04)
    settle_rounds: int = 5
    workload_intents: int = 6
    bandwidth_fraction: float = 0.2
    flap_period: float = 0.004
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled campaign event (for the report/debugging)."""

    time: float
    kind: str  # "inject" | "repair"
    failure_kind: str
    target: str


@dataclass
class ChaosReport:
    """Everything a campaign observed.

    ``passed`` is the oracle verdict: no invariant violations at any
    checkpoint, a bit-exact fabric restore, and no degradation left
    active after the last repair.
    """

    seed: int
    faults: int
    duration: float = 0.0
    events: List[ChaosEvent] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    restore_diffs: List[str] = field(default_factory=list)
    unrestored_degradations: List[str] = field(default_factory=list)
    checks: int = 0
    replacements: int = 0
    degradations: int = 0
    restores: int = 0
    quarantines: int = 0
    parked_peak: int = 0
    shed: int = 0
    admitted_after_retry: int = 0

    @property
    def passed(self) -> bool:
        """Whether the campaign met every acceptance condition."""
        return (not self.violations and not self.restore_diffs
                and not self.unrestored_degradations)

    def describe(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"chaos campaign seed={self.seed}: "
            f"{'PASSED' if self.passed else 'FAILED'}",
            f"  {self.faults} faults over {self.duration:.3f}s simulated, "
            f"{self.checks} invariant audits",
            f"  recovery: {self.replacements} re-placements, "
            f"{self.degradations} degradations, {self.restores} restores, "
            f"{self.quarantines} quarantines",
            f"  admission: peak {self.parked_peak} parked, "
            f"{self.admitted_after_retry} admitted after retry, "
            f"{self.shed} shed",
        ]
        for violation in self.violations[:20]:
            lines.append(f"  VIOLATION {violation}")
        for diff in self.restore_diffs[:20]:
            lines.append(f"  RESTORE DRIFT {diff}")
        for record in self.unrestored_degradations[:20]:
            lines.append(f"  UNRESTORED {record}")
        return "\n".join(lines)


def _fault_plan(config: ChaosConfig, topology: HostTopology,
                rng: random.Random) -> List[tuple]:
    """The seeded storm: ``(time, kind, target, clear_after)`` tuples.

    The first four faults cycle through every :class:`FailureKind` so
    even tiny campaigns exercise all injection paths; the rest draw
    uniformly.
    """
    links = sorted(link.link_id for link in topology.links())
    switches = sorted(
        device.device_id for device in topology.devices()
        if device.is_fabric and topology.incident_links(device.device_id)
    )
    kinds = list(FailureKind)
    plan: List[tuple] = []
    t = config.warmup
    for i in range(config.faults):
        t += rng.uniform(0.5, 1.5) * config.fault_spacing
        kind = kinds[i] if i < len(kinds) else rng.choice(kinds)
        if kind is FailureKind.SWITCH_DEGRADE and switches:
            target = rng.choice(switches)
        else:
            if kind is FailureKind.SWITCH_DEGRADE:
                kind = FailureKind.LINK_DEGRADE
            target = rng.choice(links)
        clear_after = rng.uniform(*config.repair_delay)
        if kind is FailureKind.LINK_FLAP:
            # Keep the flap alive long enough to cross the quarantine
            # threshold, whatever repair_delay says.
            clear_after = max(
                clear_after,
                (config.recovery.flap_threshold + 1) * config.flap_period,
            )
        plan.append((t, kind, target, clear_after))
    return plan


def _inject(injector: FailureInjector, kind: FailureKind, target: str,
            rng: random.Random, config: ChaosConfig):
    if kind is FailureKind.LINK_DEGRADE:
        return injector.degrade_link(
            target, capacity_factor=rng.uniform(0.1, 0.6)
        )
    if kind is FailureKind.LINK_DOWN:
        return injector.fail_link(target)
    if kind is FailureKind.LINK_FLAP:
        return injector.flap_link(target, period=config.flap_period)
    return injector.degrade_switch(
        target, capacity_factor=rng.uniform(0.1, 0.6)
    )


def _build_workload(host: Host, rng: random.Random,
                    config: ChaosConfig) -> int:
    """Admit pipe intents between random endpoint pairs; flow per intent."""
    endpoints = [d.device_id for d in host.topology.endpoints()]
    placed = 0
    for i in range(config.workload_intents):
        src, dst = rng.sample(endpoints, 2)
        paths = k_shortest_paths(host.topology, src, dst, k=1)
        bandwidth = config.bandwidth_fraction * paths[0].bottleneck_capacity
        intent = pipe(f"chaos-i{i}", f"tenant{i % 3}", src=src, dst=dst,
                      bandwidth=bandwidth)
        placement = host.submit_with_retry(intent)
        if placement is None:
            continue
        placed += 1
        flow = host.network.start_transfer(
            intent.tenant_id, placement.candidate.paths[0],
            demand=bandwidth, flow_id=f"chaos-f{i}",
        )
        host.recovery.bind_flow(intent.intent_id, flow.flow_id)
    return placed


def run_campaign(
    topology: Optional[HostTopology] = None,
    config: Optional[ChaosConfig] = None,
) -> ChaosReport:
    """Run one seeded chaos campaign; returns the full report.

    Deterministic: two calls with the same topology factory output and
    config produce identical reports (event times, violations, counters).
    """
    config = config or ChaosConfig()
    topology = topology or cascade_lake_2s()
    rng = random.Random(config.seed)
    settle = config.settle_rounds * config.recovery.tick_period

    host = Host(topology, resilience=config.recovery,
                coalesce_recompute=True)
    report = ChaosReport(seed=config.seed, faults=config.faults)
    try:
        _build_workload(host, rng, config)
        host.run_until(config.warmup)
        if host.monitor is not None:
            host.monitor.record_baseline()
        baseline = snapshot_fabric(host.network)

        injector = FailureInjector(host.network)
        plan = _fault_plan(config, host.topology, rng)
        checkpoints: List[float] = []
        for at, kind, target, clear_after in plan:
            injector.schedule(
                lambda inj, k=kind, tg=target: _inject(inj, k, tg, rng,
                                                       config),
                at=at, clear_after=clear_after,
            )
            report.events.append(ChaosEvent(
                time=at, kind="inject", failure_kind=kind.value,
                target=target,
            ))
            report.events.append(ChaosEvent(
                time=at + clear_after, kind="repair",
                failure_kind=kind.value, target=target,
            ))
            checkpoints.extend([at, at + clear_after])

        def audit() -> None:
            report.checks += 1
            report.violations.extend(check_invariants(
                host.network, manager=host.manager,
                controller=host.recovery,
            ))

        for t in sorted(checkpoints):
            target_time = t + settle
            if target_time > host.now:
                host.run_until(target_time)
            audit()
            report.parked_peak = max(report.parked_peak,
                                     len(host.retry or ()))

        # Cool-down: let flaps finish clearing, quarantines expire, and
        # every degradation restore; then take the final readings.
        cooldown = (host.now + config.recovery.quarantine_holddown
                    + config.recovery.flap_window + 2 * settle)
        host.run_until(cooldown)
        audit()

        still_active = injector.failures(active_only=True)
        for failure in still_active:
            injector.clear(failure)
        if still_active:
            host.run_until(host.now + 2 * settle)
            audit()

        report.restore_diffs = diff_snapshots(
            baseline, snapshot_fabric(host.network)
        )
        report.unrestored_degradations = [
            f"{d.intent_id} on {d.link_id} (factor {d.factor:.2f} "
            f"since {d.started_at:.6f}s)"
            for d in host.recovery.degradations(active_only=True)
        ]
        report.replacements = len(host.recovery.actions_of("replace"))
        report.degradations = len(host.recovery.actions_of("degrade"))
        report.restores = len(host.recovery.actions_of("restore"))
        report.quarantines = len(host.recovery.actions_of("quarantine"))
        if host.retry is not None:
            report.shed = len(host.retry.shed)
            report.admitted_after_retry = host.retry.admitted_after_retry
        report.duration = host.now
    finally:
        host.shutdown()
    return report
